"""Structured tracing for the simulated network fabric.

Every transmission attempt the :class:`~repro.net.network.Network` hands
to a link is recorded as a ``schedule`` event and later resolved as
exactly one ``deliver`` or ``drop`` event, so a completed run satisfies

    scheduled == delivered + dropped

which is the accounting invariant the fault-tolerance bench (A7)
asserts.  Fault injectors additionally emit ``crash``/``restart``/
``partition``/``heal``/``degrade``/``restore`` events, ledger layers may
emit ``fork`` events, and the gossip retransmit path emits
``retransmit``/``give_up`` markers.

Events live in a bounded ring buffer (old records fall off; counters are
cumulative and never lose information) and can be dumped as JSONL for
offline analysis via :meth:`Tracer.dump_jsonl` or ``python -m repro
faults --trace-out``.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple, Union

# Event kinds emitted by the network fabric itself.
SCHEDULE = "schedule"
DELIVER = "deliver"
DROP = "drop"
RETRANSMIT = "retransmit"
GIVE_UP = "give_up"
# Event kinds emitted by the fault-injection layer.
CRASH = "crash"
RESTART = "restart"
PARTITION = "partition"
HEAL = "heal"
DEGRADE = "degrade"
RESTORE = "restore"
BYZANTINE = "byzantine"
# Event kind for ledger-level divergence (reorgs, conflicting heads).
FORK = "fork"
# Event kinds emitted by the protocol stack (repro.protocol): intake
# parking/revival and transport republish-on-reconnect.
INTAKE_PARK = "intake_park"
INTAKE_REVIVE = "intake_revive"
REPUBLISH = "republish"

#: Drop reasons used by the network fabric.
REASON_LOSS = "loss"
REASON_PARTITION = "partition"
REASON_OFFLINE = "offline"


@dataclass(frozen=True)
class TraceEvent:
    """One structured record in the trace ring buffer."""

    time: float
    kind: str
    src: Optional[str] = None
    dst: Optional[str] = None
    msg_kind: Optional[str] = None
    reason: Optional[str] = None
    detail: Optional[Dict[str, Any]] = field(default=None)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"t": self.time, "kind": self.kind}
        for name in ("src", "dst", "msg_kind", "reason"):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        if self.detail:
            record.update(self.detail)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


def _blank_counters() -> Dict[str, int]:
    return {"scheduled": 0, "delivered": 0, "dropped": 0}


class Tracer:
    """Ring-buffered event log with cumulative per-node/per-link counters.

    The buffer holds the most recent ``capacity`` events; the counters
    are monotone and survive ring eviction, so accounting invariants can
    be checked on arbitrarily long runs.

    ``enabled`` is the pay-for-use contract with the network fabric: hot
    paths consult it before building a trace record, so swapping in a
    :class:`NullTracer` removes record construction from untraced sweeps
    entirely (see ``docs/performance.md``).
    """

    #: Hot paths skip record calls altogether when this is False.
    enabled = True

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.emitted = 0
        self.scheduled = 0
        self.delivered = 0
        self.dropped = 0
        self.retransmits = 0
        self.gave_up = 0
        self.forks = 0
        self.intake_parked = 0
        self.intake_revived = 0
        self.intake_evicted = 0
        self.republished = 0
        self.drop_reasons: Dict[str, int] = {}
        self._per_node: Dict[str, Dict[str, int]] = {}
        self._per_link: Dict[Tuple[str, str], Dict[str, int]] = {}

    # ----------------------------------------------------------------- emit

    def emit(
        self,
        time: float,
        kind: str,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        msg_kind: Optional[str] = None,
        reason: Optional[str] = None,
        **detail: Any,
    ) -> TraceEvent:
        event = TraceEvent(
            time=time, kind=kind, src=src, dst=dst,
            msg_kind=msg_kind, reason=reason, detail=detail or None,
        )
        self._events.append(event)
        self.emitted += 1
        return event

    def _node(self, node_id: str) -> Dict[str, int]:
        return self._per_node.setdefault(node_id, _blank_counters())

    def _link(self, src: str, dst: str) -> Dict[str, int]:
        return self._per_link.setdefault((src, dst), _blank_counters())

    def record_schedule(self, time: float, src: str, dst: str,
                        msg_kind: str, attempt: int = 1) -> None:
        """One transmission attempt handed to a link."""
        self.scheduled += 1
        self._node(src)["scheduled"] += 1
        self._link(src, dst)["scheduled"] += 1
        self.emit(time, SCHEDULE, src=src, dst=dst, msg_kind=msg_kind,
                  attempt=attempt)

    def record_deliver(self, time: float, src: str, dst: str,
                       msg_kind: str) -> None:
        self.delivered += 1
        self._node(dst)["delivered"] += 1
        self._link(src, dst)["delivered"] += 1
        self.emit(time, DELIVER, src=src, dst=dst, msg_kind=msg_kind)

    def record_drop(self, time: float, src: str, dst: str,
                    msg_kind: str, reason: str) -> None:
        self.dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        self._node(dst)["dropped"] += 1
        self._link(src, dst)["dropped"] += 1
        self.emit(time, DROP, src=src, dst=dst, msg_kind=msg_kind,
                  reason=reason)

    def record_retransmit(self, time: float, src: str, dst: str,
                          msg_kind: str, attempt: int, delay: float) -> None:
        self.retransmits += 1
        self.emit(time, RETRANSMIT, src=src, dst=dst, msg_kind=msg_kind,
                  attempt=attempt, delay=delay)

    def record_give_up(self, time: float, src: str, dst: str,
                       msg_kind: str, attempts: int) -> None:
        self.gave_up += 1
        self.emit(time, GIVE_UP, src=src, dst=dst, msg_kind=msg_kind,
                  attempts=attempts)

    def record_fork(self, time: float, node_id: str, **detail: Any) -> None:
        """Ledger-level divergence observed at ``node_id`` (a reorg, a
        conflicting head) — the Section IV events faults provoke."""
        self.forks += 1
        self.emit(time, FORK, src=node_id, **detail)

    def record_intake_park(self, time: float, node_id: str,
                           missing: Any, evicted: int = 0) -> None:
        """An artifact parked in ``node_id``'s intake layer waiting on
        ``missing``; ``evicted`` counts entries the bound pushed out."""
        self.intake_parked += 1
        self.intake_evicted += evicted
        self.emit(time, INTAKE_PARK, dst=node_id, missing=str(missing),
                  evicted=evicted)

    def record_intake_revive(self, time: float, node_id: str,
                             count: int) -> None:
        """``count`` parked artifacts re-attempted after heal/restart."""
        self.intake_revived += count
        self.emit(time, INTAKE_REVIVE, dst=node_id, count=count)

    def record_republish(self, time: float, node_id: str,
                         count: int) -> None:
        """``count`` offline-created artifacts re-gossiped on reconnect."""
        self.republished += count
        self.emit(time, REPUBLISH, src=node_id, count=count)

    # ---------------------------------------------------------------- query

    @property
    def in_flight(self) -> int:
        """Attempts scheduled but not yet resolved (0 after quiescence)."""
        return self.scheduled - self.delivered - self.dropped

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def node_counters(self, node_id: str) -> Dict[str, int]:
        return dict(self._per_node.get(node_id, _blank_counters()))

    def link_counters(self, src: str, dst: str) -> Dict[str, int]:
        return dict(self._per_link.get((src, dst), _blank_counters()))

    def counters(self) -> Dict[str, float]:
        """Flat counter dict, suitable for ``MetricCollector.ingest_tracer``."""
        flat: Dict[str, float] = {
            "trace.scheduled": float(self.scheduled),
            "trace.delivered": float(self.delivered),
            "trace.dropped": float(self.dropped),
            "trace.retransmits": float(self.retransmits),
            "trace.give_ups": float(self.gave_up),
            "trace.forks": float(self.forks),
            "trace.in_flight": float(self.in_flight),
            "trace.intake_parked": float(self.intake_parked),
            "trace.intake_revived": float(self.intake_revived),
            "trace.intake_evicted": float(self.intake_evicted),
            "trace.republished": float(self.republished),
        }
        for reason, count in self.drop_reasons.items():
            flat[f"trace.dropped.{reason}"] = float(count)
        return flat

    def fingerprint(self) -> str:
        """Deterministic digest of the cumulative trace counters.

        Two runs of the same seeded scenario must produce the same
        fingerprint — the replay oracle `repro.check` asserts.  Only the
        monotone counters (global, per-node, per-link, drop reasons) are
        hashed, so the digest is independent of the ring buffer's
        capacity and of how many old records fell off it.
        """
        parts: List[str] = [
            f"emitted={self.emitted}",
            f"scheduled={self.scheduled}",
            f"delivered={self.delivered}",
            f"dropped={self.dropped}",
            f"retransmits={self.retransmits}",
            f"gave_up={self.gave_up}",
            f"forks={self.forks}",
            f"intake_parked={self.intake_parked}",
            f"intake_revived={self.intake_revived}",
            f"intake_evicted={self.intake_evicted}",
            f"republished={self.republished}",
        ]
        for reason, count in sorted(self.drop_reasons.items()):
            parts.append(f"drop:{reason}={count}")
        for node_id, counters in sorted(self._per_node.items()):
            for name, count in sorted(counters.items()):
                parts.append(f"node:{node_id}:{name}={count}")
        for (src, dst), counters in sorted(self._per_link.items()):
            for name, count in sorted(counters.items()):
                parts.append(f"link:{src}->{dst}:{name}={count}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def summary(self) -> str:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.drop_reasons.items())
        ) or "none"
        return (
            f"scheduled={self.scheduled} delivered={self.delivered} "
            f"dropped={self.dropped} ({reasons}) "
            f"retransmits={self.retransmits} in_flight={self.in_flight}"
        )

    # ----------------------------------------------------------------- dump

    def dump_jsonl(self, target: Union[str, IO[str]],
                   kinds: Optional[Iterable[str]] = None) -> int:
        """Write buffered events (optionally filtered) as JSONL.

        Returns the number of records written.  ``target`` may be a path
        or an open text file object.
        """
        wanted = set(kinds) if kinds is not None else None
        events = [
            e for e in self._events
            if wanted is None or e.kind in wanted
        ]
        if isinstance(target, str):
            with open(target, "w") as handle:
                return self.dump_jsonl(handle, kinds)
        for event in events:
            target.write(event.to_json() + "\n")
        return len(events)


#: Shared inert record returned by :meth:`NullTracer.emit` so callers that
#: keep the return value still receive a well-formed event.
_NULL_EVENT = TraceEvent(time=0.0, kind="null")


class NullTracer(Tracer):
    """A tracer that records nothing — the pay-for-use fast path.

    Untraced sweeps pass this to :class:`repro.net.network.Network` (or
    helpers like :func:`repro.dag.bootstrap.build_nano_testbed`) so the
    gossip hot path skips trace-record construction *and* counter upkeep
    entirely; the fabric's own ``messages_delivered``/``messages_lost``
    totals remain available.  The accounting invariant ``scheduled ==
    delivered + dropped`` is not checkable on a null trace — benches that
    assert it (A7) must use a real :class:`Tracer`.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def emit(self, time, kind, src=None, dst=None, msg_kind=None,
             reason=None, **detail) -> TraceEvent:
        return _NULL_EVENT

    def record_schedule(self, time, src, dst, msg_kind, attempt=1) -> None:
        pass

    def record_deliver(self, time, src, dst, msg_kind) -> None:
        pass

    def record_drop(self, time, src, dst, msg_kind, reason) -> None:
        pass

    def record_retransmit(self, time, src, dst, msg_kind, attempt, delay) -> None:
        pass

    def record_give_up(self, time, src, dst, msg_kind, attempts) -> None:
        pass

    def record_fork(self, time, node_id, **detail) -> None:
        pass

    def record_intake_park(self, time, node_id, missing, evicted=0) -> None:
        pass

    def record_intake_revive(self, time, node_id, count) -> None:
        pass

    def record_republish(self, time, node_id, count) -> None:
        pass
