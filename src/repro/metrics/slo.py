"""Service-level reporting for sustained-load runs.

The paper's latency claims (Section IV: ~1 h Bitcoin, ~3 min Ethereum,
seconds for Nano) are *unloaded* figures.  Under sustained offered load
the interesting quantity is the latency/throughput curve: carried
throughput tracks offered load up to a saturation knee, beyond which the
backlog (Section VI's pending-transaction picture) grows without bound
and tail latency explodes.  This module turns per-transaction
submit→confirm latencies into that curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import percentile

#: Carried/offered ratio at or above which a load point counts as "keeping
#: up".  Poisson noise makes exact equality unattainable.
DEFAULT_KNEE_THRESHOLD = 0.8


@dataclass(frozen=True)
class LoadPoint:
    """One offered-load level of a sweep, with its service outcome."""

    offered_tps: float
    achieved_tps: float
    submitted: int
    confirmed: int
    p50_s: float
    p95_s: float
    p99_s: float
    backpressure_fraction: float = 0.0
    rejected: int = 0

    @property
    def carried_ratio(self) -> float:
        """Confirmed transactions as a share of *actual* arrivals.

        Measured against the realized arrival count, not the nominal
        rate: at low rates Poisson noise makes the realized rate drift
        well away from nominal, which would masquerade as saturation.
        """
        offered = self.submitted + self.rejected
        return self.confirmed / offered if offered else 0.0

    def as_metrics(self, prefix: str) -> Dict[str, float]:
        """Flatten into ``{prefix}_{load}_{metric}`` keys for bench rows."""
        tag = f"{prefix}_{self.offered_tps:g}tps"
        return {
            f"{tag}_achieved_tps": self.achieved_tps,
            f"{tag}_p50_s": self.p50_s,
            f"{tag}_p99_s": self.p99_s,
            f"{tag}_backpressure": self.backpressure_fraction,
        }


def load_point(
    offered_tps: float,
    latencies_s: Sequence[float],
    submitted: int,
    duration_s: float,
    rejected: int = 0,
) -> LoadPoint:
    """Summarize one load level from raw confirmation latencies."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    confirmed = len(latencies_s)
    offered = submitted + rejected
    return LoadPoint(
        offered_tps=offered_tps,
        achieved_tps=confirmed / duration_s,
        submitted=submitted,
        confirmed=confirmed,
        p50_s=percentile(latencies_s, 50) if latencies_s else float("inf"),
        p95_s=percentile(latencies_s, 95) if latencies_s else float("inf"),
        p99_s=percentile(latencies_s, 99) if latencies_s else float("inf"),
        backpressure_fraction=rejected / offered if offered else 0.0,
        rejected=rejected,
    )


def latency_histogram(
    latencies_s: Sequence[float], bucket_edges_s: Sequence[float]
) -> List[Tuple[float, int]]:
    """Counts per latency bucket: ``[(upper_edge_s, count), ...]`` with a
    final ``(inf, overflow)`` bucket.  Edges must be increasing."""
    edges = list(bucket_edges_s)
    if edges != sorted(edges) or len(set(edges)) != len(edges):
        raise ValueError("bucket edges must be strictly increasing")
    counts = [0] * (len(edges) + 1)
    for value in latencies_s:
        for i, edge in enumerate(edges):
            if value <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    out = [(edge, counts[i]) for i, edge in enumerate(edges)]
    out.append((float("inf"), counts[-1]))
    return out


def detect_saturation_knee(
    points: Sequence[LoadPoint],
    threshold: float = DEFAULT_KNEE_THRESHOLD,
) -> Optional[float]:
    """The highest offered load the system still carries.

    Scanning in offered-load order: the knee is the last load whose
    carried ratio is ≥ ``threshold``, provided some higher load falls
    below it (otherwise the sweep never saturated and there is no knee
    to report).  Returns the knee's offered TPS, or None.
    """
    ordered = sorted(points, key=lambda p: p.offered_tps)
    knee: Optional[float] = None
    saturated = False
    for point in ordered:
        if point.carried_ratio >= threshold:
            if not saturated:
                knee = point.offered_tps
        else:
            saturated = True
    return knee if saturated else None
