"""Summary statistics for experiment outputs (no scipy dependency)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SummaryStats:
    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def render(self, label: str = "", unit: str = "") -> str:
        return (
            f"{label}: n={self.count} mean={self.mean:.3f}{unit} "
            f"p50={self.p50:.3f}{unit} p95={self.p95:.3f}{unit} "
            f"max={self.maximum:.3f}{unit}"
        )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("cannot take a percentile of no data")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)


def summarize(values: Sequence[float]) -> SummaryStats:
    if not values:
        raise ValueError("cannot summarize no data")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n if n > 1 else 0.0
    return SummaryStats(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=float(min(values)),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        maximum=float(max(values)),
    )


def windowed_rate(
    times: Sequence[float], window_s: float, until: Optional[float] = None
) -> List[Tuple[float, float]]:
    """Event rate (per second) in fixed windows over ``times``.

    Returns ``[(window_end_s, rate), ...]`` covering ``(0, until]`` with
    half-open ``(edge - window_s, edge]`` windows — ``until`` defaults to
    the last event time, which is therefore *included* in the final
    window (events exactly on a window edge count toward the window that
    ends there).  This is how degraded-network runs visualise a fault:
    delivery rate collapses inside the partition window and recovers
    after heal.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if until is None:
        until = max(times) if times else 0.0
    ordered = sorted(t for t in times if t <= until)
    windows: List[Tuple[float, float]] = []
    edge = window_s
    i = 0
    while edge - window_s < until:
        count = 0
        while i < len(ordered) and ordered[i] <= edge:
            count += 1
            i += 1
        windows.append((edge, count / window_s))
        edge += window_s
    return windows


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> Tuple[float, float]:
    """Normal-approximation CI for the mean (default 95%)."""
    stats = summarize(values)
    if stats.count < 2:
        return (stats.mean, stats.mean)
    half = z * stats.stdev / math.sqrt(stats.count)
    return (stats.mean - half, stats.mean + half)


def aggregate_samples(values: Sequence[float], z: float = 1.96) -> dict:
    """Cross-seed aggregate for one metric: mean, CI, spread.

    The flat-dict shape is what ``repro.runner.report`` writes into
    ``BENCH_<id>.json`` aggregate blocks.  A single sample degenerates
    to a zero-width interval rather than raising.
    """
    stats = summarize(values)
    lo, hi = confidence_interval(values, z)
    return {
        "n": stats.count,
        "mean": stats.mean,
        "stdev": stats.stdev,
        "min": stats.minimum,
        "max": stats.maximum,
        "ci95_lo": lo,
        "ci95_hi": hi,
    }


def binomial_ci(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson interval for a proportion (attack success rates)."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
    return (max(0.0, center - half), min(1.0, center + half))
