"""Time-series metric collection for simulations."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.metrics.stats import SummaryStats, summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace import Tracer


@dataclass
class MetricCollector:
    """Named counters and sample series recorded during a run.

    Series are kept sorted by sample time: :meth:`record` accepts
    out-of-order timestamps (events from different components need not
    arrive chronologically) and :meth:`merge` interleaves, so windowed
    and time-series consumers can rely on monotone time.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def record(self, name: str, time_s: float, value: float) -> None:
        samples = self.series.setdefault(name, [])
        if samples and time_s < samples[-1][0]:
            samples.insert(bisect_right(samples, (time_s, float("inf"))),
                           (time_s, value))
        else:
            samples.append((time_s, value))

    def values(self, name: str) -> List[float]:
        return [v for _, v in self.series.get(name, [])]

    def samples(self, name: str) -> List[Tuple[float, float]]:
        """(time, value) pairs in non-decreasing time order."""
        return list(self.series.get(name, []))

    def window(self, name: str, start_s: float,
               end_s: float) -> List[Tuple[float, float]]:
        """Samples with ``start_s <= time < end_s`` — valid only because
        series are maintained in time order."""
        if end_s < start_s:
            raise ValueError("window end precedes start")
        samples = self.series.get(name, [])
        lo = bisect_left(samples, (start_s,))
        hi = bisect_left(samples, (end_s,))
        return samples[lo:hi]

    def summary(self, name: str) -> SummaryStats:
        return summarize(self.values(name))

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def merge(self, other: "MetricCollector") -> None:
        """Fold another collector in: counters add, series interleave
        preserving time order (a plain extend would corrupt any windowed
        consumer whenever the runs overlap in time)."""
        for name, value in other.counters.items():
            self.incr(name, value)
        for name, samples in other.series.items():
            mine = self.series.get(name)
            if not mine:
                merged = sorted(samples, key=lambda s: s[0])
            else:
                merged = sorted(mine + samples, key=lambda s: s[0])
            self.series[name] = merged

    def ingest_tracer(self, tracer: "Tracer") -> None:
        """Snapshot a :class:`repro.trace.Tracer`'s cumulative counters
        into ``trace.*`` metrics (overwrites previous snapshot so the
        counters stay consistent with each other)."""
        for name, value in tracer.counters().items():
            self.counters[name] = value
