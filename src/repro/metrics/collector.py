"""Time-series metric collection for simulations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.metrics.stats import SummaryStats, summarize


@dataclass
class MetricCollector:
    """Named counters and sample series recorded during a run."""

    counters: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def record(self, name: str, time_s: float, value: float) -> None:
        self.series.setdefault(name, []).append((time_s, value))

    def values(self, name: str) -> List[float]:
        return [v for _, v in self.series.get(name, [])]

    def summary(self, name: str) -> SummaryStats:
        return summarize(self.values(name))

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def merge(self, other: "MetricCollector") -> None:
        for name, value in other.counters.items():
            self.incr(name, value)
        for name, samples in other.series.items():
            self.series.setdefault(name, []).extend(samples)
