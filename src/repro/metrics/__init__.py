"""Metric collection, summary statistics and report tables."""

from repro.metrics.collector import MetricCollector
from repro.metrics.stats import SummaryStats, confidence_interval, percentile, summarize
from repro.metrics.tables import render_table

__all__ = [
    "MetricCollector",
    "SummaryStats",
    "confidence_interval",
    "percentile",
    "render_table",
    "summarize",
]
