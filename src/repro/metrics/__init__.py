"""Metric collection, summary statistics and report tables."""

from repro.metrics.collector import MetricCollector
from repro.metrics.slo import (
    LoadPoint,
    detect_saturation_knee,
    latency_histogram,
    load_point,
)
from repro.metrics.stats import SummaryStats, confidence_interval, percentile, summarize
from repro.metrics.tables import render_table

__all__ = [
    "LoadPoint",
    "MetricCollector",
    "SummaryStats",
    "confidence_interval",
    "detect_saturation_knee",
    "latency_histogram",
    "load_point",
    "percentile",
    "render_table",
    "summarize",
]
