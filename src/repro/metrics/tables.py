"""Plain-text table rendering for bench output.

The benchmark harness prints the same rows/series the paper reports;
this renderer keeps those tables aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_series(
    values: Sequence[float],
    width: int = 60,
    height: int = 8,
    label: str = "",
) -> str:
    """ASCII chart of a numeric series (bench/report eye candy).

    >>> print(render_series([0, 1, 2, 3], width=4, height=2))  # doctest: +SKIP
    """
    if not values:
        raise ValueError("cannot render an empty series")
    if width < 2 or height < 2:
        raise ValueError("chart must be at least 2x2")
    lo, hi = min(values), max(values)
    if hi == lo:
        lo = hi - 1.0  # constant series renders as a full band
    span = hi - lo
    # Resample to the requested width.
    samples = [
        values[min(int(i * len(values) / width), len(values) - 1)]
        for i in range(width)
    ]
    rows = []
    for level in range(height, 0, -1):
        threshold = lo + span * (level - 0.5) / height
        row = "".join("█" if s >= threshold else " " for s in samples)
        rows.append(row)
    header = f"{label}  [{_fmt(lo)} .. {_fmt(hi)}]" if label else f"[{_fmt(lo)} .. {_fmt(hi)}]"
    return header + "\n" + "\n".join(rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)
