"""repro — Blockchain vs. DAG distributed-ledger comparison framework.

A working reproduction of Bencic & Podnar Zarko, *"Distributed Ledger
Technology: Blockchain Compared to Directed Acyclic Graph"* (ICDCS 2018):
full simulations of Bitcoin/Ethereum-style blockchains and the Nano
block-lattice, their consensus and confirmation mechanisms, ledger-size
behaviour, and every scaling approach the paper surveys.

Quick start::

    from repro import BlockchainLedger, DagLedger, compare_ledgers
    from repro.workloads import PaymentWorkload

    events = PaymentWorkload(accounts=10, rate_tps=0.05, seed=1).generate(600)
    report = compare_ledgers(
        BlockchainLedger(), DagLedger(), events,
        accounts=10, initial_balance=1_000_000,
    )
    print(report.render())
"""

from repro.core import (
    BlockchainLedger,
    ComparisonReport,
    DagLedger,
    EXPERIMENTS,
    Experiment,
    Ledger,
    LedgerStats,
    compare_ledgers,
)

__version__ = "1.0.0"

__all__ = [
    "BlockchainLedger",
    "ComparisonReport",
    "DagLedger",
    "EXPERIMENTS",
    "Experiment",
    "Ledger",
    "LedgerStats",
    "compare_ledgers",
    "__version__",
]
