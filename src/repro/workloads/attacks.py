"""Adversarial workloads.

* :class:`DoubleSpendAttacker` — the Section IV-A adversary: mines a
  secret branch containing a conflicting transaction and publishes it if
  it ever outruns the honest chain.
* :class:`SpamAttacker` — the Section III-B adversary Nano's anti-spam
  PoW throttles: tries to flood the lattice with minimal-value sends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.rng import exponential
from repro.crypto.pow import expected_attempts


@dataclass
class DoubleSpendOutcome:
    """Result of one simulated double-spend race."""

    success: bool
    honest_blocks: int
    attacker_blocks: int


class DoubleSpendAttacker:
    """Monte-Carlo double-spend race, block by block.

    The merchant ships after ``confirmations`` honest blocks; the
    attacker, holding ``hashrate_share`` of the power, mines privately
    from the block before the payment and wins by ever taking the lead
    (the longest chain then carries the conflicting spend).  Success
    frequency converges to Nakamoto's closed form
    (:func:`repro.confirmation.nakamoto.attacker_success_probability`).
    """

    def __init__(
        self,
        hashrate_share: float,
        confirmations: int,
        rng: random.Random,
        give_up_epsilon: float = 1e-4,
    ) -> None:
        if not 0 < hashrate_share < 1:
            raise ValueError("attacker share must be in (0, 1)")
        if confirmations < 1:
            raise ValueError("merchant must wait at least one confirmation")
        self.q = hashrate_share
        self.confirmations = confirmations
        self.rng = rng
        # A rational attacker abandons the race once the catch-up
        # probability (q/p)^deficit drops below epsilon; this adaptive
        # horizon keeps the truncation bias below epsilon even as q→1/2,
        # where fixed-round truncation badly under-counts successes.
        import math

        if hashrate_share < 0.5:
            ratio = hashrate_share / (1.0 - hashrate_share)
            self.give_up_deficit = max(
                self.confirmations + 1,
                int(math.ceil(math.log(give_up_epsilon) / math.log(ratio))),
            )
        else:
            self.give_up_deficit = 10_000  # q >= 1/2 always catches up

    def run_once(self) -> DoubleSpendOutcome:
        """One race.  Phase 1: honest chain reaches z confirmations while
        the attacker mines k hidden blocks.  Phase 2: gambler's ruin from
        the resulting deficit, truncated at ``max_extra_rounds``.

        Success uses Nakamoto's criterion — the attacker ever *catches
        up* to the honest chain (deficit reaches zero) — which is the
        event his closed-form sums, so the Monte Carlo converges to
        :func:`repro.confirmation.nakamoto.attacker_success_probability`.
        """
        honest = 0
        attacker = 0
        while honest < self.confirmations:
            if self.rng.random() < self.q:
                attacker += 1
            else:
                honest += 1
        while attacker < honest:
            if honest - attacker > self.give_up_deficit:
                return DoubleSpendOutcome(False, honest, attacker)
            if self.rng.random() < self.q:
                attacker += 1
            else:
                honest += 1
        return DoubleSpendOutcome(True, honest, attacker)

    def success_rate(self, trials: int) -> float:
        """Empirical attack success probability over ``trials`` races."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        wins = sum(1 for _ in range(trials) if self.run_once().success)
        return wins / trials


@dataclass
class SpamCost:
    """What a spam campaign costs the attacker (bench E3)."""

    transactions: int
    total_hashes: float
    wall_clock_s: float


class SpamAttacker:
    """Models flooding a DAG ledger under hashcash anti-spam PoW.

    Each spam block requires ``difficulty`` expected hash attempts; with
    ``hashrate`` hashes/second the attacker's sustainable spam rate is
    ``hashrate / difficulty`` TPS, while a legitimate user issuing one tx
    pays the same tiny cost once — "a spam protection measure to prevent
    over-generation of transactions" that leaves normal use unaffected.
    """

    def __init__(self, hashrate_hps: float, work_difficulty: float) -> None:
        if hashrate_hps <= 0:
            raise ValueError("hashrate must be positive")
        self.hashrate_hps = hashrate_hps
        self.work_difficulty = work_difficulty

    @property
    def max_spam_tps(self) -> float:
        return self.hashrate_hps / expected_attempts(self.work_difficulty)

    def campaign_cost(self, transactions: int) -> SpamCost:
        if transactions < 0:
            raise ValueError("transactions must be non-negative")
        hashes = transactions * expected_attempts(self.work_difficulty)
        return SpamCost(
            transactions=transactions,
            total_hashes=hashes,
            wall_clock_s=hashes / self.hashrate_hps,
        )

    def spam_times(self, rng: random.Random, duration_s: float) -> list:
        """Poisson spam emission times at the sustainable rate."""
        times = []
        t = 0.0
        while True:
            t += exponential(rng, self.max_spam_tps)
            if t >= duration_s:
                return times
            times.append(t)
