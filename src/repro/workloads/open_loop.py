"""Open-loop traffic injection into a live deployment.

``Ledger.run_workload`` is *closed-loop*: it advances the simulation to
each event's timestamp, so submission can never outpace the ledger.  A
sustained-service measurement needs the opposite — an arrival process
that does not care whether the system keeps up (offered load vs carried
load, the Section VI saturation picture).  :class:`OpenLoopInjector`
rides a ``schedule_periodic`` tick inside the deployment's own
simulator and submits every Poisson arrival whose timestamp has come
due, whether or not earlier traffic confirmed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.common.types import Hash
from repro.workloads.generators import PaymentEvent, PaymentWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ledger import Ledger

#: Default drain tick: fine enough that several arrivals rarely share a
#: tick at the loads the benches sweep, coarse enough to stay cheap.
DEFAULT_TICK_S = 0.25


@dataclass
class OpenLoopReport:
    """What the injector offered vs what the ledger accepted."""

    offered: int = 0
    submitted: int = 0
    rejected: int = 0
    #: entry id -> simulated submission time (latency measurement base)
    submit_times: Dict[Hash, float] = field(default_factory=dict)

    @property
    def backpressure_fraction(self) -> float:
        """Share of offered traffic the ledger refused (admission
        control, underfunded senders, unreachable nodes)."""
        return self.rejected / self.offered if self.offered else 0.0


class OpenLoopInjector:
    """Poisson arrivals over Zipf accounts, injected at wall-clock rate.

    The workload stream is drawn lazily (one-event lookahead), so a long
    soak never materializes its full schedule in memory.
    """

    def __init__(
        self,
        ledger: "Ledger",
        workload: PaymentWorkload,
        duration_s: float,
        tick_s: float = DEFAULT_TICK_S,
    ) -> None:
        if duration_s <= 0 or tick_s <= 0:
            raise ValueError("duration and tick must be positive")
        self.ledger = ledger
        self.workload = workload
        self.duration_s = duration_s
        self.tick_s = tick_s
        self.report = OpenLoopReport()
        self._events: Optional[Iterator[PaymentEvent]] = None
        self._lookahead: Optional[PaymentEvent] = None
        self._start_time: Optional[float] = None

    @classmethod
    def from_sim_stream(
        cls,
        ledger: "Ledger",
        accounts: int,
        rate_tps: float,
        duration_s: float,
        zipf_alpha: float = 0.8,
        tick_s: float = DEFAULT_TICK_S,
        stream: str = "open-loop-workload",
    ) -> "OpenLoopInjector":
        """Injector whose draws come from a forked simulator stream, so
        adding open-loop traffic perturbs no other component's RNG."""
        deployment = ledger.deployment()
        if deployment is None:
            raise ValueError("open-loop injection needs a simulated deployment")
        rng: random.Random = deployment.simulator.fork_rng(stream)
        workload = PaymentWorkload.from_rng(
            rng, accounts=accounts, rate_tps=rate_tps, zipf_alpha=zipf_alpha
        )
        return cls(ledger, workload, duration_s, tick_s=tick_s)

    def start(self) -> None:
        """Arm the periodic drain on the deployment's simulator.

        Must be called after ``ledger.setup``; traffic is offered over
        ``[now, now + duration_s)`` as the caller advances the sim.
        """
        deployment = self.ledger.deployment()
        if deployment is None:
            raise ValueError("open-loop injection needs a simulated deployment")
        simulator = deployment.simulator
        self._start_time = simulator.now
        self._events = self.workload.events(self.duration_s)
        self._lookahead = next(self._events, None)
        # One trailing tick past the horizon so arrivals just under
        # ``duration_s`` are still drained.
        simulator.schedule_periodic(
            self.tick_s,
            self._tick,
            until=self._start_time + self.duration_s + self.tick_s,
        )

    def _tick(self) -> None:
        assert self._events is not None and self._start_time is not None
        deployment = self.ledger.deployment()
        assert deployment is not None
        elapsed = deployment.simulator.now - self._start_time
        while self._lookahead is not None and self._lookahead.time_s <= elapsed:
            event = self._lookahead
            self._lookahead = next(self._events, None)
            self.report.offered += 1
            entry = self.ledger.submit(event)
            if entry is None:
                self.report.rejected += 1
            else:
                self.report.submitted += 1
                self.report.submit_times[entry] = deployment.simulator.now

    # ------------------------------------------------------------- analysis

    def confirmed_latencies(self) -> List[float]:
        """Submit→confirm latency of every injected entry confirmed by
        now, measured against the adapter's own confirmation clock."""
        stats = self.ledger.stats()
        return stats.confirmation_latencies_s
