"""Synthetic payment workloads.

Payment traffic in public ledgers is heavy-tailed: a few hot services
account for most transfers.  The generator draws senders/recipients from
a Zipf popularity distribution (``alpha=0`` degenerates to uniform) and
arrival times from a Poisson process, which is what the scalability and
ledger-growth benches feed to both paradigms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

from repro.common.rng import exponential, weighted_choice, zipf_weights

if TYPE_CHECKING:  # pragma: no cover - layering guard, net types only
    from repro.net.message import Message
    from repro.net.node import NetworkNode
    from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class PaymentEvent:
    """One intended transfer, paradigm-agnostic."""

    time_s: float
    sender_index: int
    recipient_index: int
    amount: int


class PaymentWorkload:
    """Poisson arrivals with Zipf-popular endpoints.

    >>> wl = PaymentWorkload(accounts=10, rate_tps=5.0, seed=1)
    >>> events = wl.generate(duration_s=10.0)
    >>> all(e.sender_index != e.recipient_index for e in events)
    True
    """

    def __init__(
        self,
        accounts: int,
        rate_tps: float,
        zipf_alpha: float = 0.8,
        min_amount: int = 1,
        max_amount: int = 1_000,
        seed: int = 0,
    ) -> None:
        if accounts < 2:
            raise ValueError("need at least two accounts")
        if rate_tps <= 0:
            raise ValueError("rate must be positive")
        if min_amount < 1 or max_amount < min_amount:
            raise ValueError("invalid amount range")
        self.accounts = accounts
        self.rate_tps = rate_tps
        self.min_amount = min_amount
        self.max_amount = max_amount
        self._weights = zipf_weights(accounts, zipf_alpha)
        self._indices = list(range(accounts))
        self._rng = random.Random(seed)

    @classmethod
    def from_rng(
        cls,
        rng: random.Random,
        accounts: int,
        rate_tps: float,
        zipf_alpha: float = 0.8,
        min_amount: int = 1,
        max_amount: int = 1_000,
    ) -> "PaymentWorkload":
        """Build a workload driven by an externally forked RNG stream.

        The fuzzer (``repro.check``) forks one labelled stream per
        component from a master seed; injecting it here means payment
        draws stay reproducible without perturbing any other stream.
        """
        workload = cls(
            accounts=accounts,
            rate_tps=rate_tps,
            zipf_alpha=zipf_alpha,
            min_amount=min_amount,
            max_amount=max_amount,
        )
        workload._rng = rng
        return workload

    def _pick_pair(self) -> tuple:
        sender = weighted_choice(self._rng, self._indices, self._weights)
        recipient = sender
        while recipient == sender:
            recipient = weighted_choice(self._rng, self._indices, self._weights)
        return sender, recipient

    def events(self, duration_s: float) -> Iterator[PaymentEvent]:
        """Stream events over [0, duration)."""
        t = 0.0
        while True:
            t += exponential(self._rng, self.rate_tps)
            if t >= duration_s:
                return
            sender, recipient = self._pick_pair()
            yield PaymentEvent(
                time_s=t,
                sender_index=sender,
                recipient_index=recipient,
                amount=self._rng.randint(self.min_amount, self.max_amount),
            )

    def generate(self, duration_s: float) -> List[PaymentEvent]:
        return list(self.events(duration_s))

    def generate_count(self, count: int) -> List[PaymentEvent]:
        """Exactly ``count`` events (duration open-ended)."""
        out: List[PaymentEvent] = []
        t = 0.0
        for _ in range(count):
            t += exponential(self._rng, self.rate_tps)
            sender, recipient = self._pick_pair()
            out.append(
                PaymentEvent(
                    time_s=t,
                    sender_index=sender,
                    recipient_index=recipient,
                    amount=self._rng.randint(self.min_amount, self.max_amount),
                )
            )
        return out


def gossip_workload(
    simulator: "Simulator",
    nodes: Sequence["NetworkNode"],
    rate_tps: float,
    duration_s: float,
    size_bytes: int = 256,
    kind: str = "gossip",
) -> List[Tuple[float, str, "Message"]]:
    """Schedule Poisson-timed broadcasts from rotating origin nodes.

    The fault-tolerance experiments feed this through a degraded
    network: each record is one message flooded from one origin.  The
    returned list is *live* — it is populated as the simulation runs,
    and only contains broadcasts that actually fired (an origin that is
    offline at fire time skips its slot, like a crashed gossip source).
    Draws come from a forked ``gossip-workload`` stream, so adding this
    workload does not perturb other components' randomness.
    """
    if rate_tps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    from repro.net.message import Message

    rng = simulator.fork_rng("gossip-workload")
    sent: List[Tuple[float, str, Message]] = []
    t = 0.0
    index = 0
    while True:
        t += exponential(rng, rate_tps)
        if t >= duration_s:
            return sent
        origin = nodes[index % len(nodes)]
        index += 1

        def fire(origin=origin) -> None:
            if not origin.online:
                return
            message = Message(kind=kind, payload=f"g{len(sent)}",
                              size_bytes=size_bytes)
            sent.append((simulator.now, origin.node_id, message))
            origin.broadcast(message)

        simulator.schedule_at(t, fire, label="workload:gossip")


def constant_rate_events(
    count: int, rate_tps: float, amount: int = 100, accounts: int = 2
) -> List[PaymentEvent]:
    """Deterministic evenly-spaced events (control experiments)."""
    if rate_tps <= 0 or count < 0:
        raise ValueError("invalid workload parameters")
    interval = 1.0 / rate_tps
    return [
        PaymentEvent(
            time_s=i * interval,
            sender_index=i % accounts,
            recipient_index=(i + 1) % accounts,
            amount=amount,
        )
        for i in range(count)
    ]
