"""Workload and attack generators driving the experiments."""

from repro.workloads.generators import PaymentEvent, PaymentWorkload
from repro.workloads.attacks import DoubleSpendAttacker, SpamAttacker

__all__ = [
    "DoubleSpendAttacker",
    "PaymentEvent",
    "PaymentWorkload",
    "SpamAttacker",
]
