"""Workload and attack generators driving the experiments."""

from repro.workloads.generators import PaymentEvent, PaymentWorkload
from repro.workloads.open_loop import OpenLoopInjector, OpenLoopReport
from repro.workloads.attacks import DoubleSpendAttacker, SpamAttacker

__all__ = [
    "DoubleSpendAttacker",
    "OpenLoopInjector",
    "OpenLoopReport",
    "PaymentEvent",
    "PaymentWorkload",
    "SpamAttacker",
]
