"""Microbenchmarks for the simulator's hot paths.

Each bench exercises one layer every experiment bottoms out in — the
discrete-event loop, gossip fan-out, canonical-encode-then-hash, and
block-lattice settlement — plus two end-to-end experiment trials (E9 and
E14) measured by wall clock.  All benches are deterministic (fixed seeds)
and depend only on public APIs, so the same suite runs against any
revision of the codebase and the numbers stay comparable.

Results are normalized by a *calibration score* (a fixed pure-Python spin
loop) so comparisons across machines of different speeds — a laptop
baseline vs. a CI runner — compare relative cost, not absolute hardware.

The ``repro perf`` CLI command wraps :func:`run_suite` /
:func:`build_report` and writes ``BENCH_PERF.json``; ``repro profile``
wraps a single bench in cProfile.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchResult:
    """Outcome of one microbenchmark run."""

    name: str
    ops: int
    wall_s: float

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else float("inf")

    def to_dict(self) -> Dict[str, float]:
        return {
            "ops": self.ops,
            "wall_s": round(self.wall_s, 6),
            "ops_per_s": round(self.ops_per_s, 2),
        }


@dataclass(frozen=True)
class Bench:
    """A registered microbenchmark.

    ``fn(scale)`` runs the workload once and returns ``(ops, wall_s)``;
    ``scale`` multiplies the workload size (0.1 for smoke tests, 1.0 for
    the committed baseline).  ``repeats`` runs take the best wall time,
    which filters scheduler noise on loaded machines.
    """

    name: str
    description: str
    fn: Callable[[float], Tuple[int, float]]
    repeats: int = 4
    #: paradigms this bench exercises (empty = paradigm-agnostic); the
    #: CLI's ``--paradigm`` filter selects on these tags
    paradigms: Tuple[str, ...] = ()


# --------------------------------------------------------------------------
# Event-loop benches
# --------------------------------------------------------------------------


def _bench_event_loop(scale: float) -> Tuple[int, float]:
    """Raw event throughput: schedule + run a mixed pre-scheduled/chained
    workload of no-op callbacks."""
    from repro.sim.simulator import Simulator

    n = max(1000, int(200_000 * scale))
    sim = Simulator(seed=1)
    fired = [0]

    def noop() -> None:
        fired[0] += 1

    start = perf_counter()
    half = n // 2
    for i in range(half):
        # Deterministic scattered times exercise real heap reordering.
        sim.schedule(((i * 7919) % 9973) / 10.0, noop)
    remaining = [n - half]

    def tick() -> None:
        fired[0] += 1
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.schedule(0.5, tick)

    sim.schedule(0.0, tick)
    sim.run()
    wall = perf_counter() - start
    return sim.events_processed, wall


def _bench_event_cancel(scale: float) -> Tuple[int, float]:
    """Cancellation under load with live-size queries: half the scheduled
    events are cancelled and the queue is sized every 64 pushes (the
    pattern retransmit-heavy gossip runs produce)."""
    from repro.sim.simulator import Simulator

    n = max(1000, int(30_000 * scale))
    sim = Simulator(seed=2)
    fired = [0]

    def noop() -> None:
        fired[0] += 1

    start = perf_counter()
    pending_checks = 0
    previous = None
    for i in range(n):
        event = sim.schedule(((i * 6151) % 7919) / 10.0, noop)
        if previous is not None and i % 2 == 0:
            previous.cancel()
        previous = event
        if i % 64 == 0:
            pending_checks += sim.queue_stats()["pending"]
    sim.run()
    wall = perf_counter() - start
    assert pending_checks >= 0
    return n, wall


# --------------------------------------------------------------------------
# Gossip benches
# --------------------------------------------------------------------------


def _gossip_workload(scale: float, tracer) -> Tuple[int, float]:
    from repro.net.link import FAST_LINK
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.net.node import NetworkNode
    from repro.net.topology import small_world_topology
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=3)
    if tracer is None:
        net = Network(sim)
    else:
        net = Network(sim, tracer=tracer)
    nodes = small_world_topology(net, 24, NetworkNode,
                                 link_params=FAST_LINK, seed=3)
    m = max(10, int(1500 * scale))
    start = perf_counter()
    for i in range(m):
        origin = nodes[i % len(nodes)]
        message = Message(kind="blk", payload=i, size_bytes=240)
        sim.schedule_at(
            i * 0.05,
            (lambda o=origin, msg=message: net.gossip(o.node_id, msg)),
        )
    sim.run()
    wall = perf_counter() - start
    return net.messages_delivered, wall


def _bench_gossip_broadcast(scale: float) -> Tuple[int, float]:
    """Flooding broadcast over a 24-node small world, tracing enabled
    (the default Network configuration)."""
    return _gossip_workload(scale, tracer=None)


def _bench_gossip_untraced(scale: float) -> Tuple[int, float]:
    """Same flood with the pay-for-use no-op tracer (falls back to the
    default tracer on revisions that predate it)."""
    try:
        from repro.trace import NullTracer
        tracer = NullTracer()
    except ImportError:  # pragma: no cover - baseline capture only
        tracer = None
    return _gossip_workload(scale, tracer=tracer)


# --------------------------------------------------------------------------
# Hash / encode benches
# --------------------------------------------------------------------------


def _bench_block_hash_validate(scale: float) -> Tuple[int, float]:
    """Canonical-encode-then-hash: assemble blocks of transactions, then
    run repeated validation passes (Merkle recheck, id, size accounting)
    — the access pattern chain sync and mempool management produce."""
    from repro.blockchain.block import assemble_block
    from repro.blockchain.transaction import make_coinbase
    from repro.crypto.keys import KeyPair

    recipient = KeyPair.from_seed(b"\x11" * 32).address
    blocks_n = max(4, int(150 * scale))
    txs_per_block = 25
    revalidations = 10

    start = perf_counter()
    parent = None
    blocks = []
    nonce = 0
    for _ in range(blocks_n):
        txs = [make_coinbase(recipient, 50 + i, nonce=nonce + i)
               for i in range(txs_per_block)]
        nonce += txs_per_block
        block = assemble_block(
            parent=parent, transactions=txs, timestamp=float(nonce),
            target=2**255,
        )
        parent = block.header
        blocks.append(block)
    touched = blocks_n * txs_per_block
    for _ in range(revalidations):
        for block in blocks:
            assert block.merkle_root_matches()
            assert not block.block_id.is_zero()
            assert block.size_bytes > 0
            touched += len(block.transactions)
    wall = perf_counter() - start
    return touched, wall


def _bench_lattice_settle(scale: float) -> Tuple[int, float]:
    """Block-lattice settlement: open accounts from genesis sends, then
    rounds of send/receive pairs — every block is encoded, hashed, signed,
    verified, and appended."""
    from repro.common.types import Hash
    from repro.crypto.keys import KeyPair
    from repro.dag.blocks import make_open, make_receive, make_send
    from repro.dag.lattice import Lattice
    from repro.dag.params import NanoParams

    accounts_n = 8
    rounds = max(4, int(1500 * scale))
    difficulty = 1.0

    start = perf_counter()
    lattice = Lattice(NanoParams(work_difficulty=difficulty))
    genesis_key = KeyPair.from_seed(b"\x21" * 32)
    lattice.create_genesis(genesis_key, supply=10**15)
    keys = [KeyPair.from_seed(bytes([0x30 + i]) * 32) for i in range(accounts_n)]
    heads = {}
    genesis_head = lattice.chain(genesis_key.address).head
    processed = 0
    for key in keys:
        send = make_send(genesis_key, genesis_head, key.address, 10**9,
                         work_difficulty=difficulty)
        lattice.process(send)
        genesis_head = send
        opened = make_open(key, send.block_hash, 10**9, key.address,
                           work_difficulty=difficulty)
        lattice.process(opened)
        heads[key.address] = opened
        processed += 2
    for i in range(rounds):
        src = keys[i % accounts_n]
        dst = keys[(i + 1) % accounts_n]
        send = make_send(src, heads[src.address], dst.address, 1000,
                         work_difficulty=difficulty)
        lattice.process(send)
        heads[src.address] = send
        receive = make_receive(dst, heads[dst.address], send.block_hash, 1000,
                               work_difficulty=difficulty)
        lattice.process(receive)
        heads[dst.address] = receive
        processed += 2
    wall = perf_counter() - start
    assert lattice.pending_count() == 0
    assert not Hash.zero() in (b.block_hash for b in heads.values())
    return processed, wall


# --------------------------------------------------------------------------
# Batch-tier benches
# --------------------------------------------------------------------------


def _bench_sig_batch_verify(scale: float) -> Tuple[int, float]:
    """Artifact lifecycle, cold caches: sign a burst, then first-contact
    verification through the batch API — what every simulated artifact
    pays once per process.  Under the accelerated tier signing seeds the
    sigcache, so the burst partitions into cached triples plus the
    tampered minority (one per 16) that must be recomputed and rejected."""
    from repro.crypto.keys import KeyPair, clear_sigcache, verify_signatures_batch

    signers = 8
    n = max(64, int(6000 * scale))
    keys = [KeyPair.from_seed(bytes([0x40 + i]) * 32) for i in range(signers)]
    messages = [b"burst:%d" % i for i in range(n)]
    start = perf_counter()
    clear_sigcache()
    items = []
    for i in range(n):
        key = keys[i % signers]
        signature = key.sign(messages[i]) if i % 16 != 15 else bytes(64)
        items.append((key.public_key, messages[i], signature))
    verdicts = verify_signatures_batch(items)
    wall = perf_counter() - start
    assert verdicts == [i % 16 != 15 for i in range(n)]
    return n, wall


def _build_source_lattice(accounts_n: int, rounds: int):
    """A populated lattice, its genesis, and all non-genesis blocks in
    creation (dependency-safe) order — shared bench setup."""
    from repro.crypto.keys import KeyPair
    from repro.dag.blocks import make_open, make_receive, make_send
    from repro.dag.lattice import Lattice
    from repro.dag.params import NanoParams

    params = NanoParams(work_difficulty=1.0)
    lattice = Lattice(params)
    genesis_key = KeyPair.from_seed(b"\x51" * 32)
    genesis = lattice.create_genesis(genesis_key, supply=10**15)
    keys = [KeyPair.from_seed(b"\x60" * 28 + i.to_bytes(4, "big"))
            for i in range(accounts_n)]
    heads = {}
    genesis_head = genesis
    ordered = []
    for key in keys:
        send = make_send(genesis_key, genesis_head, key.address, 10**9,
                         work_difficulty=1.0)
        lattice.process(send)
        genesis_head = send
        opened = make_open(key, send.block_hash, 10**9, key.address,
                           work_difficulty=1.0)
        lattice.process(opened)
        heads[key.address] = opened
        ordered.extend((send, opened))
    for i in range(rounds):
        src = keys[i % accounts_n]
        dst = keys[(i + 1) % accounts_n]
        send = make_send(src, heads[src.address], dst.address, 1000,
                         work_difficulty=1.0)
        lattice.process(send)
        heads[src.address] = send
        receive = make_receive(dst, heads[dst.address], send.block_hash, 1000,
                               work_difficulty=1.0)
        lattice.process(receive)
        heads[dst.address] = receive
        ordered.extend((send, receive))
    return params, lattice, genesis, ordered


def _bench_ingest_batch(scale: float) -> Tuple[int, float]:
    """Burst ingestion through the stack: a cold replica adopts a peer's
    lattice via ``ingest_batch`` — one signature prewarm for the whole
    burst and one closing dependent-retry pass."""
    from repro.crypto.keys import clear_sigcache
    from repro.dag.node import NanoNode

    params, lattice, genesis, ordered = _build_source_lattice(
        accounts_n=8, rounds=max(8, int(600 * scale))
    )
    # Reverse each 16-block window of the creation order: within a window
    # blocks arrive newest-first (they park, then revive in a bounded
    # cascade), while across windows order stays dependency-safe — so the
    # retry recursion never exceeds a window's depth.
    blocks = []
    for i in range(0, len(ordered), 16):
        blocks.extend(reversed(ordered[i:i + 16]))
    replica = NanoNode("replica", params=params, auto_receive=False)
    replica.lattice.install_genesis(genesis)
    start = perf_counter()
    clear_sigcache()
    replica.ingest_batch(blocks, skip=lambda b: b.block_hash in replica.lattice)
    wall = perf_counter() - start
    # Parked blocks revived mid-batch integrate through the retry path,
    # so convergence (not the direct-integration count) is the invariant.
    assert replica.lattice.block_count() == lattice.block_count()
    return len(blocks), wall


def _bench_delivery_coalesce(scale: float) -> Tuple[int, float]:
    """Same-timestamp gossip bursts over zero-jitter links: the run loop
    drains each receiver's burst as one coalesced delivery batch."""
    from repro.net.link import LinkParams
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.net.node import NetworkNode
    from repro.net.topology import small_world_topology
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=7)
    net = Network(sim, coalesce=True)
    link = LinkParams(latency_s=0.005, jitter_s=0.0, bandwidth_bps=1e9)
    nodes = small_world_topology(net, 24, NetworkNode, link_params=link, seed=7)
    m = max(10, int(1500 * scale))
    width = len(nodes)
    start = perf_counter()
    for i in range(m):
        origin = nodes[i % width]
        message = Message(kind="blk", payload=i, size_bytes=240)
        sim.schedule_at(
            (i // width) * 0.05,
            (lambda o=origin, msg=message: net.gossip(o.node_id, msg)),
        )
    sim.run()
    wall = perf_counter() - start
    return net.messages_delivered, wall


def _bench_mempool_admit(scale: float) -> Tuple[int, float]:
    """Fee-market admission under a bounded pool: every add competes on
    fee rate, with periodic block-template selections mixed in."""
    from repro.blockchain.mempool import Mempool, MempoolLimits
    from repro.crypto.keys import KeyPair
    from repro.blockchain.transaction import sign_account_transaction

    n = max(100, int(4000 * scale))
    keys = [KeyPair.from_seed(bytes([0x70 + i]) * 32) for i in range(4)]
    recipient = keys[0].address
    txs = [
        sign_account_transaction(
            keys[i % 4], nonce=i // 4, recipient=recipient, value=1,
            gas_price=1 + (i * 7919) % 97,
        )
        for i in range(n)
    ]
    pool = Mempool(limits=MempoolLimits(max_count=max(64, n // 8)))
    start = perf_counter()
    admitted = 0
    for i, tx in enumerate(txs):
        if pool.add(tx, fee=tx.gas_price * tx.gas_limit):
            admitted += 1
        if i % 512 == 511:
            pool.select_by_gas(2_000_000)
    wall = perf_counter() - start
    assert 0 < admitted <= n
    return n, wall


def _bench_intake_park_revive(scale: float) -> Tuple[int, float]:
    """Worst-case out-of-order arrival: every account chain arrives
    newest-first, so all but one block per chain parks in the intake
    layer and the final dependency revives the whole cascade."""
    from repro.dag.node import NanoNode

    # Many short chains (not a few long ones): dependency cascades stay a
    # few blocks deep, so the revive recursion never gets near the limit.
    accounts_n = max(16, int(400 * scale))
    params, lattice, genesis, _ordered = _build_source_lattice(
        accounts_n=accounts_n, rounds=accounts_n
    )
    genesis_chain = []
    account_chains = []
    for chain in lattice.chains():
        blocks = [b for b in chain.blocks if b.block_hash != genesis.block_hash]
        if chain.blocks and chain.blocks[0].block_hash == genesis.block_hash:
            genesis_chain = blocks
        else:
            account_chains.append(blocks)
    replica = NanoNode("replica", params=params, auto_receive=False)
    replica.lattice.install_genesis(genesis)
    ops = 0
    start = perf_counter()
    for block in genesis_chain:  # in order: integrates immediately
        replica.ingest_quietly(block)
        ops += 1
    for blocks in account_chains:  # newest-first: parks, then cascades
        for block in reversed(blocks):
            replica.ingest_quietly(block)
            ops += 1
    wall = perf_counter() - start
    assert len(replica.intake) == 0
    assert replica.lattice.block_count() == lattice.block_count()
    return ops, wall


# --------------------------------------------------------------------------
# End-to-end experiment trials (wall clock)
# --------------------------------------------------------------------------


def _run_experiment(experiment_id: str, params: Dict[str, float],
                    seed: int) -> Tuple[int, float]:
    from repro.core.experiment import EXPERIMENTS

    runner = EXPERIMENTS[experiment_id].load_runner()
    start = perf_counter()
    result = runner(params, seed)
    wall = perf_counter() - start
    assert result["experiment_id"] == experiment_id
    return 1, wall


def _bench_e9_blockchain_tps(scale: float) -> Tuple[int, float]:
    """One E9 saturation trial (reduced horizon) — blockchain TPS
    end-to-end wall clock."""
    duration = max(60.0, 300.0 * scale)
    return _run_experiment("E9", {"offered_tps": 20.0, "duration_s": duration},
                           seed=1)


def _bench_e14_dag_tps(scale: float) -> Tuple[int, float]:
    """One E14 offered-load trial — DAG TPS end-to-end wall clock."""
    duration = max(4.0, 15.0 * scale)
    return _run_experiment(
        "E14",
        {"offered_tps": 60.0, "processing_tps": 0.0, "duration_s": duration},
        seed=1,
    )


def _bench_bft_commit(scale: float) -> Tuple[int, float]:
    """Quorum-certificate commit throughput: payments through a 4-node
    HotStuff deployment, counted as committed payments."""
    from repro.core.deploy import build_deployment
    from repro.workloads.generators import PaymentEvent

    payments = max(5, int(40 * scale))
    deployment = build_deployment("bft", seed=3, propose_delay_s=0.05)
    deployment.setup(accounts=4, initial_balance=1_000_000)
    ledger = deployment.ledger
    start = perf_counter()
    for i in range(payments):
        ledger.submit(PaymentEvent(time_s=ledger.now(), sender_index=i % 4,
                                   recipient_index=(i + 1) % 4, amount=5))
        ledger.advance(1.0)
    ledger.advance(30.0)
    wall = perf_counter() - start
    return ledger.stats().entries_confirmed, wall


BENCHES: Dict[str, Bench] = {
    bench.name: bench
    for bench in [
        Bench("event_loop", "event-queue throughput (schedule + run)",
              _bench_event_loop),
        Bench("event_cancel", "cancellation under load with live sizing",
              _bench_event_cancel),
        Bench("gossip_broadcast", "small-world flood, tracing enabled",
              _bench_gossip_broadcast),
        Bench("gossip_untraced", "small-world flood, no-op tracer",
              _bench_gossip_untraced),
        Bench("block_hash_validate", "encode + hash + revalidate blocks",
              _bench_block_hash_validate, paradigms=("blockchain",)),
        Bench("lattice_settle", "block-lattice send/receive settlement",
              _bench_lattice_settle, paradigms=("dag",)),
        Bench("sig_batch_verify", "cold-cache burst signature verification",
              _bench_sig_batch_verify),
        Bench("ingest_batch", "stack burst ingestion (prewarm + one retry pass)",
              _bench_ingest_batch, repeats=2, paradigms=("dag",)),
        Bench("delivery_coalesce", "same-timestamp gossip burst coalescing",
              _bench_delivery_coalesce),
        Bench("mempool_admit", "fee-market mempool admission under caps",
              _bench_mempool_admit, paradigms=("blockchain",)),
        Bench("intake_park_revive", "out-of-order park + dependency revive",
              _bench_intake_park_revive, repeats=2, paradigms=("dag",)),
        Bench("e9_blockchain_tps", "E9 saturation trial wall clock",
              _bench_e9_blockchain_tps, repeats=1,
              paradigms=("blockchain",)),
        Bench("e14_dag_tps", "E14 offered-load trial wall clock",
              _bench_e14_dag_tps, repeats=1, paradigms=("dag",)),
        Bench("bft_commit", "HotStuff quorum-commit throughput",
              _bench_bft_commit, repeats=2, paradigms=("bft",)),
    ]
}


def calibration_score(spins: int = 1_000_000, repeats: int = 5) -> float:
    """Machine-speed yardstick: iterations/s of a fixed pure-Python loop.

    Dividing a bench's ops/s by this score gives a hardware-independent
    relative cost, which is what the CI regression gate compares."""
    best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        acc = 0
        for i in range(spins):
            acc += i
        best = min(best, perf_counter() - start)
    assert acc >= 0
    return spins / best


def run_bench(name: str, scale: float = 1.0) -> BenchResult:
    """Run one bench, best-of-``repeats`` wall time."""
    bench = BENCHES[name]
    best: Optional[Tuple[int, float]] = None
    for _ in range(max(1, bench.repeats)):
        ops, wall = bench.fn(scale)
        if best is None or wall < best[1]:
            best = (ops, wall)
    assert best is not None
    return BenchResult(name=name, ops=best[0], wall_s=best[1])


def run_suite(
    names: Optional[Iterable[str]] = None,
    scale: float = 1.0,
    progress: Optional[Callable[[BenchResult], None]] = None,
) -> Dict[str, BenchResult]:
    """Run the requested benches (default: all) and return their results."""
    selected = list(names) if names else list(BENCHES)
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        raise KeyError(f"unknown benches: {', '.join(unknown)}")
    results: Dict[str, BenchResult] = {}
    for name in selected:
        result = run_bench(name, scale=scale)
        results[name] = result
        if progress is not None:
            progress(result)
    return results


# --------------------------------------------------------------------------
# Reports and regression checks
# --------------------------------------------------------------------------


def build_report(
    results: Dict[str, BenchResult],
    calibration: float,
    scale: float = 1.0,
    reference: Optional[Dict] = None,
) -> Dict:
    """The ``BENCH_PERF.json`` document.

    ``reference`` is a previously written report (e.g. the committed
    pre-optimization capture); when given, per-bench speedups are recorded
    both raw and calibration-normalized."""
    report: Dict = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "scale": scale,
        "calibration_ops_per_s": round(calibration, 2),
        "benchmarks": {name: r.to_dict() for name, r in sorted(results.items())},
    }
    if reference is not None:
        ref_cal = float(reference.get("calibration_ops_per_s", calibration))
        speedup: Dict[str, float] = {}
        normalized: Dict[str, float] = {}
        for name, current in report["benchmarks"].items():
            ref_bench = reference.get("benchmarks", {}).get(name)
            if not ref_bench:
                continue
            raw = current["ops_per_s"] / ref_bench["ops_per_s"]
            speedup[name] = round(raw, 3)
            if ref_cal > 0 and calibration > 0:
                normalized[name] = round(raw * ref_cal / calibration, 3)
        report["reference"] = {
            "calibration_ops_per_s": ref_cal,
            "python": reference.get("python"),
            "benchmarks": reference.get("benchmarks", {}),
        }
        report["speedup_vs_reference"] = speedup
        report["speedup_vs_reference_normalized"] = normalized
    return report


def check_regressions(
    current: Dict, baseline: Dict, tolerance: float = 0.30
) -> List[str]:
    """Compare a fresh report against a committed baseline.

    Returns one message per bench whose calibration-normalized throughput
    fell more than ``tolerance`` below the baseline's.  Benches present in
    only one of the two reports are skipped (adding a bench must not fail
    the gate retroactively)."""
    failures: List[str] = []
    cur_cal = float(current.get("calibration_ops_per_s", 1.0)) or 1.0
    base_cal = float(baseline.get("calibration_ops_per_s", 1.0)) or 1.0
    for name, base in baseline.get("benchmarks", {}).items():
        cur = current.get("benchmarks", {}).get(name)
        if cur is None:
            continue
        base_rel = base["ops_per_s"] / base_cal
        cur_rel = cur["ops_per_s"] / cur_cal
        if cur_rel < base_rel * (1.0 - tolerance):
            failures.append(
                f"{name}: {cur_rel / base_rel:.2f}x of baseline "
                f"(normalized {cur_rel:.4f} vs {base_rel:.4f}, "
                f"tolerance -{tolerance:.0%})"
            )
    return failures


def render_results(results: Dict[str, BenchResult]) -> str:
    """Human-readable table of a suite run."""
    lines = [f"{'bench':<22} {'ops':>10} {'wall (s)':>10} {'ops/s':>14}"]
    for name, result in sorted(results.items()):
        lines.append(
            f"{name:<22} {result.ops:>10} {result.wall_s:>10.3f} "
            f"{result.ops_per_s:>14.1f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Tiny direct entry point: ``python -m repro.perf.suite [bench...]``."""
    names = [a for a in (argv if argv is not None else sys.argv[1:])
             if not a.startswith("-")]
    results = run_suite(names or None)
    print(render_results(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
