"""repro.perf — microbenchmarks and profiling for the hot paths.

* :mod:`repro.perf.suite`   — deterministic microbenchmarks (event loop,
  gossip, hashing, lattice settlement, E9/E14 trials), report building,
  and the regression gate used by CI.
* :mod:`repro.perf.profiling` — cProfile wrapper with top-N hotspot
  output, exposed as ``repro profile <bench>``.

See ``docs/performance.md`` for the workflow.
"""

from repro.perf.suite import (
    BENCHES,
    Bench,
    BenchResult,
    build_report,
    calibration_score,
    check_regressions,
    render_results,
    run_bench,
    run_suite,
)

__all__ = [
    "BENCHES",
    "Bench",
    "BenchResult",
    "build_report",
    "calibration_score",
    "check_regressions",
    "render_results",
    "run_bench",
    "run_suite",
]
