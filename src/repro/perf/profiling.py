"""cProfile wrapper for the microbenchmark suite.

``repro profile <bench>`` runs one registered bench under the profiler
and prints the top-N hotspots, so "where does the time go" is one
command, not a notebook session.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Tuple

from repro.perf.suite import BENCHES

#: pstats sort keys we expose (name -> pstats key).
SORT_KEYS = {
    "cumulative": "cumulative",
    "tottime": "tottime",
    "calls": "calls",
}


def profile_bench(
    name: str,
    scale: float = 1.0,
    top: int = 25,
    sort: str = "cumulative",
) -> Tuple[str, float]:
    """Profile one bench; returns (formatted hotspot table, wall seconds).

    The bench runs exactly once (repeats are pointless under a profiler:
    instrumentation overhead dominates repeatability)."""
    bench = BENCHES[name]
    if sort not in SORT_KEYS:
        raise ValueError(
            f"unknown sort {sort!r} (choose from {', '.join(SORT_KEYS)})"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _, wall = bench.fn(scale)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(SORT_KEYS[sort]).print_stats(top)
    return stream.getvalue(), wall
