"""The network fabric: nodes + links + gossip flooding with recovery.

Gossip is flooding with per-node duplicate suppression plus a
retransmit/backoff primitive: an attempt lost to link loss, a partition,
or an offline receiver is retried with exponential backoff, and attempts
that exhaust their retries are *parked* and revived by :meth:`Network.heal`
or :meth:`Network.kick_retries` (called when a node restarts).  This is
what lets propagation recover after a partition instead of deadlocking
on the duplicate-suppression cache.

Every transmission attempt is accounted in a :class:`repro.trace.Tracer`:
it is recorded as ``schedule`` when handed to a link and resolves as
exactly one ``deliver`` or ``drop``, so completed runs satisfy
``scheduled == delivered + dropped``.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.crypto import accel
from repro.net.link import LinkParams
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.sim.simulator import Simulator
from repro.trace import (
    REASON_LOSS,
    REASON_OFFLINE,
    REASON_PARTITION,
    Tracer,
)


@dataclass(frozen=True)
class RetransmitPolicy:
    """Exponential backoff for lost gossip transmissions.

    ``max_attempts`` counts the initial attempt; after it is exhausted
    the transmission is parked until the next :meth:`Network.heal` /
    :meth:`Network.kick_retries`, so a long partition does not burn an
    unbounded event budget yet still recovers.
    """

    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    max_attempts: int = 6

    def __post_init__(self) -> None:
        if self.base_delay_s <= 0 or self.max_delay_s <= 0:
            raise ValueError("backoff delays must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered
        +/-25% so parked senders do not retry in lockstep."""
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                    self.max_delay_s)
        return delay * rng.uniform(0.75, 1.25)


class SeenCache:
    """Bounded LRU of gossip keys — duplicate suppression without the
    unbounded `_seen` growth of long runs."""

    def __init__(self, capacity: Optional[int] = 65536) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        self._entries: "OrderedDict[object, None]" = OrderedDict()

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, key: object) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = None
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def discard(self, key: object) -> None:
        self._entries.pop(key, None)


class Network:
    """A set of nodes joined by directed links over a simulator.

    Gossip is implemented as flooding with per-node duplicate suppression:
    on first sight of a message a node forwards it to all neighbours
    except the one it came from.  This reproduces the propagation-delay
    distribution that drives soft-fork rates (Section IV-A) — a message
    reaches distant nodes only after several store-and-forward hops.

    This class is the *reference implementation* of the
    :class:`repro.protocol.interfaces.MessagePlane` contract: every
    golden fingerprint in the suite (E9/E14, gossip, parity matrix) is
    pinned on its exact semantics, and the scaled planes
    (:mod:`repro.net.sharded_plane`, :mod:`repro.net.aggregate`) are
    validated against it.
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        tracer: Optional[Tracer] = None,
        retransmit: Optional[RetransmitPolicy] = None,
        seen_cache_size: Optional[int] = 65536,
        coalesce: Optional[bool] = None,
    ) -> None:
        self.simulator = simulator
        self.tracer = tracer if tracer is not None else Tracer()
        self.retransmit = retransmit if retransmit is not None else RetransmitPolicy()
        # Delivery coalescing: same-timestamp deliveries to one node are
        # drained as a single batch dispatch (order-preserving, see
        # Simulator.schedule_batchable).  Defaults to the accelerated
        # tier's setting; pass an explicit bool to override per network.
        self.coalesce = accel.enabled() if coalesce is None else bool(coalesce)
        # Bound once: batch dispatch relies on callable identity to keep
        # heap runs with the same key mergeable (bound-method attribute
        # access would mint a fresh object per schedule).
        self._gossip_dispatch = self._deliver_gossip_batch
        self._transmit_dispatch = self._deliver_transmit_batch
        self._seen_cache_size = seen_cache_size
        self._nodes: Dict[str, NetworkNode] = {}
        self._links: Dict[Tuple[str, str], LinkParams] = {}
        self._neighbors: Dict[str, List[str]] = {}
        self._seen: Dict[str, SeenCache] = {}
        #: keys with an active delivery-or-retry chain per destination
        self._inflight: Dict[str, set] = {}
        #: transmissions that exhausted retries, revived on heal/kick
        self._parked: "OrderedDict[Tuple[str, str, object], Message]" = OrderedDict()
        #: pending backoff timers (timer, message), fast-forwarded on heal/kick
        self._retry_timers: Dict[Tuple[str, str, object], Tuple[object, Message]] = {}
        self._partitions: List[set] = []
        self._rng = simulator.fork_rng("network")
        self._retry_rng = simulator.fork_rng("network-retransmit")
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_transferred = 0

    # ---------------------------------------------------------------- wiring

    def add_node(self, node: NetworkNode) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._neighbors[node.node_id] = []
        self._seen[node.node_id] = SeenCache(self._seen_cache_size)
        self._inflight[node.node_id] = set()
        node.attached(self)

    def connect(self, a: str, b: str, params: Optional[LinkParams] = None) -> None:
        """Create a bidirectional link between two nodes."""
        params = params or LinkParams()
        for src, dst in ((a, b), (b, a)):
            if src not in self._nodes or dst not in self._nodes:
                raise KeyError(f"unknown node in link {src}->{dst}")
            if (src, dst) not in self._links:
                self._neighbors[src].append(dst)
            self._links[(src, dst)] = params

    def set_link(self, a: str, b: str, params: LinkParams,
                 bidirectional: bool = True) -> None:
        """Replace the parameters of an existing link (fault injection:
        degradation and blackhole schedules)."""
        pairs = ((a, b), (b, a)) if bidirectional else ((a, b),)
        for src, dst in pairs:
            if (src, dst) not in self._links:
                raise KeyError(f"no link {src}->{dst}")
            self._links[(src, dst)] = params

    def link_params(self, a: str, b: str) -> LinkParams:
        """Current parameters of the directed link ``a -> b``."""
        return self._links[(a, b)]

    def node(self, node_id: str) -> NetworkNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterable[NetworkNode]:
        return self._nodes.values()

    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def neighbors(self, node_id: str) -> List[str]:
        return list(self._neighbors[node_id])

    # ------------------------------------------------------------ partitions

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network: traffic crosses group boundaries no more.

        Models the transient disagreement windows in which conflicting
        histories form (Section IV).  Call :meth:`heal` to reconnect.
        """
        self._partitions = [set(group) for group in groups]
        self.tracer.emit(self.simulator.now, "partition",
                         groups=[sorted(g) for g in self._partitions])

    def heal(self) -> None:
        """Reconnect all partitions and fast-forward pending/parked
        retransmissions so gossip recovers promptly.  Nodes are then
        notified (:meth:`NetworkNode.on_partition_heal`) so protocol
        stacks can revive their own parked intake artifacts."""
        self._partitions = []
        self.tracer.emit(self.simulator.now, "heal")
        self.kick_retries()
        for node in self._nodes.values():
            node.on_partition_heal()

    def _crosses_partition(self, src: str, dst: str) -> bool:
        for group in self._partitions:
            if (src in group) != (dst in group):
                return True
        return False

    # -------------------------------------------------------- retransmission

    def kick_retries(self, dst: Optional[str] = None) -> None:
        """Retry stalled transmissions now instead of at their backoff
        deadline: pending timers are fast-forwarded and parked (given-up)
        transmissions get a fresh attempt budget.  ``dst`` limits the
        kick to one destination (a node that just came back online)."""
        for key3, (timer, message) in list(self._retry_timers.items()):
            if dst is not None and key3[1] != dst:
                continue
            del self._retry_timers[key3]
            timer.cancel()  # type: ignore[attr-defined]
            src, target, key = key3
            if key in self._seen[target]:
                # Already delivered via another path while the timer was
                # pending — dropping the timer is the whole kick.  Same
                # guard as the parked pass below; ``_attempt_gossip``
                # would also bail, this just skips the dead attempt (and
                # releases the inflight claim) explicitly.
                self._inflight[target].discard(key)
                continue
            self._attempt_gossip(src, target, message, attempt=1)
        for (src, target, key), message in list(self._parked.items()):
            if dst is not None and target != dst:
                continue
            del self._parked[(src, target, key)]
            if key in self._seen[target] or key in self._inflight[target]:
                continue
            self._inflight[target].add(key)
            self._attempt_gossip(src, target, message, attempt=1)

    def _schedule_retry(self, src: str, dst: str, message: Message,
                        attempt: int) -> None:
        key = message.gossip_key()
        tracer = self.tracer
        if attempt >= self.retransmit.max_attempts:
            self._inflight[dst].discard(key)
            self._parked[(src, dst, key)] = message
            if tracer.enabled:
                tracer.record_give_up(
                    self.simulator.now, src, dst, message.kind, attempt
                )
            return
        delay = self.retransmit.backoff(attempt, self._retry_rng)
        if tracer.enabled:
            tracer.record_retransmit(
                self.simulator.now, src, dst, message.kind, attempt, delay
            )

        def retry() -> None:
            self._retry_timers.pop((src, dst, key), None)
            if key in self._seen[dst]:  # another path delivered meanwhile
                self._inflight[dst].discard(key)
                return
            self._attempt_gossip(src, dst, message, attempt + 1)

        timer = self.simulator.schedule(delay, retry, label="retransmit")
        self._retry_timers[(src, dst, key)] = (timer, message)

    # --------------------------------------------------------------- traffic

    def transmit(self, src: str, dst: str, message: Message) -> None:
        """Send over the direct link; silently drops on loss/partition
        (the unreliable datagram primitive — gossip adds recovery)."""
        link = self._links.get((src, dst))
        if link is None:
            raise KeyError(f"no link {src}->{dst}")
        now = self.simulator.now
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.record_schedule(now, src, dst, message.kind)
        if self._crosses_partition(src, dst):
            self.messages_lost += 1
            if traced:
                tracer.record_drop(now, src, dst, message.kind,
                                   REASON_PARTITION)
            return
        delay = link.delivery_delay(message, self._rng)
        if delay is None:
            self.messages_lost += 1
            if traced:
                tracer.record_drop(now, src, dst, message.kind, REASON_LOSS)
            return

        if self.coalesce:
            self.simulator.schedule_batchable(
                delay, self._transmit_dispatch, (src, dst, message, traced),
                ("t", dst), label=f"msg:{message.kind}")
            return

        def deliver() -> None:
            node = self._nodes[dst]
            if not node.online:
                self.messages_lost += 1
                if traced:
                    tracer.record_drop(self.simulator.now, src, dst,
                                       message.kind, REASON_OFFLINE)
                return
            self.messages_delivered += 1
            self.bytes_transferred += message.wire_size
            if traced:
                tracer.record_deliver(self.simulator.now, src, dst,
                                      message.kind)
            node.deliver(src, message)

        self.simulator.schedule(delay, deliver, label=f"msg:{message.kind}")

    def _deliver_transmit_batch(self, items: List[tuple]) -> None:
        """Dispatch a coalesced run of direct transmissions to one node.

        Per-item behavior is identical to the scalar ``deliver`` closure
        in :meth:`transmit`; the batch only amortizes the hand-off (one
        ``deliver_batch`` call, one signature prewarm at the node).
        """
        dst = items[0][1]
        node = self._nodes[dst]
        tracer = self.tracer
        now = self.simulator.now
        deliverable = []
        for src, _dst, message, traced in items:
            if not node.online:
                self.messages_lost += 1
                if traced:
                    tracer.record_drop(now, src, dst, message.kind,
                                       REASON_OFFLINE)
                continue
            self.messages_delivered += 1
            self.bytes_transferred += message.wire_size
            if traced:
                tracer.record_deliver(now, src, dst, message.kind)
            deliverable.append((src, message))
        if deliverable:
            node.deliver_batch(deliverable)

    def transmit_reliable(self, src: str, dst: str, message: Message) -> None:
        """Direct send with retransmit/backoff: each failed attempt is
        retried until delivery or ``retransmit.max_attempts``."""
        if (src, dst) not in self._links:
            raise KeyError(f"no link {src}->{dst}")

        tracer = self.tracer
        traced = tracer.enabled

        def attempt(number: int) -> None:
            now = self.simulator.now
            if traced:
                tracer.record_schedule(now, src, dst, message.kind, number)
            reason = None
            delay = None
            if self._crosses_partition(src, dst):
                reason = REASON_PARTITION
            else:
                delay = self._links[(src, dst)].delivery_delay(message, self._rng)
                if delay is None:
                    reason = REASON_LOSS

            def retry_or_give_up() -> None:
                if number >= self.retransmit.max_attempts:
                    if traced:
                        tracer.record_give_up(self.simulator.now, src, dst,
                                              message.kind, number)
                    return
                backoff = self.retransmit.backoff(number, self._retry_rng)
                if traced:
                    tracer.record_retransmit(self.simulator.now, src, dst,
                                             message.kind, number, backoff)
                self.simulator.schedule(backoff, lambda: attempt(number + 1),
                                        label="retransmit")

            if reason is not None:
                self.messages_lost += 1
                if traced:
                    tracer.record_drop(now, src, dst, message.kind, reason)
                retry_or_give_up()
                return

            def deliver() -> None:
                node = self._nodes[dst]
                if not node.online:
                    self.messages_lost += 1
                    if traced:
                        tracer.record_drop(self.simulator.now, src, dst,
                                           message.kind, REASON_OFFLINE)
                    retry_or_give_up()
                    return
                self.messages_delivered += 1
                self.bytes_transferred += message.wire_size
                if traced:
                    tracer.record_deliver(self.simulator.now, src, dst,
                                          message.kind)
                node.deliver(src, message)

            self.simulator.schedule(delay, deliver, label=f"msg:{message.kind}")

        attempt(1)

    def gossip(self, origin: str, message: Message) -> None:
        """Flood ``message`` from ``origin`` through the whole topology."""
        self._seen[origin].add(message.gossip_key())
        self._forward(origin, origin, message)

    def _forward(self, node_id: str, came_from: str, message: Message) -> None:
        key = message.gossip_key()
        for peer in self._neighbors[node_id]:
            if peer == came_from:
                continue
            # A peer is skipped when it already received the message or a
            # delivery/retry chain from another path owns it — ownership,
            # not scheduling, is what suppresses duplicates now.
            if key in self._seen[peer] or key in self._inflight[peer]:
                continue
            self._inflight[peer].add(key)
            self._attempt_gossip(node_id, peer, message, attempt=1)

    def _attempt_gossip(self, src: str, dst: str, message: Message,
                        attempt: int) -> None:
        key = message.gossip_key()
        if key in self._seen[dst]:
            self._inflight[dst].discard(key)
            return
        link = self._links[(src, dst)]
        now = self.simulator.now
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.record_schedule(now, src, dst, message.kind, attempt)
        if self._crosses_partition(src, dst):
            self.messages_lost += 1
            if traced:
                tracer.record_drop(now, src, dst, message.kind,
                                   REASON_PARTITION)
            self._schedule_retry(src, dst, message, attempt)
            return
        delay = link.delivery_delay(message, self._rng)
        if delay is None:
            self.messages_lost += 1
            if traced:
                tracer.record_drop(now, src, dst, message.kind, REASON_LOSS)
            self._schedule_retry(src, dst, message, attempt)
            return

        if self.coalesce:
            self.simulator.schedule_batchable(
                delay, self._gossip_dispatch,
                (src, dst, message, key, attempt, traced),
                ("g", dst), label=f"gossip:{message.kind}")
            return

        def deliver() -> None:
            node = self._nodes[dst]
            arrival = self.simulator.now
            if not node.online:
                self.messages_lost += 1
                if traced:
                    tracer.record_drop(arrival, src, dst, message.kind,
                                       REASON_OFFLINE)
                self._schedule_retry(src, dst, message, attempt)
                return
            self.messages_delivered += 1
            self.bytes_transferred += message.wire_size
            if traced:
                tracer.record_deliver(arrival, src, dst, message.kind)
            self._seen[dst].add(key)
            self._inflight[dst].discard(key)
            node.deliver(src, message)
            self._forward(dst, src, message)

        self.simulator.schedule(delay, deliver, label=f"gossip:{message.kind}")

    def _deliver_gossip_batch(self, items: List[tuple]) -> None:
        """Dispatch a coalesced run of gossip deliveries to one node.

        Items are processed strictly in scheduling order with the exact
        per-item semantics of the scalar ``deliver`` closure — including
        deliver-then-forward per message, which keeps RNG draw order (and
        therefore golden fingerprints) byte-identical.  The batch's win
        is the up-front signature prewarm across the whole burst.
        """
        dst = items[0][1]
        node = self._nodes[dst]
        tracer = self.tracer
        seen = self._seen[dst]
        inflight = self._inflight[dst]
        if len(items) > 1 and node.online:
            node.prewarm_messages([item[2] for item in items])
        for src, _dst, message, key, attempt, traced in items:
            arrival = self.simulator.now
            if not node.online:
                self.messages_lost += 1
                if traced:
                    tracer.record_drop(arrival, src, dst, message.kind,
                                       REASON_OFFLINE)
                self._schedule_retry(src, dst, message, attempt)
                continue
            self.messages_delivered += 1
            self.bytes_transferred += message.wire_size
            if traced:
                tracer.record_deliver(arrival, src, dst, message.kind)
            seen.add(key)
            inflight.discard(key)
            node.deliver(src, message)
            self._forward(dst, src, message)

    # --------------------------------------------------------------- metrics

    def pending_retries(self) -> int:
        """Transmissions waiting on a backoff timer or parked for heal."""
        return len(self._retry_timers) + len(self._parked)

    def traffic_stats(self) -> Dict[str, float]:
        return {
            "messages_delivered": self.messages_delivered,
            "messages_lost": self.messages_lost,
            "bytes_transferred": self.bytes_transferred,
        }

    def plane_counters(self) -> Dict[str, float]:
        """Fabric-level counters under the ``plane.*`` namespace.

        The :class:`~repro.protocol.interfaces.MessagePlane` counterpart
        of a node's ``layer_counters()``: the totals the fabric itself
        accumulates, uniform across the exact, sharded and aggregate
        implementations so monitors never switch on the concrete class.
        """
        return {
            "plane.messages_delivered": float(self.messages_delivered),
            "plane.messages_lost": float(self.messages_lost),
            "plane.bytes_transferred": float(self.bytes_transferred),
            "plane.pending_retries": float(self.pending_retries()),
        }
