"""The network fabric: nodes + links + gossip flooding."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.link import LinkParams
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.sim.simulator import Simulator


class Network:
    """A set of nodes joined by directed links over a simulator.

    Gossip is implemented as flooding with per-node duplicate suppression:
    on first sight of a message a node forwards it to all neighbours
    except the one it came from.  This reproduces the propagation-delay
    distribution that drives soft-fork rates (Section IV-A) — a message
    reaches distant nodes only after several store-and-forward hops.
    """

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self._nodes: Dict[str, NetworkNode] = {}
        self._links: Dict[Tuple[str, str], LinkParams] = {}
        self._neighbors: Dict[str, List[str]] = {}
        self._seen: Dict[str, Set[object]] = {}
        self._partitions: List[Set[str]] = []
        self._rng = simulator.fork_rng("network")
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_transferred = 0

    # ---------------------------------------------------------------- wiring

    def add_node(self, node: NetworkNode) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._neighbors[node.node_id] = []
        self._seen[node.node_id] = set()
        node.attached(self)

    def connect(self, a: str, b: str, params: Optional[LinkParams] = None) -> None:
        """Create a bidirectional link between two nodes."""
        params = params or LinkParams()
        for src, dst in ((a, b), (b, a)):
            if src not in self._nodes or dst not in self._nodes:
                raise KeyError(f"unknown node in link {src}->{dst}")
            if (src, dst) not in self._links:
                self._neighbors[src].append(dst)
            self._links[(src, dst)] = params

    def node(self, node_id: str) -> NetworkNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterable[NetworkNode]:
        return self._nodes.values()

    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def neighbors(self, node_id: str) -> List[str]:
        return list(self._neighbors[node_id])

    # ------------------------------------------------------------ partitions

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network: traffic crosses group boundaries no more.

        Models the transient disagreement windows in which conflicting
        histories form (Section IV).  Call :meth:`heal` to reconnect.
        """
        self._partitions = [set(group) for group in groups]

    def heal(self) -> None:
        self._partitions = []

    def _crosses_partition(self, src: str, dst: str) -> bool:
        for group in self._partitions:
            if (src in group) != (dst in group):
                return True
        return False

    # --------------------------------------------------------------- traffic

    def transmit(self, src: str, dst: str, message: Message) -> None:
        """Send over the direct link; silently drops on loss/partition."""
        link = self._links.get((src, dst))
        if link is None:
            raise KeyError(f"no link {src}->{dst}")
        if self._crosses_partition(src, dst):
            self.messages_lost += 1
            return
        delay = link.delivery_delay(message, self._rng)
        if delay is None:
            self.messages_lost += 1
            return

        def deliver() -> None:
            self.messages_delivered += 1
            self.bytes_transferred += message.wire_size
            self._nodes[dst].deliver(src, message)

        self.simulator.schedule(delay, deliver, label=f"msg:{message.kind}")

    def gossip(self, origin: str, message: Message) -> None:
        """Flood ``message`` from ``origin`` through the whole topology."""
        self._seen[origin].add(message.gossip_key())
        self._forward(origin, origin, message)

    def _forward(self, node_id: str, came_from: str, message: Message) -> None:
        for peer in self._neighbors[node_id]:
            if peer == came_from:
                continue
            if message.gossip_key() in self._seen[peer]:
                continue
            link = self._links[(node_id, peer)]
            if self._crosses_partition(node_id, peer):
                self.messages_lost += 1
                continue
            delay = link.delivery_delay(message, self._rng)
            if delay is None:
                self.messages_lost += 1
                continue
            # Mark as seen at scheduling time so concurrent floods do not
            # duplicate deliveries; the node still processes it on arrival.
            self._seen[peer].add(message.gossip_key())

            def deliver(peer=peer, node_id=node_id) -> None:
                self.messages_delivered += 1
                self.bytes_transferred += message.wire_size
                self._nodes[peer].deliver(node_id, message)
                self._forward(peer, node_id, message)

            self.simulator.schedule(delay, deliver, label=f"gossip:{message.kind}")

    # --------------------------------------------------------------- metrics

    def traffic_stats(self) -> Dict[str, float]:
        return {
            "messages_delivered": self.messages_delivered,
            "messages_lost": self.messages_lost,
            "bytes_transferred": self.bytes_transferred,
        }
