"""Simulated peer-to-peer network.

Nodes exchange messages over links with configurable latency, bandwidth
and loss; broadcast uses gossip flooding with duplicate suppression —
the propagation model whose delays create the soft forks of Section IV
and bound the throughput of Section VI.

Three message planes implement the
:class:`repro.protocol.interfaces.MessagePlane` contract: the exact
:class:`Network` (reference), the :class:`ShardedMessagePlane` (full
protocol traffic over an epoch-barrier crowd, 10^4-10^6 nodes) and the
mean-field aggregate tier (:class:`AggregateCluster` /
:func:`attach_clusters`, nested cluster-of-clusters at 10^5+).
"""

from repro.net.aggregate import (
    AggregateCluster,
    TopologyScale,
    attach_clusters,
    nested_consistency_at_scale,
    validate_aggregate_model,
    validate_nested_aggregate_model,
)
from repro.net.link import LinkParams
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.sharded_plane import ShardedMessagePlane
from repro.net.topology import complete_topology, random_regular_topology, small_world_topology

__all__ = [
    "AggregateCluster",
    "LinkParams",
    "Message",
    "Network",
    "NetworkNode",
    "ShardedMessagePlane",
    "TopologyScale",
    "attach_clusters",
    "complete_topology",
    "nested_consistency_at_scale",
    "random_regular_topology",
    "small_world_topology",
    "validate_aggregate_model",
    "validate_nested_aggregate_model",
]
