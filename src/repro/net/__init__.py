"""Simulated peer-to-peer network.

Nodes exchange messages over links with configurable latency, bandwidth
and loss; broadcast uses gossip flooding with duplicate suppression —
the propagation model whose delays create the soft forks of Section IV
and bound the throughput of Section VI.
"""

from repro.net.aggregate import (
    AggregateCluster,
    TopologyScale,
    attach_clusters,
    validate_aggregate_model,
)
from repro.net.link import LinkParams
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.net.topology import complete_topology, random_regular_topology, small_world_topology

__all__ = [
    "AggregateCluster",
    "LinkParams",
    "Message",
    "Network",
    "NetworkNode",
    "TopologyScale",
    "attach_clusters",
    "complete_topology",
    "random_regular_topology",
    "small_world_topology",
    "validate_aggregate_model",
]
