"""Mean-field aggregate gossip tier: clusters as vectorized processes.

The exact simulator pays one event per hop per node, which caps honest
runs at a few hundred nodes.  The paper's claims, however, are about
behavior at 10^4-10^6 nodes (Section VI's Visa comparator).  This module
models a *dense cluster* of N nodes as a single :class:`AggregateCluster`
leaf process: when a gossiped message reaches the cluster's ingress, the
full per-node infection timeline is drawn in one numpy batch, and the
cluster's infection count is then advanced per event-loop tick.  A ring
of fully-simulated boundary nodes keeps protocol fidelity where it
matters; the cluster only models propagation load.

The infection model mirrors the exact gossip implementation rather than
a textbook epidemic: in :class:`~repro.net.network.Network`, duplicate
suppression is by *ownership* — the first neighbor to forward a message
claims the destination, so a node's arrival time is its earliest-infected
neighbor's arrival plus one sampled hop delay (losses extend that hop by
retransmit backoff; they do not reroute it).  Layer by layer over a
virtual random-regular interior we therefore draw

    t(child) = min(candidate parents' t) + hop_delay

with hop delays sampled from the same law as
:meth:`~repro.net.link.LinkParams.delivery_delay`.  The
``validate_aggregate_model`` harness floods an exact small-N network and
compares propagation-time distributions by KS statistic; the pinned
tolerance lives in ``tests/test_net_aggregate.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.link import LinkParams, WAN_LINK
from repro.net.message import MESSAGE_OVERHEAD_BYTES, Message
from repro.net.node import NetworkNode

__all__ = [
    "AggregateCluster",
    "TopologyScale",
    "attach_clusters",
    "sample_flood_times",
    "sample_nested_flood_times",
    "exact_flood_times",
    "exact_clustered_flood_times",
    "ks_statistic",
    "validate_aggregate_model",
    "validate_nested_aggregate_model",
    "nested_consistency_at_scale",
]

#: Auto-nesting threshold: clusters at least this large are modeled as a
#: cluster-of-clusters (one gateway flood + per-sub-cluster interiors).
NESTED_AUTO_THRESHOLD = 20_000
#: Target sub-cluster size when auto-nesting picks the fanout.
NESTED_AUTO_LEAF = 10_000


# --------------------------------------------------------------------------
# Vectorized infection-timeline sampling
# --------------------------------------------------------------------------


def hop_layers(count: int, degree: int) -> List[int]:
    """Sizes of the BFS layers of a flood over a random-regular interior.

    The ingress reaches ``degree`` nodes in one hop; each of those has
    ``degree - 1`` onward edges, but in a finite graph some of them
    collide — they point at nodes another frontier edge already claimed.
    With ``a`` edges aimed uniformly at ``r`` still-uninfected nodes the
    expected fresh coverage is ``r * (1 - (1 - 1/r)^a)`` (the classic
    occupancy correction), which is what pushes the tail of a real flood
    several hops deeper than the ideal ``d * (d-1)^h`` tree.
    """
    if count <= 0:
        return []
    if degree < 2:
        raise ValueError("degree must be >= 2")
    layers: List[int] = []
    remaining = count
    size = min(degree, remaining)
    while remaining > 0:
        layers.append(size)
        remaining -= size
        if remaining <= 0:
            break
        attempts = size * (degree - 1)
        fresh = remaining * (1.0 - (1.0 - 1.0 / remaining) ** attempts)
        size = min(max(1, round(fresh)), remaining)
    return layers


def _retransmit_extra(
    rng: np.random.Generator,
    n: int,
    loss: float,
    base_delay_s: float = 0.5,
    multiplier: float = 2.0,
    max_delay_s: float = 30.0,
    max_attempts: int = 6,
) -> np.ndarray:
    """Vectorized extra delay from lost attempts + exponential backoff.

    Failures per hop are geometric in the link's loss probability; each
    failure adds one backoff step (deterministic schedule, one shared
    +/-25% jitter factor per hop — a cheap stand-in for the per-attempt
    jitter of :class:`~repro.net.network.RetransmitPolicy`).
    """
    if loss <= 0.0:
        return np.zeros(n)
    # rng.geometric counts trials to first success; failures = trials - 1,
    # clipped at the retry budget (beyond it the exact network parks the
    # transmission until a heal, which the aggregate tier does not model).
    failures = np.minimum(rng.geometric(1.0 - loss, size=n) - 1,
                          max_attempts - 1)
    steps = np.minimum(
        base_delay_s * multiplier ** np.arange(max_attempts - 1), max_delay_s
    )
    cumulative = np.concatenate(([0.0], np.cumsum(steps)))
    return cumulative[failures] * rng.uniform(0.75, 1.25, size=n)


def sample_flood_times(
    count: int,
    degree: int,
    link: LinkParams,
    wire_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` per-node infection delays relative to ingress.

    One numpy batch replaces ``count * degree`` simulator events.  The
    returned array is sorted ascending; entry ``i`` is the time after
    cluster ingress at which the ``i+1``-th interior node has the
    message.
    """
    if count <= 0:
        return np.zeros(0)
    transmission = (wire_size * 8.0) / link.bandwidth_bps
    times = np.zeros(0)
    parents = np.zeros(1)  # layer 0: the ingress, at t = 0
    for size in hop_layers(count, degree):
        hop = np.full(size, link.latency_s + transmission)
        if link.jitter_s:
            hop += rng.uniform(0.0, link.jitter_s, size=size)
        hop += _retransmit_extra(rng, size, link.loss_probability)
        # Each new node is claimed by its earliest-infected neighbor in
        # the previous layer.  While the flood still grows every edge
        # claims a distinct node (one candidate parent); once the front
        # saturates, several edges race for each node and the earliest
        # wins.
        fanout = max(1, (len(parents) * (degree - 1)) // size)
        picks = rng.integers(0, len(parents), size=(size, fanout))
        layer = parents[picks].min(axis=1) + hop
        times = np.concatenate([times, layer])
        parents = layer
    times.sort()
    return times


def sample_nested_flood_times(
    count: int,
    fanout: int,
    degree: int,
    link: LinkParams,
    wire_size: int,
    rng: np.random.Generator,
    boundary_link: Optional[LinkParams] = None,
    min_leaf: int = 1_000,
) -> np.ndarray:
    """Cluster-of-clusters infection timeline: gateways, then interiors.

    The nested tier models one huge cluster as ``fanout`` sub-clusters
    joined by a gateway overlay: the message first floods the ``fanout``
    gateways (a :func:`sample_flood_times` draw over ``boundary_link``),
    then each gateway seeds its own sub-cluster interior, offset by that
    gateway's arrival.  Sub-clusters larger than ``fanout * min_leaf``
    recurse, so depth composes as ``log(fanout) + log(count / fanout) =
    log(count)`` — the same effective hop depth as a flat flood of the
    whole population, which is why the nested law stays consistent with
    the exact-validated flat law (pinned by
    :func:`nested_consistency_at_scale`).
    """
    if count <= 0:
        return np.zeros(0)
    if fanout < 2 or count <= fanout:
        return sample_flood_times(count, degree, link, wire_size, rng)
    boundary = boundary_link if boundary_link is not None else link
    gateway_degree = max(2, min(degree, fanout))
    gateways = sample_flood_times(fanout, gateway_degree, boundary,
                                  wire_size, rng)
    interior = count - fanout
    base, remainder = divmod(interior, fanout)
    parts = [gateways]
    for index in range(fanout):
        size = base + (1 if index < remainder else 0)
        if size <= 0:
            continue
        if size > fanout * min_leaf:
            sub = sample_nested_flood_times(
                size, fanout, degree, link, wire_size, rng,
                boundary_link=boundary_link, min_leaf=min_leaf)
        else:
            sub = sample_flood_times(size, degree, link, wire_size, rng)
        # Sub-cluster assignment is exchangeable, so offsetting by the
        # sorted gateway times is a pure relabeling.
        parts.append(gateways[index] + sub)
    times = np.concatenate(parts)
    times.sort()
    return times


# --------------------------------------------------------------------------
# The aggregate cluster process
# --------------------------------------------------------------------------


class AggregateCluster(NetworkNode):
    """A dense cluster of ``size`` nodes modeled as one leaf process.

    Attach it to a fully-simulated boundary node: gossip flooding
    terminates at leaves, so the cluster receives each message exactly
    once, draws the interior infection timeline in one vectorized batch,
    and advances its infection counter per event-loop tick.  Sampling
    uses a numpy generator seeded from the simulator's forked stream
    (label ``aggregate:<node_id>``), so runs are seed-stable regardless
    of cluster count or attach order.
    """

    def __init__(
        self,
        node_id: str,
        size: int,
        *,
        degree: int = 8,
        link: LinkParams = WAN_LINK,
        tick_s: float = 0.25,
        seed: Optional[int] = None,
        fanout: int = 0,
        boundary_link: Optional[LinkParams] = None,
    ) -> None:
        super().__init__(node_id)
        if size <= 0:
            raise ValueError("cluster size must be positive")
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if fanout < 0:
            raise ValueError("fanout must be non-negative")
        self.size = size
        self.degree = degree
        self.link = link
        self.tick_s = tick_s
        #: >= 2 switches the interior to the nested cluster-of-clusters
        #: law (:func:`sample_nested_flood_times`); 0/1 keeps it flat.
        self.fanout = fanout
        self.boundary_link = boundary_link
        self._seed = seed
        self._rng: Optional[np.random.Generator] = None
        #: active timelines: key -> (arrival_s, sorted times, delivered idx)
        self._active: Dict[object, list] = {}
        self._tick_task = None
        self.messages_modeled = 0
        self.messages_completed = 0
        self.modeled_deliveries = 0
        self.ticks = 0
        self.propagation_times: List[float] = []

    # ------------------------------------------------------------- plumbing

    def _generator(self) -> np.random.Generator:
        if self._rng is None:
            seed = self._seed
            if seed is None:
                if self.network is None:
                    raise RuntimeError(
                        f"cluster {self.node_id} is not attached to a network")
                seed = self.network.simulator.fork_rng(
                    f"aggregate:{self.node_id}").getrandbits(64)
            self._rng = np.random.default_rng(seed)
        return self._rng

    # ------------------------------------------------------------- delivery

    def handle_message(self, sender_id: str, message: Message) -> None:
        key = message.gossip_key()
        if key in self._active:
            return
        simulator = self.network.simulator
        arrival = simulator.now
        if self.fanout >= 2:
            times = arrival + sample_nested_flood_times(
                self.size, self.fanout, self.degree, self.link,
                message.wire_size, self._generator(),
                boundary_link=self.boundary_link,
            )
        else:
            times = arrival + sample_flood_times(
                self.size, self.degree, self.link, message.wire_size,
                self._generator(),
            )
        self._active[key] = [arrival, times, 0]
        self.messages_modeled += 1
        if self._tick_task is None:
            self._tick_task = simulator.schedule_periodic(
                self.tick_s, self._tick)

    def _tick(self) -> None:
        now = self.network.simulator.now
        self.ticks += 1
        done = []
        for key, state in self._active.items():
            arrival, times, delivered = state
            reached = int(np.searchsorted(times, now, side="right"))
            if reached > delivered:
                self.modeled_deliveries += reached - delivered
                state[2] = reached
            if reached >= len(times):
                done.append(key)
                self.messages_completed += 1
                self.propagation_times.append(float(times[-1]) - arrival)
        for key in done:
            del self._active[key]
        if not self._active and self._tick_task is not None:
            # Detach until the next message arrives — a permanently
            # ticking cluster would keep sim.run() from ever draining.
            self._tick_task.cancel()
            self._tick_task = None

    # --------------------------------------------------------------- stats

    def infected(self, message: Message) -> int:
        """Interior nodes holding ``message`` as of the last tick."""
        state = self._active.get(message.gossip_key())
        if state is None:
            return 0
        return state[2]

    def stats(self) -> dict:
        propagation = self.propagation_times
        return {
            "size": self.size,
            "messages_modeled": self.messages_modeled,
            "messages_completed": self.messages_completed,
            "modeled_deliveries": self.modeled_deliveries,
            "ticks": self.ticks,
            "propagation_p50_s": (
                float(np.median(propagation)) if propagation else 0.0),
            "propagation_max_s": (
                float(np.max(propagation)) if propagation else 0.0),
        }


# --------------------------------------------------------------------------
# Deployment-scale wiring
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologyScale:
    """How far past the fully-simulated boundary a deployment scales.

    ``total_nodes`` counts boundary nodes *plus* the scaled population.
    ``plane`` picks the message-plane implementation that carries the
    surplus:

    ``"aggregate"``
        the surplus is distributed across one :class:`AggregateCluster`
        per boundary node (flat mean-field interiors; clusters at least
        ``NESTED_AUTO_THRESHOLD`` nodes auto-switch to the nested
        cluster-of-clusters law unless ``nested_fanout`` pins it).
        Serves 10^3-10^6 with modeled propagation only.

    ``"sharded"``
        the whole deployment runs on a
        :class:`repro.net.sharded_plane.ShardedMessagePlane` — every
        gossiped protocol message is timed by an epoch-barrier crowd
        propagation over all ``total_nodes``.  Serves 10^4-10^6 with
        *real* protocol traffic (``shards`` / ``chords`` / ``jobs``
        configure the crowd).
    """

    total_nodes: int
    cluster_degree: int = 8
    tick_s: float = 0.25
    cluster_link: LinkParams = field(default_factory=lambda: WAN_LINK)
    plane: str = "aggregate"
    #: None = auto (nest clusters >= NESTED_AUTO_THRESHOLD); 0/1 = flat;
    #: >= 2 = force that fanout.
    nested_fanout: Optional[int] = None
    #: gateway-overlay link of the nested law (defaults to cluster_link)
    boundary_link: Optional[LinkParams] = None
    shards: int = 4
    chords: int = 2
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.total_nodes < 1:
            raise ValueError("total_nodes must be positive")
        if self.cluster_degree < 2:
            raise ValueError("cluster_degree must be >= 2")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.plane not in ("aggregate", "sharded"):
            raise ValueError("plane must be 'aggregate' or 'sharded'")
        if self.nested_fanout is not None and self.nested_fanout < 0:
            raise ValueError("nested_fanout must be non-negative")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.chords < 0:
            raise ValueError("chords must be non-negative")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")

    def cluster_fanout(self, size: int) -> int:
        """Nested fanout an aggregate cluster of ``size`` should use."""
        if self.nested_fanout is not None:
            return self.nested_fanout if self.nested_fanout >= 2 else 0
        if size < NESTED_AUTO_THRESHOLD:
            return 0
        return max(2, min(size // NESTED_AUTO_LEAF, 64))


def attach_clusters(network, scale: TopologyScale,
                    boundary_ids: Optional[Sequence[str]] = None,
                    ) -> List[AggregateCluster]:
    """Bridge aggregate clusters onto a network's boundary nodes.

    The surplus of ``scale.total_nodes`` over the boundary ring is split
    as evenly as possible; each cluster hangs off one boundary node over
    ``scale.cluster_link``.  Returns the clusters (possibly empty when
    the boundary alone already covers ``total_nodes``).
    """
    boundary = list(boundary_ids) if boundary_ids is not None \
        else network.node_ids()
    if not boundary:
        raise ValueError("network has no boundary nodes to bridge")
    surplus = scale.total_nodes - len(boundary)
    if surplus <= 0:
        return []
    base, remainder = divmod(surplus, len(boundary))
    clusters: List[AggregateCluster] = []
    for index, boundary_id in enumerate(boundary):
        size = base + (1 if index < remainder else 0)
        if size <= 0:
            continue
        cluster = AggregateCluster(
            f"agg:{boundary_id}", size,
            degree=scale.cluster_degree,
            link=scale.cluster_link,
            tick_s=scale.tick_s,
            fanout=scale.cluster_fanout(size),
            boundary_link=scale.boundary_link,
        )
        network.add_node(cluster)
        network.connect(boundary_id, cluster.node_id, scale.cluster_link)
        clusters.append(cluster)
    return clusters


# --------------------------------------------------------------------------
# Aggregate-vs-exact validation harness
# --------------------------------------------------------------------------


class _TimeRecorder(NetworkNode):
    """Validation node: records its own delivery time."""

    def __init__(self, node_id: str) -> None:
        super().__init__(node_id)
        self.delivery_time: Optional[float] = None

    def handle_message(self, sender_id: str, message: Message) -> None:
        if self.delivery_time is None:
            self.delivery_time = self.network.simulator.now


def exact_flood_times(
    count: int,
    degree: int,
    link: LinkParams,
    seed: int,
    payload_bytes: int = 256,
) -> np.ndarray:
    """Per-node delivery times of one exact flood over ``count`` nodes.

    Builds a real random-regular network, gossips one message from node
    0 at t=0 and returns the sorted arrival times of the other
    ``count - 1`` nodes — the ground truth the aggregate model is held
    to.
    """
    from repro.net.network import Network
    from repro.net.topology import random_regular_topology
    from repro.sim.simulator import Simulator

    simulator = Simulator(seed=seed)
    network = Network(simulator, coalesce=False)
    nodes = random_regular_topology(
        network, count, degree, _TimeRecorder, link, seed=seed)
    message = Message(kind="flood", payload="x" * payload_bytes,
                      size_bytes=payload_bytes)
    nodes[0].broadcast(message)
    simulator.run()
    times = [node.delivery_time for node in nodes[1:]
             if node.delivery_time is not None]
    return np.sort(np.asarray(times, dtype=float))


def aggregate_flood_times(
    count: int,
    degree: int,
    link: LinkParams,
    seed: int,
    payload_bytes: int = 256,
) -> np.ndarray:
    """The aggregate model's answer to :func:`exact_flood_times`."""
    wire_size = payload_bytes + MESSAGE_OVERHEAD_BYTES
    rng = np.random.default_rng(seed)
    return sample_flood_times(count - 1, degree, link, wire_size, rng)


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max ECDF distance)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if len(a) == 0 or len(b) == 0:
        raise ValueError("need non-empty samples")
    grid = np.concatenate([a, b])
    grid.sort()
    cdf_a = np.searchsorted(a, grid, side="right") / len(a)
    cdf_b = np.searchsorted(b, grid, side="right") / len(b)
    return float(np.abs(cdf_a - cdf_b).max())


def exact_clustered_flood_times(
    group_count: int,
    group_size: int,
    degree: int,
    link: LinkParams,
    seed: int,
    payload_bytes: int = 256,
    boundary_link: Optional[LinkParams] = None,
) -> np.ndarray:
    """One exact flood over a real cluster-of-clusters graph.

    The ground truth of the nested law: an ingress node feeds a
    random-regular *gateway overlay* (one gateway per group, linked over
    ``boundary_link``); each gateway is a member of its own
    random-regular group interior over ``link``.  Returns the sorted
    arrival times of all ``group_count * group_size`` non-ingress nodes.
    """
    import networkx as nx

    from repro.net.network import Network
    from repro.sim.simulator import Simulator

    boundary = boundary_link if boundary_link is not None else link
    simulator = Simulator(seed=seed)
    network = Network(simulator, coalesce=False)
    ingress = _TimeRecorder("ingress")
    network.add_node(ingress)
    gateways: List[str] = []
    recorders: List[_TimeRecorder] = []
    for g in range(group_count):
        ids = [f"g{g}:n{i}" for i in range(group_size)]
        for node_id in ids:
            node = _TimeRecorder(node_id)
            network.add_node(node)
            recorders.append(node)
        interior_degree = min(degree, group_size - 1)
        if interior_degree >= 2 and group_size > interior_degree:
            graph = nx.random_regular_graph(
                interior_degree, group_size, seed=seed * 1009 + g)
        else:
            graph = nx.complete_graph(group_size)
        for a, b in graph.edges():
            network.connect(ids[a], ids[b], link)
        gateways.append(ids[0])
    gateway_degree = min(max(2, min(degree, group_count)), group_count - 1)
    if gateway_degree >= 2 and group_count > gateway_degree:
        overlay = nx.random_regular_graph(
            gateway_degree, group_count, seed=seed * 2003)
    else:
        overlay = nx.complete_graph(group_count)
    for a, b in overlay.edges():
        network.connect(gateways[a], gateways[b], boundary)
    for gateway in gateways[:max(2, min(degree, group_count))]:
        network.connect("ingress", gateway, boundary)
    message = Message(kind="flood", payload="x" * payload_bytes,
                      size_bytes=payload_bytes)
    ingress.broadcast(message)
    simulator.run()
    times = [node.delivery_time for node in recorders
             if node.delivery_time is not None]
    return np.sort(np.asarray(times, dtype=float))


def validate_aggregate_model(
    count: int = 24,
    degree: int = 4,
    link: LinkParams = LinkParams(latency_s=0.05, jitter_s=0.04,
                                  bandwidth_bps=50_000_000.0),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    payload_bytes: int = 256,
) -> dict:
    """Pool exact and aggregate propagation samples over ``seeds``.

    Returns the KS statistic plus both samples' summary moments; the
    acceptance tolerance is pinned by the test suite so model drift
    fails loudly rather than silently skewing the scale benches.
    """
    exact = np.concatenate([
        exact_flood_times(count, degree, link, seed, payload_bytes)
        for seed in seeds
    ])
    aggregate = np.concatenate([
        aggregate_flood_times(count, degree, link, seed, payload_bytes)
        for seed in seeds
    ])
    return {
        "ks": ks_statistic(exact, aggregate),
        "exact_mean": float(exact.mean()),
        "aggregate_mean": float(aggregate.mean()),
        "exact_p95": float(np.percentile(exact, 95)),
        "aggregate_p95": float(np.percentile(aggregate, 95)),
        "samples_per_side": int(len(exact)),
    }


def validate_nested_aggregate_model(
    group_count: int = 4,
    group_size: int = 24,
    degree: int = 4,
    link: LinkParams = LinkParams(latency_s=0.05, jitter_s=0.04,
                                  bandwidth_bps=50_000_000.0),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    payload_bytes: int = 256,
    boundary_link: Optional[LinkParams] = None,
) -> dict:
    """Nested law vs exact cluster-of-clusters floods at small N.

    The nested analogue of :func:`validate_aggregate_model`: pools exact
    clustered floods (:func:`exact_clustered_flood_times`) against the
    nested sampler with ``fanout = group_count``, same KS + moments
    report, tolerance pinned by the test suite.
    """
    wire_size = payload_bytes + MESSAGE_OVERHEAD_BYTES
    exact = np.concatenate([
        exact_clustered_flood_times(group_count, group_size, degree, link,
                                    seed, payload_bytes, boundary_link)
        for seed in seeds
    ])
    # min_leaf = group_size keeps the sampler at exactly two levels,
    # matching the two-level ground-truth graph.
    nested = np.concatenate([
        sample_nested_flood_times(
            group_count * group_size, group_count, degree, link, wire_size,
            np.random.default_rng(seed), boundary_link=boundary_link,
            min_leaf=group_size)
        for seed in seeds
    ])
    return {
        "ks": ks_statistic(exact, nested),
        "exact_mean": float(exact.mean()),
        "nested_mean": float(nested.mean()),
        "exact_p95": float(np.percentile(exact, 95)),
        "nested_p95": float(np.percentile(nested, 95)),
        "samples_per_side": int(len(exact)),
    }


def nested_consistency_at_scale(
    total: int = 100_000,
    fanout: Optional[int] = None,
    degree: int = 8,
    link: LinkParams = WAN_LINK,
    seeds: Sequence[int] = (0, 1, 2),
    payload_bytes: int = 256,
) -> dict:
    """Nested vs flat law at a scale the exact simulator cannot reach.

    The flat :func:`sample_flood_times` law is exact-validated at small
    N (:func:`validate_aggregate_model`) and scale-free in form, so at
    10^5-10^6 it serves as the reference the nested decomposition must
    reproduce — gateway depth plus sub-cluster depth must compose to the
    same timeline as one flat flood.  ``fanout=None`` uses the same
    auto rule as :meth:`TopologyScale.cluster_fanout`.
    """
    if fanout is None:
        fanout = max(2, min(total // NESTED_AUTO_LEAF, 64))
    wire_size = payload_bytes + MESSAGE_OVERHEAD_BYTES
    flat = np.concatenate([
        sample_flood_times(total, degree, link, wire_size,
                           np.random.default_rng(seed))
        for seed in seeds
    ])
    nested = np.concatenate([
        sample_nested_flood_times(total, fanout, degree, link, wire_size,
                                  np.random.default_rng(seed))
        for seed in seeds
    ])
    mean_err = abs(float(nested.mean()) - float(flat.mean())) \
        / float(flat.mean())
    return {
        "ks": ks_statistic(flat, nested),
        "flat_mean": float(flat.mean()),
        "nested_mean": float(nested.mean()),
        "mean_err": mean_err,
        "flat_p95": float(np.percentile(flat, 95)),
        "nested_p95": float(np.percentile(nested, 95)),
        "fanout": int(fanout),
        "samples_per_side": int(len(flat)),
    }
