"""Topology builders.

Public DLT networks are unstructured peer-to-peer graphs; we provide the
three standard shapes used in protocol studies: complete (tiny control
experiments), random regular (uniform degree, the usual gossip model) and
Watts-Strogatz small world (clustering + shortcuts, closest to measured
overlay topologies).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

import networkx as nx

from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.node import NetworkNode

NodeFactory = Callable[[str], NetworkNode]


def _build(
    network: Network,
    graph: nx.Graph,
    factory: NodeFactory,
    link_params: Optional[LinkParams],
) -> List[NetworkNode]:
    nodes: List[NetworkNode] = []
    for index in sorted(graph.nodes()):
        node = factory(f"n{index}")
        network.add_node(node)
        nodes.append(node)
    for a, b in graph.edges():
        network.connect(f"n{a}", f"n{b}", link_params)
    return nodes


def complete_topology(
    network: Network,
    count: int,
    factory: NodeFactory,
    link_params: Optional[LinkParams] = None,
) -> List[NetworkNode]:
    """Every node linked to every other — one-hop propagation."""
    if count < 1:
        raise ValueError("need at least one node")
    return _build(network, nx.complete_graph(count), factory, link_params)


def random_regular_topology(
    network: Network,
    count: int,
    degree: int,
    factory: NodeFactory,
    link_params: Optional[LinkParams] = None,
    seed: int = 0,
) -> List[NetworkNode]:
    """Random graph where every node has exactly ``degree`` peers."""
    if count <= degree:
        raise ValueError("count must exceed degree")
    graph = nx.random_regular_graph(degree, count, seed=seed)
    return _build(network, graph, factory, link_params)


def small_world_topology(
    network: Network,
    count: int,
    factory: NodeFactory,
    k: int = 4,
    rewire_p: float = 0.3,
    link_params: Optional[LinkParams] = None,
    seed: int = 0,
) -> List[NetworkNode]:
    """Watts-Strogatz small-world graph (connected variant)."""
    graph = nx.connected_watts_strogatz_graph(count, k, rewire_p, seed=seed)
    return _build(network, graph, factory, link_params)


def line_topology(
    network: Network,
    count: int,
    factory: NodeFactory,
    link_params: Optional[LinkParams] = None,
) -> List[NetworkNode]:
    """A path graph — worst-case propagation diameter, useful in tests."""
    return _build(network, nx.path_graph(count), factory, link_params)
