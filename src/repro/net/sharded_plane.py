"""The sharded message plane: full protocol traffic at 10^4-10^6 nodes.

PR 9's sharded tier (:mod:`repro.sim.sharded`) could only time pure
floods — one origin, one message, no protocol on top.  This module
closes the gap named by the ROADMAP's scale item: it implements the
:class:`repro.protocol.interfaces.MessagePlane` contract on top of the
epoch-barrier shard workers, so PoW/PoS and Nano deployments run *real*
tx/block gossip while the propagation fabric is a 10^4-10^6-node crowd.

The model is a hybrid:

* A handful of **boundary replicas** — the actual
  :class:`~repro.protocol.node.ProtocolNode` instances the deployment
  builds — live on an exact :class:`~repro.net.network.Network` core
  (this class subclasses it), so point-to-point sends, link faults,
  partitions and the retransmit/park/kick recovery machinery keep their
  reference semantics over the replicas' direct links.
* Every :meth:`gossip` call runs one **crowd propagation**: the message
  re-draws per-edge delays from a stream derived only from
  ``(seed, message sequence)`` (see :meth:`ShardState.reset`), relaxes
  first-arrival times across all shards, and the other replicas'
  arrival times become scheduled deliveries on the simulator.  The
  10^N - k crowd nodes are accounted as modeled deliveries, exactly
  like the aggregate tier's clusters.

Determinism: the per-message label sequence is a plain counter, the
shard machinery is pinned byte-identical between ``jobs=1`` and
``jobs=N``, and no crowd computation touches the simulator's RNG
streams — so a deployment's state digest and the plane's own
:meth:`plane_fingerprint` are byte-identical for any ``jobs``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

import numpy as np

from repro.net.link import LinkParams, WAN_LINK
from repro.net.message import Message
from repro.net.network import Network, RetransmitPolicy
from repro.net.node import NetworkNode
from repro.sim.sharded import ShardedConfig, ShardedPropagation
from repro.sim.simulator import Simulator
from repro.trace import REASON_OFFLINE, REASON_PARTITION, Tracer

__all__ = ["ShardedMessagePlane"]


class ShardedMessagePlane(Network):
    """A :class:`Network` whose gossip fan-out is a sharded crowd.

    ``total_nodes`` is the full population; the replicas attached via
    :meth:`add_node` are embedded at evenly spaced crowd positions and
    every flood between them is timed by the crowd graph (ring +
    ``chords`` random matchings, per-edge delays following ``link``).
    Direct sends (:meth:`transmit` / :meth:`transmit_reliable`) and all
    fault machinery stay exact over the replica links.

    Call :meth:`close` when done if ``jobs > 1`` — it tears down the
    persistent shard worker processes (idempotent; ``jobs = 1`` is a
    no-op).
    """

    def __init__(
        self,
        simulator: Simulator,
        *,
        total_nodes: int,
        shards: int = 4,
        chords: int = 2,
        link: Optional[LinkParams] = None,
        jobs: int = 1,
        seed: Optional[int] = None,
        epoch_s: float = 0.5,
        tracer: Optional[Tracer] = None,
        retransmit: Optional[RetransmitPolicy] = None,
        seen_cache_size: Optional[int] = 65536,
        coalesce: Optional[bool] = None,
    ) -> None:
        super().__init__(simulator, tracer=tracer, retransmit=retransmit,
                         seen_cache_size=seen_cache_size, coalesce=coalesce)
        if total_nodes < 2:
            raise ValueError("total_nodes must be >= 2")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.total_nodes = total_nodes
        self.shards = shards
        self.chords = chords
        self.jobs = jobs
        self.crowd_link = link if link is not None else WAN_LINK
        self.epoch_s = epoch_s
        # Derived through the simulator's fork discipline so two planes
        # in one experiment (control vs treatment) decorrelate, yet the
        # crowd stays a pure function of (simulator seed, construction
        # order) — never of wall clock or worker scheduling.
        self.seed = (seed if seed is not None
                     else simulator.fork_rng("sharded-plane").getrandbits(48))
        self._replica_order: List[str] = []
        self._crowd_index: Dict[str, int] = {}
        self._prop: Optional[ShardedPropagation] = None
        self._workers = None
        self._msg_seq = 0
        self._crowd_fp = hashlib.sha256()
        self._closed = False
        # Crowd-side accounting (the modeled complement of traffic_stats).
        self.messages_modeled = 0
        self.modeled_deliveries = 0
        self.cross_shard_messages = 0
        self.crowd_epochs = 0
        self.propagation_max_s = 0.0

    # ---------------------------------------------------------------- wiring

    def add_node(self, node: NetworkNode) -> None:
        if self._prop is not None:
            raise RuntimeError(
                "cannot attach replicas after the crowd is built "
                "(first gossip freezes the embedding)")
        super().add_node(node)
        self._replica_order.append(node.node_id)

    def _ensure_crowd(self) -> None:
        """Freeze the replica embedding and open the shard backend."""
        if self._prop is not None:
            return
        replicas = len(self._replica_order)
        if replicas == 0:
            raise RuntimeError("no replicas attached")
        if self.total_nodes < replicas:
            raise ValueError(
                f"total_nodes={self.total_nodes} < {replicas} replicas")
        # Evenly spaced crowd positions; strictly increasing because
        # total_nodes >= replicas, so the embedding is injective.
        for k, node_id in enumerate(self._replica_order):
            self._crowd_index[node_id] = k * self.total_nodes // replicas
        # The retransmit fallback recovers a crowd delivery lost to a
        # partition/offline window over the *direct* replica link, so
        # every replica pair needs one — top up whatever topology the
        # adapter built (connect() is additive and keeps existing links).
        ids = self._replica_order
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                if (a, b) not in self._links:
                    self.connect(a, b, self.crowd_link)
        config = ShardedConfig.with_link(
            self.crowd_link,
            total_nodes=self.total_nodes,
            shards=self.shards,
            chords=self.chords,
            epoch_s=self.epoch_s,
            seed=self.seed,
        )
        self._prop = ShardedPropagation(config)
        self._workers = self._prop.open(self.jobs).__enter__()

    def close(self) -> None:
        """Tear down the shard worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._workers is not None:
            self._workers.__exit__(None, None, None)
            self._workers = None

    def __del__(self) -> None:  # pragma: no cover - defensive cleanup
        try:
            self.close()
        except Exception:
            pass

    # --------------------------------------------------------------- gossip

    def gossip(self, origin: str, message: Message) -> None:
        """Flood ``message`` through the crowd from ``origin``.

        The crowd propagation yields every replica's first-arrival time;
        each becomes one scheduled delivery that resolves under the
        reference semantics (offline/partition at arrival drops and
        enters the retransmit/park chain over the direct replica link).
        """
        key = message.gossip_key()
        self._seen[origin].add(key)
        self._ensure_crowd()
        label = f"msg:{self._msg_seq}"
        self._msg_seq += 1
        result = self._prop.run_with(
            self._workers,
            origin=self._crowd_index[origin],
            label=label,
            payload_bytes=message.size_bytes,
            jobs=self.jobs,
        )
        self._crowd_fp.update(result.fingerprint().encode())
        arrivals = result.arrivals
        replica_rows = np.asarray(
            [self._crowd_index[n] for n in self._replica_order])
        replica_reached = int(np.count_nonzero(
            np.isfinite(arrivals[replica_rows])))
        self.messages_modeled += 1
        self.modeled_deliveries += result.reached - replica_reached
        self.cross_shard_messages += result.cross_shard_messages
        self.crowd_epochs += result.epochs
        finite = arrivals[np.isfinite(arrivals)]
        if len(finite):
            self.propagation_max_s = max(self.propagation_max_s,
                                         float(finite.max()))
        for dst in self._replica_order:
            if dst == origin:
                continue
            dt = float(arrivals[self._crowd_index[dst]])
            if not np.isfinite(dt):
                continue
            if key in self._seen[dst] or key in self._inflight[dst]:
                continue
            self._inflight[dst].add(key)
            self._schedule_crowd_delivery(origin, dst, message, dt)

    def _schedule_crowd_delivery(self, src: str, dst: str, message: Message,
                                 delay: float) -> None:
        """One replica delivery timed by the crowd, resolved exactly.

        Mirrors the scalar ``deliver`` closure of
        :meth:`Network._attempt_gossip` — same tracer accounting (one
        ``schedule`` resolving as ``deliver`` or ``drop``), same
        offline/partition handling (drop + retransmit chain) — except
        there is no re-forward: the crowd already did the fan-out.
        """
        key = message.gossip_key()
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.record_schedule(self.simulator.now, src, dst,
                                   message.kind, 1)

        def deliver() -> None:
            arrival = self.simulator.now
            if key in self._seen[dst]:
                self._inflight[dst].discard(key)
                return
            node = self._nodes[dst]
            if self._crosses_partition(src, dst):
                self.messages_lost += 1
                if traced:
                    tracer.record_drop(arrival, src, dst, message.kind,
                                       REASON_PARTITION)
                self._schedule_retry(src, dst, message, attempt=1)
                return
            if not node.online:
                self.messages_lost += 1
                if traced:
                    tracer.record_drop(arrival, src, dst, message.kind,
                                       REASON_OFFLINE)
                self._schedule_retry(src, dst, message, attempt=1)
                return
            self.messages_delivered += 1
            self.bytes_transferred += message.wire_size
            if traced:
                tracer.record_deliver(arrival, src, dst, message.kind)
            self._seen[dst].add(key)
            self._inflight[dst].discard(key)
            node.deliver(src, message)

        self.simulator.schedule(delay, deliver,
                                label=f"gossip:{message.kind}")

    # --------------------------------------------------------------- metrics

    def plane_fingerprint(self) -> str:
        """Digest over every crowd propagation so far.

        A pure function of (seed, replica attach order, gossip sequence,
        message sizes) — byte-identical for ``jobs=1`` vs ``jobs=N``,
        which the test suite and the CI smoke pin.
        """
        return self._crowd_fp.hexdigest()[:16]

    def plane_stats(self) -> Dict[str, float]:
        """Crowd accounting in the shape of ``Deployment.scale_stats``."""
        replicas = len(self._replica_order)
        return {
            "boundary_nodes": float(replicas),
            "modeled_nodes": float(self.total_nodes - replicas),
            "modeled_deliveries": float(self.modeled_deliveries),
            "messages_modeled": float(self.messages_modeled),
            "propagation_max_s": self.propagation_max_s,
        }

    def plane_counters(self) -> Dict[str, float]:
        counters = super().plane_counters()
        counters.update({
            "plane.messages_modeled": float(self.messages_modeled),
            "plane.modeled_deliveries": float(self.modeled_deliveries),
            "plane.cross_shard_messages": float(self.cross_shard_messages),
            "plane.crowd_epochs": float(self.crowd_epochs),
        })
        return counters
