"""Base network node."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocol.interfaces import MessagePlane


class NetworkNode:
    """A participant attached to a message plane.

    The plane is usually the exact :class:`~repro.net.network.Network`,
    but nodes only rely on the
    :class:`~repro.protocol.interfaces.MessagePlane` contract, so the
    same node runs unchanged on the sharded or nested-aggregate tiers.
    Subclasses (blockchain nodes, DAG nodes, channel parties...) override
    :meth:`handle_message`.  Traffic counters feed the per-node load
    analysis of Section VI (the "consumer hardware" centralization
    argument).
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.network: Optional["MessagePlane"] = None
        self.online = True
        self.bytes_received = 0
        self.bytes_sent = 0
        self.messages_received = 0
        self.messages_sent = 0

    # ------------------------------------------------------------- lifecycle

    def attached(self, network: "MessagePlane") -> None:
        """Called by the network when the node joins."""
        self.network = network

    def set_online(self, online: bool) -> None:
        """Offline nodes silently drop traffic (Section II-B: a Nano node
        must be online to receive).  Coming back online nudges the
        network to retry gossip that was parked while we were away."""
        was_online = self.online
        self.online = online
        if online and not was_online and self.network is not None:
            self.network.kick_retries(dst=self.node_id)

    def on_partition_heal(self) -> None:
        """Called by the network after a partition heals.  Base nodes do
        nothing; stack nodes (``repro.protocol``) revive parked intake
        artifacts whose dependency may now be reachable."""

    # ----------------------------------------------------------------- sends

    def send(self, peer_id: str, message: Message) -> None:
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        if not self.online:
            return  # an offline node neither receives nor transmits
        self.bytes_sent += message.wire_size
        self.messages_sent += 1
        self.network.transmit(self.node_id, peer_id, message)

    def send_reliable(self, peer_id: str, message: Message) -> None:
        """Like :meth:`send`, but lost transmissions are retried with the
        network's backoff policy until delivered or the attempt budget is
        exhausted — the retransmit primitive fault-tolerant protocols
        build on."""
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        if not self.online:
            return
        self.bytes_sent += message.wire_size
        self.messages_sent += 1
        self.network.transmit_reliable(self.node_id, peer_id, message)

    def broadcast(self, message: Message) -> None:
        """Gossip ``message`` to the whole network via flooding."""
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        if not self.online:
            return
        self.network.gossip(self.node_id, message)

    # --------------------------------------------------------------- receive

    def deliver(self, sender_id: str, message: Message) -> None:
        """Entry point invoked by the network; applies online gating."""
        if not self.online:
            return
        self.bytes_received += message.wire_size
        self.messages_received += 1
        self.handle_message(sender_id, message)

    def deliver_batch(self, items) -> None:
        """Deliver a coalesced same-instant burst of ``(sender, message)``.

        Semantically identical to calling :meth:`deliver` per item in
        order; the default does exactly that after a behavior-neutral
        :meth:`prewarm_messages` pass that lets stack nodes amortize
        signature verification over the burst.
        """
        if len(items) > 1 and self.online:
            self.prewarm_messages([message for _, message in items])
        for sender_id, message in items:
            self.deliver(sender_id, message)

    def prewarm_messages(self, messages) -> None:
        """Batch pre-verification hook for a coalesced delivery burst.

        Must be behavior-neutral (cache warming only).  Base nodes do
        nothing; protocol-stack nodes batch-verify the burst's signatures
        so the scalar checks downstream all hit the sigcache.
        """

    def handle_message(self, sender_id: str, message: Message) -> None:
        """Application hook — override in subclasses."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.node_id})"
