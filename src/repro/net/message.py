"""Network messages.

A message wraps an application payload with a kind tag, a stable id used
for gossip duplicate suppression, and a byte size used for bandwidth
modelling and traffic accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.types import Hash

_MESSAGE_COUNTER = itertools.count()

#: Fixed protocol overhead per message (framing, headers), in bytes.
MESSAGE_OVERHEAD_BYTES = 24


@dataclass(frozen=True, slots=True)
class Message:
    """An application payload in flight.

    Slotted: gossip floods create one Message and many per-hop closures
    over it, so the per-instance dict is pure overhead.
    """

    kind: str
    payload: Any
    size_bytes: int
    dedup_key: Optional[Hash] = None
    msg_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including protocol overhead."""
        return self.size_bytes + MESSAGE_OVERHEAD_BYTES

    def gossip_key(self) -> object:
        """Identity used for duplicate suppression while flooding."""
        if self.dedup_key is not None:
            return (self.kind, self.dedup_key)
        return (self.kind, self.msg_id)
