"""Point-to-point link model.

Delivery time = propagation latency (base + jitter) + transmission time
(message size / bandwidth).  Loss drops a message with fixed probability.
These three knobs are what turn protocol parameters into the fork rates
and throughput ceilings the paper discusses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.net.message import Message


@dataclass(frozen=True)
class LinkParams:
    """Transmission characteristics of one directed link."""

    latency_s: float = 0.1
    jitter_s: float = 0.02
    bandwidth_bps: float = 10_000_000.0  # 10 Mbit/s consumer-grade default
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latency and jitter must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")

    def delivery_delay(self, message: Message, rng: random.Random) -> Optional[float]:
        """Seconds until delivery, or ``None`` if the message is lost."""
        if self.loss_probability and rng.random() < self.loss_probability:
            return None
        jitter = rng.uniform(0.0, self.jitter_s) if self.jitter_s else 0.0
        transmission = (message.wire_size * 8) / self.bandwidth_bps
        return self.latency_s + jitter + transmission


#: A fast LAN-like link — used to isolate protocol effects from the network.
FAST_LINK = LinkParams(latency_s=0.005, jitter_s=0.001, bandwidth_bps=1_000_000_000.0)

#: Wide-area internet link, roughly what public DLT nodes see.
WAN_LINK = LinkParams(latency_s=0.1, jitter_s=0.05, bandwidth_bps=50_000_000.0)

#: Poor consumer link — the "real world limitations" of Section VI-B.
SLOW_LINK = LinkParams(latency_s=0.3, jitter_s=0.1, bandwidth_bps=5_000_000.0)

#: A link that drops everything — fault injection's blackhole schedule.
BLACKHOLE_LINK = LinkParams(loss_probability=1.0)
