"""Fault injection for simulated networks.

A :class:`FaultInjector` layers scheduled failures over a
``Simulator``/``Network`` pair: node crashes and restarts (including
random churn), link degradation and blackhole windows, and timed
partitions with automatic heal.  Every injected fault is recorded in the
network's :class:`~repro.trace.Tracer`, so a run's divergence can be
read straight out of the JSONL trace.

These are the degraded regimes under which the paper's consistency
claims actually bite (Section IV's disagreement windows, Section VI-B's
real-world limitations) and the evaluation axes of the DAG SoKs (node
churn, adversarial delay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.rng import exponential
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.protocol import aggregate_layer_counters
from repro.trace import (
    BYZANTINE,
    CRASH,
    DEGRADE,
    HEAL,
    PARTITION,
    RESTART,
    RESTORE,
)

#: Byzantine behaviour families the adapters know how to wire.  Each
#: family draws from its own ``fork_rng`` stream (``byz:<family>:<node>``)
#: so enabling one adversary never perturbs another's decisions.
BYZANTINE_FAMILIES = (
    "equivocate",   # conflicting proposals + double votes (BFT)
    "withhold",     # silent leader / withheld votes (BFT)
    "selfish",      # selfish mining: private chain, timed release (PoW)
    "tip-spam",     # conflicting-tip spam from marked replicas (DAG)
)


@dataclass(frozen=True)
class ByzantineSpec:
    """An adversary mix for :func:`repro.core.deploy.build_deployment`.

    ``count`` replicas (the roster's first indices) run ``behavior``;
    ``f_override`` adjusts the BFT quorum threshold ``n - f`` (set it to
    ``>= n/3`` to reproduce the classical safety violation the
    seeded-violation fuzz profile demonstrates).
    """

    count: int = 1
    behavior: str = "equivocate"
    f_override: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.behavior not in BYZANTINE_FAMILIES:
            raise ValueError(
                f"unknown Byzantine behavior {self.behavior!r} "
                f"(choose from {', '.join(BYZANTINE_FAMILIES)})")


@dataclass(frozen=True)
class ChurnParams:
    """Random crash/restart cycling for a pool of nodes.

    Each node independently crashes as a Poisson process with mean time
    between failures ``mtbf_s`` and stays down ``downtime_s`` seconds.
    """

    mtbf_s: float
    downtime_s: float
    start_s: float = 0.0
    until_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if self.downtime_s <= 0:
            raise ValueError("downtime_s must be positive")


def sample_churn_times(
    rng: random.Random,
    mtbf_s: float,
    downtime_s: float,
    start_s: float = 0.0,
    until_s: float = 0.0,
) -> List[Tuple[float, float]]:
    """Sample one node's ``(crash_time, restart_time)`` cycles.

    The Poisson crash/fixed-downtime process behind both
    :meth:`FaultInjector.churn` and the fuzzer's churn schedules — a
    pure function of the supplied RNG, so seeded callers get
    reproducible fault timelines.
    """
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    if downtime_s <= 0:
        raise ValueError("downtime_s must be positive")
    cycles: List[Tuple[float, float]] = []
    t = start_s + exponential(rng, 1.0 / mtbf_s)
    while t < until_s:
        cycles.append((t, t + downtime_s))
        t += downtime_s + exponential(rng, 1.0 / mtbf_s)
    return cycles


class FaultInjector:
    """Schedules faults against a network and records them in its trace."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.simulator = network.simulator
        self.tracer = network.tracer
        self.crashes_injected = 0
        self.restarts_injected = 0
        self.byzantine_marked = 0
        #: links currently under degradation: (true original params,
        #: number of still-active degradation windows).  The depth count
        #: makes overlapping degrade/restore windows compose — only the
        #: last window's restore swaps the original back in.
        self._degraded: Dict[Tuple[str, str], Tuple[LinkParams, int]] = {}

    # ------------------------------------------------------------- crashes

    def crash(self, node_id: str) -> None:
        """Take ``node_id`` offline immediately."""
        node = self.network.node(node_id)
        if node.online:
            node.set_online(False)
            self.crashes_injected += 1
            self.tracer.emit(self.simulator.now, CRASH, src=node_id)

    def restart(self, node_id: str) -> None:
        """Bring ``node_id`` back online; parked gossip destined for it
        is retried immediately (see ``NetworkNode.set_online``)."""
        node = self.network.node(node_id)
        if not node.online:
            node.set_online(True)
            self.restarts_injected += 1
            self.tracer.emit(self.simulator.now, RESTART, src=node_id)

    def crash_at(self, time_s: float, node_id: str,
                 duration_s: Optional[float] = None) -> None:
        """Crash ``node_id`` at ``time_s``; restart after ``duration_s``
        when given (otherwise the node stays down)."""
        self.simulator.schedule_at(time_s, lambda: self.crash(node_id),
                                   label=f"fault:crash:{node_id}")
        if duration_s is not None:
            if duration_s <= 0:
                raise ValueError("duration_s must be positive")
            self.restart_at(time_s + duration_s, node_id)

    def restart_at(self, time_s: float, node_id: str) -> None:
        self.simulator.schedule_at(time_s, lambda: self.restart(node_id),
                                   label=f"fault:restart:{node_id}")

    def churn(self, node_ids: Sequence[str], params: ChurnParams) -> int:
        """Pre-schedule random crash/restart cycles for ``node_ids``.

        Returns the number of crash/restart pairs scheduled.  Draws come
        from per-node forked RNG streams, so adding churn to one node
        does not perturb another's schedule.
        """
        until = params.until_s
        if until is None:
            raise ValueError("ChurnParams.until_s is required for churn()")
        cycles = 0
        for node_id in node_ids:
            rng = self.simulator.fork_rng(f"churn:{node_id}")
            for crash_time, _restart_time in sample_churn_times(
                rng, params.mtbf_s, params.downtime_s,
                start_s=params.start_s, until_s=until,
            ):
                self.crash_at(crash_time, node_id,
                              duration_s=params.downtime_s)
                cycles += 1
        return cycles

    # --------------------------------------------------------------- links

    def degrade_link(self, a: str, b: str, params: LinkParams,
                     bidirectional: bool = True) -> None:
        """Swap in degraded link parameters, remembering the originals."""
        pairs = ((a, b), (b, a)) if bidirectional else ((a, b),)
        for src, dst in pairs:
            original, depth = self._degraded.get(
                (src, dst), (self.network.link_params(src, dst), 0))
            self._degraded[(src, dst)] = (original, depth + 1)
            self.network.set_link(src, dst, params, bidirectional=False)
        self.tracer.emit(self.simulator.now, DEGRADE, src=a, dst=b,
                         loss=params.loss_probability,
                         latency_s=params.latency_s)

    def restore_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Undo one :meth:`degrade_link`; stalled gossip is retried.

        Degradations nest: with two overlapping windows on the same
        pair, the first restore only decrements the window depth and the
        link stays degraded until the second restore swaps the true
        original parameters back in.
        """
        pairs = ((a, b), (b, a)) if bidirectional else ((a, b),)
        restored = False
        for src, dst in pairs:
            entry = self._degraded.get((src, dst))
            if entry is None:
                continue
            original, depth = entry
            if depth > 1:
                self._degraded[(src, dst)] = (original, depth - 1)
                continue
            del self._degraded[(src, dst)]
            self.network.set_link(src, dst, original, bidirectional=False)
            restored = True
        if restored:
            self.tracer.emit(self.simulator.now, RESTORE, src=a, dst=b)
            self.network.kick_retries()

    def degrade_link_at(self, time_s: float, a: str, b: str,
                        params: LinkParams,
                        duration_s: Optional[float] = None,
                        bidirectional: bool = True) -> None:
        """Degrade ``a <-> b`` at ``time_s``, restoring after ``duration_s``."""
        self.simulator.schedule_at(
            time_s, lambda: self.degrade_link(a, b, params, bidirectional),
            label=f"fault:degrade:{a}-{b}",
        )
        if duration_s is not None:
            if duration_s <= 0:
                raise ValueError("duration_s must be positive")
            self.simulator.schedule_at(
                time_s + duration_s,
                lambda: self.restore_link(a, b, bidirectional),
                label=f"fault:restore:{a}-{b}",
            )

    def blackhole_at(self, time_s: float, a: str, b: str,
                     duration_s: Optional[float] = None) -> None:
        """100%-loss window on ``a <-> b`` — the closed-interval loss
        config that used to be rejected by ``LinkParams``."""
        self.degrade_link_at(time_s, a, b,
                             LinkParams(loss_probability=1.0),
                             duration_s=duration_s)

    # ---------------------------------------------------------- partitions

    def partition_at(self, time_s: float, groups: Iterable[Iterable[str]],
                     heal_after_s: Optional[float] = None) -> None:
        """Partition at ``time_s``; automatically heal ``heal_after_s``
        seconds later when given."""
        frozen: List[List[str]] = [list(group) for group in groups]
        self.simulator.schedule_at(
            time_s, lambda: self.network.partition(frozen),
            label="fault:partition",
        )
        if heal_after_s is not None:
            if heal_after_s <= 0:
                raise ValueError("heal_after_s must be positive")
            self.heal_at(time_s + heal_after_s)

    def heal_at(self, time_s: float) -> None:
        self.simulator.schedule_at(time_s, self.network.heal,
                                   label="fault:heal")

    # ------------------------------------------------------------ byzantine

    def mark_byzantine(self, node_id: str, behavior: str) -> None:
        """Record that ``node_id`` runs adversarial ``behavior``.

        The paradigm-specific wiring (vote handling, private chains,
        spam sources) lives in the node/adapters; this keeps the
        cross-paradigm bookkeeping — the ``is_byzantine`` flag, a trace
        record, the fault-count rollup — in one paradigm-free place.
        """
        if behavior not in BYZANTINE_FAMILIES:
            raise ValueError(f"unknown Byzantine behavior {behavior!r}")
        node = self.network.node(node_id)
        node.is_byzantine = True
        self.byzantine_marked += 1
        self.tracer.emit(self.simulator.now, BYZANTINE, src=node_id,
                         reason=behavior)

    # --------------------------------------------------------------- query

    def fault_counts(self) -> Dict[str, int]:
        return {
            "crashes": self.crashes_injected,
            "restarts": self.restarts_injected,
            "byzantine_nodes": self.byzantine_marked,
            "degraded_links_active": len(self._degraded),
            "partitions": len([e for e in self.tracer.events(PARTITION)]),
            "heals": len([e for e in self.tracer.events(HEAL)]),
        }

    def protocol_counters(self) -> Dict[str, float]:
        """Network-wide per-layer counters (``transport.*`` / ``intake.*``)
        summed over every stack node — how much parking, retrying and
        republishing the injected faults actually caused.  Keys on the
        shared :mod:`repro.protocol` interfaces, so any paradigm's nodes
        are covered without this module naming them."""
        return aggregate_layer_counters(self.network.nodes())
