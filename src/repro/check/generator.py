"""Seeded property-based schedule generation.

A *schedule* is a time-ordered list of :class:`ScheduleOp` — payments,
double-spend conflicts, node crashes/restarts, partitions and a
deliberate state corruption — everything the fuzzer replays through the
unified :class:`~repro.core.ledger.Ledger` interface.  Schedules are a
pure function of ``(seed, profile)``: payments come from a
:class:`~repro.workloads.generators.PaymentWorkload` driven by a forked
stream, churn cycles from :func:`repro.faults.sample_churn_times`, so
the same seed always produces the same adversarial timeline (the SoK's
randomized conflict orderings, reproducibly).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.common.rng import exponential, fork_rng, make_rng
from repro.faults import sample_churn_times
from repro.workloads.generators import PaymentEvent, PaymentWorkload

# Operation kinds a schedule may contain.
OP_PAYMENT = "payment"
OP_DOUBLE_SPEND = "double_spend"
OP_CRASH = "crash"
OP_RESTART = "restart"
OP_PARTITION = "partition"
OP_HEAL = "heal"
OP_CORRUPT = "corrupt"
OP_TIP_SPAM = "tip_spam"

#: Deterministic tiebreak for ops landing at the same instant: faults
#: fire before traffic, heal/corrupt after.
_KIND_ORDER = {
    OP_CRASH: 0,
    OP_RESTART: 1,
    OP_PARTITION: 2,
    OP_PAYMENT: 3,
    OP_DOUBLE_SPEND: 4,
    OP_HEAL: 5,
    OP_CORRUPT: 6,
    OP_TIP_SPAM: 7,
}


@dataclass(frozen=True)
class ScheduleOp:
    """One fuzzer action, serializable for failing-seed artifacts."""

    time_s: float
    kind: str
    sender: int = 0
    recipient: int = 0
    amount: int = 0
    #: target node index for crash/restart ops
    node: int = -1
    #: conflicting-entry fanout for tip-spam ops (0 = n/a)
    count: int = 0

    def sort_key(self) -> tuple:
        return (self.time_s, _KIND_ORDER.get(self.kind, 9), self.sender,
                self.recipient, self.node, self.amount, self.count)

    def to_payment(self) -> PaymentEvent:
        return PaymentEvent(
            time_s=self.time_s,
            sender_index=self.sender,
            recipient_index=self.recipient,
            amount=self.amount,
        )

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"t": round(self.time_s, 6), "kind": self.kind}
        if self.kind in (OP_PAYMENT, OP_DOUBLE_SPEND):
            record.update(sender=self.sender, recipient=self.recipient,
                          amount=self.amount)
        elif self.kind == OP_TIP_SPAM:
            record.update(sender=self.sender, recipient=self.recipient,
                          amount=self.amount, count=self.count)
        elif self.kind in (OP_CRASH, OP_RESTART):
            record["node"] = self.node
        elif self.kind == OP_CORRUPT:
            record["amount"] = self.amount
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "ScheduleOp":
        return cls(
            time_s=float(record["t"]),
            kind=str(record["kind"]),
            sender=int(record.get("sender", 0)),
            recipient=int(record.get("recipient", 0)),
            amount=int(record.get("amount", 0)),
            node=int(record.get("node", -1)),
            count=int(record.get("count", 0)),
        )


@dataclass(frozen=True)
class FuzzProfile:
    """Knobs for one family of generated scenarios."""

    name: str = "baseline"
    #: workload accounts funded at setup
    accounts: int = 4
    initial_balance: int = 1_000_000
    #: payment horizon (sim seconds); faults stay inside it
    duration_s: float = 60.0
    #: quiescence window after the last op before the final audit
    settle_s: float = 45.0
    rate_tps: float = 0.4
    zipf_alpha: float = 0.6
    min_amount: int = 1
    max_amount: int = 500
    #: Poisson rate of double-spend conflict injections (0 = none)
    double_spend_rate_tps: float = 0.0
    #: churn: first ``churn_nodes`` node indices cycle crash/restart
    churn_nodes: int = 0
    churn_mtbf_s: float = 40.0
    churn_downtime_s: float = 8.0
    #: timed half/half partition (None = no partition)
    partition_at_s: Optional[float] = None
    partition_heal_s: float = 15.0
    #: deliberate supply corruption (the seeded-violation oracle)
    corrupt_at_s: Optional[float] = None
    corrupt_amount: int = 0
    #: in-loop audit cadence for the InvariantMonitor
    audit_interval_s: float = 5.0
    #: deployment shape
    node_count: int = 4
    block_interval_s: float = 15.0
    confirmation_depth: int = 2
    #: live pruning cadence on every replica (None = never prune mid-run)
    prune_interval_s: Optional[float] = None
    prune_keep_depth: int = 64
    #: blockchain mempool admission cap (None = unbounded)
    mempool_max_count: Optional[int] = None
    #: Byzantine adversary mix: the roster's first ``byzantine_nodes``
    #: replicas run ``byzantine_behavior`` (see repro.faults)
    byzantine_nodes: int = 0
    byzantine_behavior: str = "equivocate"
    #: BFT quorum override (``>= n/3`` seeds the classical safety break)
    quorum_f_override: Optional[int] = None
    view_timeout_s: float = 4.0
    #: Poisson rate of conflicting-tip spam bursts (0 = none)
    tip_spam_rate_tps: float = 0.0
    tip_spam_fanout: int = 3
    #: total population behind the message plane (None = just the
    #: node_count boundary; an int scales via TopologyScale)
    topology_scale: Optional[int] = None

    def describe(self) -> str:
        parts = [f"{self.accounts} accounts", f"{self.rate_tps} tps",
                 f"{self.duration_s:.0f}s"]
        if self.double_spend_rate_tps:
            parts.append(f"conflicts@{self.double_spend_rate_tps}/s")
        if self.churn_nodes:
            parts.append(f"churn x{self.churn_nodes}")
        if self.partition_at_s is not None:
            parts.append("partition")
        if self.corrupt_at_s is not None:
            parts.append("seeded corruption")
        if self.prune_interval_s is not None:
            parts.append(f"prune@{self.prune_interval_s:g}s")
        if self.byzantine_nodes:
            parts.append(
                f"byzantine x{self.byzantine_nodes} ({self.byzantine_behavior})")
        if self.quorum_f_override is not None:
            parts.append(f"f={self.quorum_f_override}")
        if self.tip_spam_rate_tps:
            parts.append(f"tip-spam@{self.tip_spam_rate_tps}/s")
        if self.topology_scale is not None:
            parts.append(f"scale={self.topology_scale}")
        return ", ".join(parts)


#: Named scenario families the CLI and CI select by name.
PROFILES: Dict[str, FuzzProfile] = {
    "baseline": FuzzProfile(name="baseline"),
    "conflict": FuzzProfile(
        name="conflict", double_spend_rate_tps=0.08, rate_tps=0.3
    ),
    "churn": FuzzProfile(
        name="churn", churn_nodes=1, churn_mtbf_s=35.0, churn_downtime_s=6.0
    ),
    "adversarial": FuzzProfile(
        name="adversarial", double_spend_rate_tps=0.06, churn_nodes=1,
        partition_at_s=20.0, partition_heal_s=12.0, rate_tps=0.3,
    ),
    # The self-test profile: a deliberate mid-run corruption the in-loop
    # monitor must catch (and the shrinker must minimize to).
    "seeded-violation": FuzzProfile(
        name="seeded-violation", corrupt_at_s=30.0, corrupt_amount=12345,
    ),
    # Sustained service: heavier traffic against a capped mempool with
    # live pruning ticking on every replica — the invariants must hold
    # while the ledger is being truncated under load.
    "soak": FuzzProfile(
        name="soak", duration_s=120.0, settle_s=60.0, rate_tps=1.0,
        prune_interval_s=30.0, prune_keep_depth=8, mempool_max_count=256,
    ),
    # Byzantine adversaries under the fault tolerance each paradigm
    # claims: one equivocating replica out of four (f < n/3 for BFT),
    # plus conflicting-tip spam bursts for the DAG's marked replica.
    # The invariants must hold — detection without divergence.
    "byzantine": FuzzProfile(
        name="byzantine", byzantine_nodes=1, rate_tps=0.3,
        tip_spam_rate_tps=0.05, settle_s=60.0,
    ),
    # The BFT self-test: two colluding equivocators with the quorum
    # threshold dropped to n - 2 (f >= n/3).  Conflicting commits MUST
    # form and the safety invariant MUST trip — run on --paradigm bft.
    "byzantine-violation": FuzzProfile(
        name="byzantine-violation", byzantine_nodes=2, quorum_f_override=2,
        rate_tps=0.3, settle_s=60.0,
    ),
}


@dataclass
class Schedule:
    """A generated scenario: the ops plus their provenance."""

    seed: int
    profile: FuzzProfile
    ops: List[ScheduleOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def prefix(self, count: int) -> "Schedule":
        return Schedule(seed=self.seed, profile=self.profile,
                        ops=self.ops[:count])

    def without(self, index: int) -> "Schedule":
        return Schedule(seed=self.seed, profile=self.profile,
                        ops=self.ops[:index] + self.ops[index + 1:])

    def replace_ops(self, ops: List[ScheduleOp]) -> "Schedule":
        return Schedule(seed=self.seed, profile=self.profile, ops=list(ops))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "profile": self.profile.name,
            "ops": [op.to_dict() for op in self.ops],
        }


def generate_schedule(seed: int, profile: Optional[FuzzProfile] = None) -> Schedule:
    """Generate the deterministic schedule for ``(seed, profile)``.

    Each op family draws from its own labelled fork of the master
    stream, so e.g. enabling churn does not perturb payment times — the
    same decomposition the simulator itself uses (``common.rng``).
    """
    profile = profile or PROFILES["baseline"]
    master = make_rng(seed)
    ops: List[ScheduleOp] = []

    payments = PaymentWorkload.from_rng(
        fork_rng(master, "fuzz:payments"),
        accounts=profile.accounts,
        rate_tps=profile.rate_tps,
        zipf_alpha=profile.zipf_alpha,
        min_amount=profile.min_amount,
        max_amount=profile.max_amount,
    )
    for event in payments.generate(profile.duration_s):
        ops.append(ScheduleOp(
            time_s=event.time_s, kind=OP_PAYMENT,
            sender=event.sender_index, recipient=event.recipient_index,
            amount=event.amount,
        ))

    if profile.double_spend_rate_tps > 0:
        conflict_rng = fork_rng(master, "fuzz:conflicts")
        t = 0.0
        while True:
            t += exponential(conflict_rng, profile.double_spend_rate_tps)
            if t >= profile.duration_s:
                break
            sender = conflict_rng.randrange(profile.accounts)
            recipient = (sender + 1 + conflict_rng.randrange(
                profile.accounts - 1)) % profile.accounts
            ops.append(ScheduleOp(
                time_s=t, kind=OP_DOUBLE_SPEND, sender=sender,
                recipient=recipient,
                amount=conflict_rng.randint(profile.min_amount,
                                            profile.max_amount),
            ))

    if profile.tip_spam_rate_tps > 0:
        spam_rng = fork_rng(master, "fuzz:byz:tip-spam")
        t = 0.0
        while True:
            t += exponential(spam_rng, profile.tip_spam_rate_tps)
            if t >= profile.duration_s:
                break
            sender = spam_rng.randrange(profile.accounts)
            recipient = (sender + 1 + spam_rng.randrange(
                profile.accounts - 1)) % profile.accounts
            ops.append(ScheduleOp(
                time_s=t, kind=OP_TIP_SPAM, sender=sender,
                recipient=recipient,
                amount=spam_rng.randint(profile.min_amount,
                                        profile.max_amount),
                count=profile.tip_spam_fanout,
            ))

    for node_index in range(profile.churn_nodes):
        churn_rng = fork_rng(master, f"fuzz:churn:{node_index}")
        for crash_time, restart_time in sample_churn_times(
            churn_rng, profile.churn_mtbf_s, profile.churn_downtime_s,
            start_s=0.0, until_s=profile.duration_s,
        ):
            ops.append(ScheduleOp(time_s=crash_time, kind=OP_CRASH,
                                  node=node_index))
            ops.append(ScheduleOp(time_s=restart_time, kind=OP_RESTART,
                                  node=node_index))

    if profile.partition_at_s is not None:
        ops.append(ScheduleOp(time_s=profile.partition_at_s,
                              kind=OP_PARTITION))
        ops.append(ScheduleOp(
            time_s=profile.partition_at_s + profile.partition_heal_s,
            kind=OP_HEAL,
        ))

    if profile.corrupt_at_s is not None:
        ops.append(ScheduleOp(time_s=profile.corrupt_at_s, kind=OP_CORRUPT,
                              amount=profile.corrupt_amount))

    ops.sort(key=ScheduleOp.sort_key)
    return Schedule(seed=seed, profile=profile, ops=ops)


def profile_named(name: str, **overrides: Any) -> FuzzProfile:
    """Look up a named profile, optionally overriding fields."""
    try:
        profile = PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fuzz profile {name!r} "
            f"(choose from {', '.join(sorted(PROFILES))})"
        ) from None
    return replace(profile, **overrides) if overrides else profile
