"""In-loop invariant enforcement.

The post-hoc audits (:mod:`repro.core.invariants`) only say whether a
finished run ended in a bad state; by then the interesting part of the
trace is gone.  :class:`InvariantMonitor` hooks an audit callable into a
running :class:`~repro.sim.simulator.Simulator` via
``schedule_periodic``, so a violation is caught at the sim-time of its
*first* observation and the tracer's ring buffer — the last N network
events leading up to it — is captured as evidence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.core.invariants import AuditReport, Violation
from repro.protocol import protocol_nodes
from repro.sim.simulator import PeriodicTask, Simulator
from repro.trace import Tracer

#: Invariants that are *eventual* in both paradigms: replicas may
#: legitimately disagree mid-propagation (Section IV's disagreement
#: windows) and only have to reconverge by quiescence.  In-loop ticks
#: ignore these; the final quiescent check enforces them.
EVENTUAL_INVARIANTS: FrozenSet[str] = frozenset({"agreement", "liveness"})


def intake_backlog(nodes: Iterable[Any]) -> Dict[str, int]:
    """Artifacts still parked in each node's intake layer.

    Keys on the shared :mod:`repro.protocol` interfaces, so the same
    probe covers every paradigm.  A nonzero backlog *after quiescence*
    means some dependency never arrived anywhere — the stuck-entry
    signal the parity matrix and the fuzzer report alongside invariant
    violations (mid-run it is ordinary in-flight disagreement).
    """
    return {
        node.node_id: len(node.intake)
        for node in protocol_nodes(nodes)
        if len(node.intake)
    }


@dataclass
class ViolationRecord:
    """A violation caught in-loop, with the trace evidence around it."""

    time_s: float
    violations: List[Violation]
    #: the tracer ring buffer at detection time (most recent events)
    evidence: List[Dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"t={self.time_s:.3f}s:"]
        lines += [f"  [{v.invariant}] {v.detail}" for v in self.violations]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_s": self.time_s,
            "violations": [
                {"invariant": v.invariant, "detail": v.detail}
                for v in self.violations
            ],
            "evidence": self.evidence,
        }


class InvariantMonitor:
    """Periodic in-simulation audit with evidence capture.

    ``audit_fn`` is any zero-argument callable returning an
    :class:`AuditReport` (or ``None`` for "cannot audit right now" —
    treated as a pass).  Typically it is ``ledger.audit`` bound to an
    adapter.  On the first failing audit the monitor records a
    :class:`ViolationRecord`, snapshots the tracer ring buffer, and — by
    default — detaches itself so the run continues to completion with
    the first-occurrence timestamp preserved.

    Periodic ticks enforce *safety* invariants only (supply,
    double-spend, linkage): those must hold at every instant.
    Invariants named in ``eventual`` (default
    :data:`EVENTUAL_INVARIANTS`) are transiently violable while gossip
    propagates, so they only count when a *strict* check — the final,
    quiescent one — still sees them.
    """

    def __init__(
        self,
        audit_fn: Callable[[], Optional[AuditReport]],
        *,
        tracer: Optional[Tracer] = None,
        interval_s: float = 5.0,
        halt_on_violation: bool = True,
        evidence_events: int = 256,
        eventual: FrozenSet[str] = EVENTUAL_INVARIANTS,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if evidence_events < 0:
            raise ValueError("evidence_events must be non-negative")
        self.audit_fn = audit_fn
        self.tracer = tracer
        self.interval_s = interval_s
        self.halt_on_violation = halt_on_violation
        self.evidence_events = evidence_events
        self.eventual = eventual
        self.audits_run = 0
        #: count of ticks where only eventual invariants were violated
        self.transient_disagreements = 0
        self.violation: Optional[ViolationRecord] = None
        self._task: Optional[PeriodicTask] = None
        self._simulator: Optional[Simulator] = None

    # ------------------------------------------------------------ lifecycle

    def attach(self, simulator: Simulator,
               until: Optional[float] = None) -> "InvariantMonitor":
        """Start periodic audits on ``simulator`` (chainable)."""
        if self._task is not None and self._task.active:
            raise RuntimeError("monitor already attached")
        self._simulator = simulator
        self._task = simulator.schedule_periodic(
            self.interval_s, self._tick, until=until
        )
        return self

    def detach(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def attached(self) -> bool:
        return self._task is not None and self._task.active

    @property
    def ok(self) -> bool:
        return self.violation is None

    # ------------------------------------------------------------- auditing

    def _tick(self) -> None:
        self.check_now()

    def check_now(self, strict: bool = False) -> Optional[ViolationRecord]:
        """Run one audit immediately; record + return the violation if
        the state is bad (keeps only the first occurrence).

        With ``strict=False`` (the periodic tick), violations of
        eventual invariants alone are tolerated as in-flight
        disagreement; ``strict=True`` (the quiescent final check)
        enforces every invariant.
        """
        report = self.audit_fn()
        self.audits_run += 1
        if report is None or report.ok:
            return None
        if not strict:
            hard = [v for v in report.violations
                    if v.invariant not in self.eventual]
            if not hard:
                self.transient_disagreements += 1
                return None
            report = AuditReport(violations=hard)
        if self.violation is None:
            now = self._simulator.now if self._simulator is not None else 0.0
            evidence: List[Dict[str, Any]] = []
            if self.tracer is not None and self.evidence_events:
                evidence = [
                    event.to_dict()
                    for event in self.tracer.events()[-self.evidence_events:]
                ]
            self.violation = ViolationRecord(
                time_s=now,
                violations=list(report.violations),
                evidence=evidence,
            )
            if self.halt_on_violation:
                self.detach()
        return self.violation

    # ------------------------------------------------------------- evidence

    def dump_evidence(self, path: str) -> int:
        """Write the captured violation (header + evidence events) as
        JSONL; returns records written (0 when no violation)."""
        if self.violation is None:
            return 0
        with open(path, "w") as handle:
            header = {
                "time_s": self.violation.time_s,
                "violations": [
                    {"invariant": v.invariant, "detail": v.detail}
                    for v in self.violation.violations
                ],
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for event in self.violation.evidence:
                handle.write(json.dumps(event, sort_keys=True, default=str)
                             + "\n")
        return 1 + len(self.violation.evidence)
