"""Differential fuzzing and in-loop invariant enforcement.

The paper's claims all reduce to a handful of global invariants — value
conservation, replica agreement, no surviving double spends (§III-IV).
``repro.check`` turns the fixed bench list into a *generator* of
scenarios:

* :mod:`repro.check.generator` — seeded property-based schedules of
  payments, double spends, churn and partitions, composed from
  :mod:`repro.workloads` and :mod:`repro.faults`;
* :mod:`repro.check.monitor` — an :class:`InvariantMonitor` that hooks
  the paradigm audits into the simulator via ``schedule_periodic`` so a
  violation is caught at the sim-time it first occurs, with the trace
  ring buffer captured as evidence;
* :mod:`repro.check.runner` — drives *both* paradigms through the
  unified :class:`~repro.core.ledger.Ledger` interface with the same
  schedule and fingerprints the run (the replay oracle asserts same
  seed → same fingerprint);
* :mod:`repro.check.shrink` — bisects a failing schedule to a minimal
  reproducing seed + prefix.

``python -m repro fuzz`` is the command-line entry point; ``pytest -m
fuzz`` selects the deterministic smoke suite.
"""

from repro.check.generator import (
    PROFILES,
    FuzzProfile,
    ScheduleOp,
    generate_schedule,
)
from repro.check.monitor import InvariantMonitor, ViolationRecord
from repro.check.runner import (
    FuzzOutcome,
    FuzzRunResult,
    build_ledger,
    run_campaign,
    run_schedule,
    run_seed,
)
from repro.check.shrink import ShrinkResult, shrink_schedule

__all__ = [
    "PROFILES",
    "FuzzProfile",
    "ScheduleOp",
    "generate_schedule",
    "InvariantMonitor",
    "ViolationRecord",
    "FuzzOutcome",
    "FuzzRunResult",
    "build_ledger",
    "run_campaign",
    "run_schedule",
    "run_seed",
    "ShrinkResult",
    "shrink_schedule",
]
