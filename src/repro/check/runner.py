"""Differential fuzz execution.

One *run* replays a generated :class:`~repro.check.generator.Schedule`
against one paradigm through the unified
:class:`~repro.core.ledger.Ledger` interface, with an
:class:`~repro.check.monitor.InvariantMonitor` auditing the deployment
in-loop.  A run ends with a *fingerprint* — a digest of the op outcomes,
the final replica state and the cumulative trace counters — and the
replay oracle is simply: same ``(seed, profile, paradigm)`` → same
fingerprint.  A *campaign* sweeps seeds over both paradigms, optionally
shrinking any failure to a minimal schedule and writing failing-seed
artifacts for CI to upload.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.blockchain.mempool import MempoolLimits
from repro.blockchain.params import BITCOIN
from repro.check.generator import (
    OP_CORRUPT,
    OP_CRASH,
    OP_DOUBLE_SPEND,
    OP_HEAL,
    OP_PARTITION,
    OP_PAYMENT,
    OP_RESTART,
    OP_TIP_SPAM,
    FuzzProfile,
    Schedule,
    generate_schedule,
)
from repro.check.monitor import InvariantMonitor, ViolationRecord, intake_backlog
from repro.core.deploy import Deployment, build_deployment
from repro.core.ledger import Ledger
from repro.dag.params import NanoParams
from repro.faults import ByzantineSpec, FaultInjector

#: Default differential pair: the two paradigms the source paper
#: compares.  BFT joins only by explicit selection (``--paradigm``).
PARADIGMS = ("blockchain", "dag")

#: Everything the fuzzer *can* drive, including the BFT engine.
ALL_PARADIGMS = ("blockchain", "dag", "bft")

#: Each paradigm's native adversary family when a profile requests
#: Byzantine replicas without naming a paradigm-specific behavior.
_NATIVE_BEHAVIOR = {"blockchain": "selfish", "dag": "tip-spam"}


def build_fuzz_deployment(paradigm: str, seed: int,
                          profile: FuzzProfile) -> Deployment:
    """Stand up a fuzz-sized deployment of ``paradigm``.

    Deployments are deliberately small (few nodes, short block
    intervals) so a 50-seed campaign stays in smoke-test territory while
    still exercising gossip, mining/elections/quorum formation and
    confirmation.  Everything funnels through
    :func:`repro.core.deploy.build_deployment`, so the fuzzer drives
    exactly the deployments the benches and CLI do.
    """
    if paradigm not in ALL_PARADIGMS:
        raise ValueError(f"unknown paradigm {paradigm!r} "
                         f"(choose from {', '.join(ALL_PARADIGMS)})")
    faults = None
    if profile.byzantine_nodes > 0:
        behavior = (profile.byzantine_behavior if paradigm == "bft"
                    else _NATIVE_BEHAVIOR[paradigm])
        faults = ByzantineSpec(
            count=profile.byzantine_nodes,
            behavior=behavior,
            f_override=(profile.quorum_f_override if paradigm == "bft"
                        else None),
        )
    scale = profile.topology_scale
    if paradigm == "blockchain":
        params = replace(
            BITCOIN,
            name="fuzz-chain",
            target_block_interval_s=profile.block_interval_s,
            confirmation_depth=profile.confirmation_depth,
        )
        limits = None
        if profile.mempool_max_count is not None:
            limits = MempoolLimits(max_count=profile.mempool_max_count)
        return build_deployment(
            "blockchain", faults=faults, chain_params=params,
            node_count=profile.node_count, seed=seed, mempool_limits=limits,
            prune_interval_s=profile.prune_interval_s,
            prune_keep_depth=profile.prune_keep_depth,
            topology_scale=scale,
        )
    if paradigm == "dag":
        return build_deployment(
            "dag", faults=faults, dag_params=NanoParams(work_difficulty=1),
            node_count=profile.node_count,
            representative_count=max(2, profile.node_count // 2),
            seed=seed, prune_interval_s=profile.prune_interval_s,
            topology_scale=scale,
        )
    return build_deployment(
        "bft", faults=faults, node_count=profile.node_count, seed=seed,
        view_timeout_s=profile.view_timeout_s,
        topology_scale=scale,
    )


def build_ledger(paradigm: str, seed: int, profile: FuzzProfile) -> Ledger:
    """Deprecated shim: the pre-factory entry point.

    Kept so released callers keep working; new code should use
    :func:`build_fuzz_deployment` (or ``build_deployment`` directly) and
    hold the uniform :class:`~repro.core.deploy.Deployment` handle.
    """
    return build_fuzz_deployment(paradigm, seed, profile).ledger


@dataclass
class FuzzRunResult:
    """Outcome of replaying one schedule on one paradigm."""

    paradigm: str
    seed: int
    profile: str
    ops_applied: int
    ops_dropped: int
    fingerprint: str
    violation: Optional[ViolationRecord]
    audits_run: int
    #: sim time at which the schedule started replaying (setup, e.g.
    #: account funding, advances the clock first)
    started_at_s: float
    duration_s: float
    #: node -> artifacts still parked in its intake layer at quiescence
    #: (recorded, not fatal: a run can end with a dependency that never
    #: arrived without violating any safety invariant)
    intake_backlog: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.violation is None

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "paradigm": self.paradigm,
            "seed": self.seed,
            "profile": self.profile,
            "ops_applied": self.ops_applied,
            "ops_dropped": self.ops_dropped,
            "fingerprint": self.fingerprint,
            "audits_run": self.audits_run,
            "duration_s": self.duration_s,
        }
        if self.intake_backlog:
            record["intake_backlog"] = dict(self.intake_backlog)
        if self.violation is not None:
            record["violation"] = self.violation.to_dict()
        return record


@dataclass
class FuzzOutcome:
    """One seed's differential verdict across paradigms."""

    seed: int
    results: List[FuzzRunResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def failing(self) -> List[FuzzRunResult]:
        return [r for r in self.results if not r.ok]


def _apply_op(op, ledger: Ledger, injector: Optional[FaultInjector],
              node_ids: Sequence[str]) -> str:
    """Apply one schedule op right now; returns an outcome tag for the
    fingerprint's op log."""
    if op.kind == OP_PAYMENT:
        entry = ledger.submit(op.to_payment())
        return "ok" if entry is not None else "dropped"
    if op.kind == OP_DOUBLE_SPEND:
        entries = ledger.submit_double_spend(op.to_payment())
        return f"conflict:{len(entries)}"
    if op.kind == OP_CRASH:
        if injector is None or not node_ids:
            return "skipped"
        injector.crash(node_ids[op.node % len(node_ids)])
        return "ok"
    if op.kind == OP_RESTART:
        if injector is None or not node_ids:
            return "skipped"
        injector.restart(node_ids[op.node % len(node_ids)])
        return "ok"
    if op.kind == OP_PARTITION:
        if injector is None or len(node_ids) < 2:
            return "skipped"
        half = len(node_ids) // 2
        injector.network.partition([node_ids[:half], node_ids[half:]])
        return "ok"
    if op.kind == OP_HEAL:
        if injector is None:
            return "skipped"
        injector.network.heal()
        return "ok"
    if op.kind == OP_CORRUPT:
        return "ok" if ledger.inject_supply_corruption(op.amount) else "skipped"
    if op.kind == OP_TIP_SPAM:
        entries = ledger.submit_tip_spam(op.to_payment(),
                                         fanout=op.count or 3)
        return f"spam:{len(entries)}"
    return "unknown"


def run_schedule(
    schedule: Schedule,
    paradigm: str,
    ledger: Optional[Ledger] = None,
) -> FuzzRunResult:
    """Replay ``schedule`` on ``paradigm`` with in-loop auditing.

    When no pre-built ``ledger`` is given, the run goes through the
    uniform :class:`~repro.core.deploy.Deployment` handle so a profile's
    ``topology_scale`` takes effect (aggregate clusters attach / the
    sharded plane engages); an explicit ``ledger`` keeps the legacy
    direct path (the shrinker and released callers).
    """
    profile = schedule.profile
    handle: Optional[Deployment] = None
    if ledger is None:
        handle = build_fuzz_deployment(paradigm, schedule.seed, profile)
        handle.setup(profile.accounts, profile.initial_balance)
        ledger = handle.ledger
    else:
        ledger.setup(profile.accounts, profile.initial_balance)

    deployment = ledger.deployment()
    injector: Optional[FaultInjector] = None
    node_ids: List[str] = []
    tracer = None
    if deployment is not None and deployment.network is not None:
        injector = FaultInjector(deployment.network)
        # Fault targets are protocol replicas; aggregate cluster leaves
        # (present when a scaled profile attached them) are not in
        # deployment.nodes, so node_ids is already the boundary set.
        node_ids = [node.node_id for node in deployment.nodes]
        tracer = deployment.network.tracer

    monitor = InvariantMonitor(
        ledger.audit, tracer=tracer, interval_s=profile.audit_interval_s
    )
    start = ledger.now()
    if deployment is not None:
        horizon = start + profile.duration_s + profile.settle_s
        monitor.attach(deployment.simulator, until=horizon)

    op_log: List[str] = []
    applied = dropped = 0
    for op in schedule.ops:
        target = start + op.time_s
        if target > ledger.now():
            ledger.advance(target - ledger.now())
        outcome = _apply_op(op, ledger, injector, node_ids)
        op_log.append(f"{op.kind}@{op.time_s:.6f}={outcome}")
        if outcome == "dropped":
            dropped += 1
        else:
            applied += 1
    ledger.advance(max(0.0, start + profile.duration_s - ledger.now())
                   + profile.settle_s)
    monitor.detach()
    # Quiescent final check: every invariant, including eventual ones.
    monitor.check_now(strict=True)
    backlog: Dict[str, int] = {}
    if deployment is not None:
        backlog = intake_backlog(deployment.nodes)

    digest = hashlib.sha256()
    for line in op_log:
        digest.update(line.encode() + b"\n")
    digest.update(ledger.state_digest().encode() + b"\n")
    if tracer is not None:
        digest.update(tracer.fingerprint().encode() + b"\n")
    digest.update(f"now={ledger.now():.6f}".encode())

    if handle is not None:
        handle.close()  # shut down sharded-plane workers, if any

    return FuzzRunResult(
        paradigm=paradigm,
        seed=schedule.seed,
        profile=profile.name,
        ops_applied=applied,
        ops_dropped=dropped,
        fingerprint=digest.hexdigest(),
        violation=monitor.violation,
        audits_run=monitor.audits_run,
        started_at_s=start,
        duration_s=ledger.now() - start,
        intake_backlog=backlog,
    )


def run_seed(
    seed: int,
    profile: FuzzProfile,
    paradigms: Sequence[str] = PARADIGMS,
) -> FuzzOutcome:
    """Generate the seed's schedule and replay it on every paradigm."""
    schedule = generate_schedule(seed, profile)
    outcome = FuzzOutcome(seed=seed)
    for paradigm in paradigms:
        outcome.results.append(run_schedule(schedule, paradigm))
    return outcome


def run_campaign(
    seeds: Sequence[int],
    profile: FuzzProfile,
    paradigms: Sequence[str] = PARADIGMS,
    *,
    shrink: bool = False,
    determinism_check: bool = False,
    artifact_dir: Optional[str] = None,
    progress: Optional[object] = None,
) -> List[FuzzOutcome]:
    """Sweep ``seeds`` across ``paradigms``.

    With ``determinism_check``, every seed is replayed twice and the
    fingerprints must match (the replay oracle).  With ``shrink``,
    failing schedules are minimized before the artifact is written.
    ``progress`` is an optional ``print``-like callable.
    """
    from repro.check.shrink import shrink_schedule

    say = progress if callable(progress) else (lambda *_: None)
    outcomes: List[FuzzOutcome] = []
    for seed in seeds:
        outcome = run_seed(seed, profile, paradigms)
        if determinism_check:
            rerun = run_seed(seed, profile, paradigms)
            for first, second in zip(outcome.results, rerun.results):
                if first.fingerprint != second.fingerprint:
                    raise AssertionError(
                        f"replay diverged: seed={seed} "
                        f"paradigm={first.paradigm} "
                        f"{first.fingerprint[:12]} != {second.fingerprint[:12]}"
                    )
        outcomes.append(outcome)
        for result in outcome.results:
            status = "ok" if result.ok else "VIOLATION"
            say(f"seed={seed} {result.paradigm}: {status} "
                f"(ops={result.ops_applied}, audits={result.audits_run}, "
                f"fp={result.fingerprint[:12]})")
            if result.ok:
                continue
            artifact: Dict[str, object] = {
                "seed": seed,
                "profile": profile.name,
                "paradigm": result.paradigm,
                "result": result.to_dict(),
                "schedule": generate_schedule(seed, profile).to_dict(),
            }
            if shrink:
                shrunk = shrink_schedule(
                    generate_schedule(seed, profile), result.paradigm
                )
                if shrunk is not None:
                    artifact["minimized"] = shrunk.to_dict()
                    say(f"  shrunk: {shrunk.original_ops} ops -> "
                        f"{len(shrunk.schedule.ops)} "
                        f"({shrunk.runs_used} replays)")
            if artifact_dir is not None:
                os.makedirs(artifact_dir, exist_ok=True)
                path = os.path.join(
                    artifact_dir,
                    f"fuzz-{profile.name}-{result.paradigm}-seed{seed}.json",
                )
                with open(path, "w") as handle:
                    json.dump(artifact, handle, indent=2, sort_keys=True,
                              default=str)
                say(f"  artifact: {path}")
    return outcomes
