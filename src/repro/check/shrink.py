"""Failing-schedule minimization.

Once a seed violates an invariant, the full schedule (dozens of
payments, faults, conflicts) is a poor bug report.  The shrinker
replays candidate sub-schedules — first bisecting to the shortest
failing *prefix*, then greedily dropping single ops — until no op can
be removed without losing the violation.  Because runs are
deterministic, "still fails" is a pure predicate of the candidate
schedule, so the ddmin-style search needs no statistical repetition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.check.generator import Schedule
from repro.check.runner import run_schedule


@dataclass
class ShrinkResult:
    """A minimized failing schedule and the search's cost."""

    schedule: Schedule
    paradigm: str
    original_ops: int
    runs_used: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "paradigm": self.paradigm,
            "original_ops": self.original_ops,
            "minimized_ops": len(self.schedule.ops),
            "runs_used": self.runs_used,
            "schedule": self.schedule.to_dict(),
        }


def shrink_schedule(
    schedule: Schedule,
    paradigm: str,
    max_runs: int = 64,
) -> Optional[ShrinkResult]:
    """Minimize ``schedule`` to a smaller one that still violates.

    Returns ``None`` when the full schedule does not reproduce a
    violation (nothing to shrink).  ``max_runs`` bounds the number of
    replays the search may spend; the best schedule found so far is
    returned when the budget runs out.
    """
    runs = 0

    def fails(candidate: Schedule) -> bool:
        nonlocal runs
        runs += 1
        return run_schedule(candidate, paradigm).violation is not None

    if not fails(schedule):
        return None
    original_ops = len(schedule.ops)

    # Phase 1: binary-search the shortest failing prefix.  The violation
    # first appears after some op; everything later is noise.
    low, high = 1, len(schedule.ops)
    while low < high and runs < max_runs:
        mid = (low + high) // 2
        if fails(schedule.prefix(mid)):
            high = mid
        else:
            low = mid + 1
    current = schedule.prefix(high)

    # Phase 2: greedy single-op elimination, repeated until a full pass
    # removes nothing (or the budget runs out).  Scan back-to-front so
    # index bookkeeping survives removals.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for index in range(len(current.ops) - 1, -1, -1):
            if runs >= max_runs:
                break
            candidate = current.without(index)
            if candidate.ops and fails(candidate):
                current = candidate
                changed = True

    return ShrinkResult(
        schedule=current,
        paradigm=paradigm,
        original_ops=original_ops,
        runs_used=runs,
    )
