"""Scalability mechanisms surveyed in Section VI-A, implemented.

* :mod:`repro.scaling.blocksize` — bigger blocks (Segwit2x) vs. node load;
* :mod:`repro.scaling.channels` — off-chain payment channels
  (Lightning / Raiden);
* :mod:`repro.scaling.plasma` — nested chains committing Merkle roots;
* :mod:`repro.scaling.sharding` — K partitions with cross-shard traffic;
* :mod:`repro.scaling.throughput` — TPS measurement and the Visa
  comparator.
"""

from repro.scaling.blocksize import blocksize_sweep, node_load_for
from repro.scaling.channels import Channel, ChannelNetwork
from repro.scaling.plasma import PlasmaChain, PlasmaOperator
from repro.scaling.sharding import ShardedLedger
from repro.scaling.throughput import VISA_TPS, ThroughputMeter

__all__ = [
    "Channel",
    "ChannelNetwork",
    "PlasmaChain",
    "PlasmaOperator",
    "ShardedLedger",
    "ThroughputMeter",
    "VISA_TPS",
    "blocksize_sweep",
    "node_load_for",
]
