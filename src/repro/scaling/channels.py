"""Payment channels — Lightning (Bitcoin) / Raiden (Ethereum), Section VI-A.

"The solution revolves around creating an off-chain channel to which a
prepaid amount is locked in for the lifetime of the channel.  The
involved parties are able to run micro transactions at high volume and
speed, avoiding the transaction cap of the network.  Any party may choose
to leave the channel, after which the final account balances are recorded
on chain and the channel is closed."

A :class:`Channel` holds doubly-signed balance states with a strictly
increasing sequence number; closing settles the latest state on chain
(two on-chain transactions per channel lifetime: open + close).  An old
state submitted at close is detected and punished, which is what makes
off-chain updates safe.  :class:`ChannelNetwork` routes payments through
intermediaries over capacity-constrained channels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.common.encoding import encode_uint
from repro.common.errors import ChannelError
from repro.common.types import Address
from repro.crypto.keys import KeyPair, verify_signature


class ChannelPhase(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"


@dataclass(frozen=True)
class ChannelState:
    """One doubly-signed off-chain balance snapshot."""

    channel_id: int
    sequence: int
    balance_a: int
    balance_b: int
    signature_a: bytes = b""
    signature_b: bytes = b""

    def signed_payload(self) -> bytes:
        return (
            encode_uint(self.channel_id, 8)
            + encode_uint(self.sequence, 8)
            + encode_uint(self.balance_a, 16)
            + encode_uint(self.balance_b, 16)
        )


class Channel:
    """A bidirectional payment channel between two parties."""

    _next_id = 0

    def __init__(self, party_a: KeyPair, party_b: KeyPair, deposit_a: int, deposit_b: int):
        if deposit_a < 0 or deposit_b < 0 or deposit_a + deposit_b <= 0:
            raise ChannelError("deposits must be non-negative and total positive")
        Channel._next_id += 1
        self.channel_id = Channel._next_id
        self.party_a = party_a
        self.party_b = party_b
        self.phase = ChannelPhase.OPEN
        self.capacity = deposit_a + deposit_b
        self._state = self._sign_state(
            ChannelState(self.channel_id, 0, deposit_a, deposit_b)
        )
        self._history: List[ChannelState] = [self._state]
        #: On-chain footprint: the open deposit transaction.
        self.on_chain_txs = 1
        self.off_chain_txs = 0

    # --------------------------------------------------------------- updates

    def _sign_state(self, state: ChannelState) -> ChannelState:
        payload = state.signed_payload()
        return ChannelState(
            channel_id=state.channel_id,
            sequence=state.sequence,
            balance_a=state.balance_a,
            balance_b=state.balance_b,
            signature_a=self.party_a.sign(payload),
            signature_b=self.party_b.sign(payload),
        )

    @property
    def state(self) -> ChannelState:
        return self._state

    def balance_of(self, address: Address) -> int:
        if address == self.party_a.address:
            return self._state.balance_a
        if address == self.party_b.address:
            return self._state.balance_b
        raise ChannelError(f"{address.short()} is not a channel member")

    def pay(self, payer: Address, amount: int) -> ChannelState:
        """One off-chain micro-transaction: shift balance, bump sequence."""
        if self.phase != ChannelPhase.OPEN:
            raise ChannelError("channel is closed")
        if amount <= 0:
            raise ChannelError("payment must be positive")
        if payer == self.party_a.address:
            new_a = self._state.balance_a - amount
            new_b = self._state.balance_b + amount
        elif payer == self.party_b.address:
            new_a = self._state.balance_a + amount
            new_b = self._state.balance_b - amount
        else:
            raise ChannelError(f"{payer.short()} is not a channel member")
        if new_a < 0 or new_b < 0:
            raise ChannelError(
                f"insufficient channel balance for {payer.short()} to pay {amount}"
            )
        self._state = self._sign_state(
            ChannelState(self.channel_id, self._state.sequence + 1, new_a, new_b)
        )
        self._history.append(self._state)
        self.off_chain_txs += 1
        return self._state

    # --------------------------------------------------------------- closing

    def verify_state(self, state: ChannelState) -> bool:
        """Both members must have signed this exact state."""
        payload = state.signed_payload()
        return verify_signature(
            self.party_a.public_key, payload, state.signature_a
        ) and verify_signature(self.party_b.public_key, payload, state.signature_b)

    def close(self, submitted: Optional[ChannelState] = None) -> Tuple[int, int]:
        """Settle on chain; returns final (balance_a, balance_b).

        Submitting a stale state (lower sequence than the counterparty can
        produce) is the classic channel fraud: the latest state wins, so
        the cheat is simply overridden here — and the close costs the
        second of the channel's two on-chain transactions.
        """
        if self.phase != ChannelPhase.OPEN:
            raise ChannelError("channel already closed")
        state = submitted or self._state
        if not self.verify_state(state):
            raise ChannelError("submitted close state is not doubly signed")
        if state.sequence < self._state.sequence:
            # Counterparty publishes the newer state during the dispute
            # window; the stale close attempt is defeated.
            state = self._state
        self.phase = ChannelPhase.CLOSED
        self.on_chain_txs += 1
        return (state.balance_a, state.balance_b)

    @property
    def amplification(self) -> float:
        """Off-chain transactions per on-chain transaction — the payoff."""
        return self.off_chain_txs / self.on_chain_txs


class ChannelNetwork:
    """A mesh of channels with multi-hop routing (the Lightning Network).

    Payments route along the cheapest path with sufficient per-hop
    capacity; each hop is one off-chain update in that hop's channel.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._channels: Dict[Tuple[Address, Address], Channel] = {}
        self._parties: Dict[Address, KeyPair] = {}
        self.payments_routed = 0
        self.payments_failed = 0

    # ---------------------------------------------------------------- wiring

    def register(self, party: KeyPair) -> None:
        self._parties[party.address] = party
        self._graph.add_node(party.address)

    def open_channel(self, a: Address, b: Address, deposit_a: int, deposit_b: int) -> Channel:
        key = _edge_key(a, b)
        if key in self._channels:
            raise ChannelError("channel already exists between these parties")
        channel = Channel(self._parties[a], self._parties[b], deposit_a, deposit_b)
        self._channels[key] = channel
        self._graph.add_edge(a, b)
        return channel

    def channel(self, a: Address, b: Address) -> Channel:
        return self._channels[_edge_key(a, b)]

    def channels(self) -> List[Channel]:
        return list(self._channels.values())

    # --------------------------------------------------------------- routing

    def find_route(self, source: Address, destination: Address, amount: int) -> List[Address]:
        """Shortest path where every hop can carry ``amount``."""

        def usable(u: Address, v: Address, _attrs) -> float:
            channel = self._channels[_edge_key(u, v)]
            if channel.phase != ChannelPhase.OPEN:
                return float("inf")
            return 1.0 if channel.balance_of(u) >= amount else float("inf")

        try:
            path = nx.shortest_path(self._graph, source, destination, weight=usable)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ChannelError(f"no route {source.short()} -> {destination.short()}") from exc
        # networkx treats inf edges as usable in unweighted fallback; verify.
        for u, v in zip(path, path[1:]):
            channel = self._channels[_edge_key(u, v)]
            if channel.phase != ChannelPhase.OPEN or channel.balance_of(u) < amount:
                raise ChannelError("no route with sufficient capacity")
        return path

    def send(self, source: Address, destination: Address, amount: int) -> List[Address]:
        """Route one payment; every hop updates its channel off chain."""
        try:
            path = self.find_route(source, destination, amount)
        except ChannelError:
            self.payments_failed += 1
            raise
        for u, v in zip(path, path[1:]):
            self._channels[_edge_key(u, v)].pay(u, amount)
        self.payments_routed += 1
        return path

    # --------------------------------------------------------------- metrics

    def total_on_chain_txs(self) -> int:
        return sum(c.on_chain_txs for c in self._channels.values())

    def total_off_chain_txs(self) -> int:
        return sum(c.off_chain_txs for c in self._channels.values())

    def close_all(self) -> Dict[Address, int]:
        """Close every channel; returns on-chain settled balances."""
        settled: Dict[Address, int] = {}
        for channel in self._channels.values():
            if channel.phase != ChannelPhase.OPEN:
                continue
            balance_a, balance_b = channel.close()
            settled[channel.party_a.address] = (
                settled.get(channel.party_a.address, 0) + balance_a
            )
            settled[channel.party_b.address] = (
                settled.get(channel.party_b.address, 0) + balance_b
            )
        return settled


def _edge_key(a: Address, b: Address) -> Tuple[Address, Address]:
    return (a, b) if bytes(a) <= bytes(b) else (b, a)
