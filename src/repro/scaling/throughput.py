"""Throughput measurement (Section VI).

Counts confirmed/settled entries over simulated time and renders the
comparisons the paper makes: Bitcoin 3–7 TPS, Ethereum 7–15 TPS, Nano's
uncapped protocol bounded by hardware, and Visa's 56,000 TPS yardstick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: "Visa which is able to process 56,000 transactions per second".
VISA_TPS = 56_000.0


@dataclass
class ThroughputMeter:
    """Sliding record of event timestamps with rate queries."""

    timestamps: List[float] = field(default_factory=list)

    def record(self, time_s: float, count: int = 1) -> None:
        self.timestamps.extend([time_s] * count)

    @property
    def total(self) -> int:
        return len(self.timestamps)

    def average_tps(self, duration_s: Optional[float] = None) -> float:
        """Events per second over ``duration_s`` (default: observed span)."""
        if not self.timestamps:
            return 0.0
        span = duration_s if duration_s is not None else (
            self.timestamps[-1] - self.timestamps[0]
        )
        if span <= 0:
            return float(len(self.timestamps))
        return len(self.timestamps) / span

    def peak_tps(self, window_s: float = 1.0) -> float:
        """Best rate over any ``window_s`` window — Nano's "peak ... 306
        TPS with an average of 105.75" distinction (Section VI-B)."""
        if not self.timestamps:
            return 0.0
        times = sorted(self.timestamps)
        best = 0
        left = 0
        for right in range(len(times)):
            while times[right] - times[left] > window_s:
                left += 1
            best = max(best, right - left + 1)
        return best / window_s

    def tps_series(self, bucket_s: float) -> List[Tuple[float, float]]:
        """(bucket start, TPS) series for plotting."""
        if bucket_s <= 0:
            raise ValueError("bucket must be positive")
        if not self.timestamps:
            return []
        buckets: Dict[int, int] = {}
        for t in self.timestamps:
            buckets[int(t // bucket_s)] = buckets.get(int(t // bucket_s), 0) + 1
        return [
            (index * bucket_s, count / bucket_s)
            for index, count in sorted(buckets.items())
        ]


def protocol_tps_table(avg_tx_size_bytes: int = 250, avg_tx_gas: int = 21_000) -> Dict[str, float]:
    """The Section VI-A headline numbers, recomputed from presets."""
    from repro.blockchain.params import BITCOIN, ETHEREUM, ETHEREUM_POS, SEGWIT2X

    return {
        "bitcoin": BITCOIN.max_tps(avg_tx_size_bytes, avg_tx_gas),
        "segwit2x": SEGWIT2X.max_tps(avg_tx_size_bytes, avg_tx_gas),
        "ethereum": ETHEREUM.max_tps(avg_tx_size_bytes, avg_tx_gas),
        "ethereum-pos": ETHEREUM_POS.max_tps(avg_tx_size_bytes, avg_tx_gas),
        "visa": VISA_TPS,
    }
