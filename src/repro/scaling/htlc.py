"""Hashed Time-Locked Contracts — atomic multi-hop channel payments.

Section VI-A's Lightning Network does not trust intermediaries: a routed
payment is locked hop by hop under the *same* payment hash, and funds
move only when the recipient reveals the preimage — which then unlocks
every hop.  If the preimage never appears, timelocks refund everyone.
This module adds that mechanism on top of
:class:`repro.scaling.channels.Channel`.

Protocol (for a route A → B → C):

1. C invents a secret, hands A ``H = sha256(secret)`` (the invoice).
2. A locks the amount toward B under H with timeout ``T``;
   B locks toward C under H with timeout ``T - Δ``.
3. C reveals the secret to claim from B; B uses the same secret to claim
   from A.  Atomicity: one secret settles every hop or none.
4. On timeout, locks refund their senders.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ChannelError
from repro.common.types import Address, Hash
from repro.crypto.hashing import sha256
from repro.scaling.channels import Channel, ChannelNetwork, ChannelPhase

#: Safety margin per hop: an inner hop must be able to claim before the
#: outer lock expires.
HOP_DELTA_S = 60.0


class HtlcState(enum.Enum):
    PENDING = "pending"
    FULFILLED = "fulfilled"
    REFUNDED = "refunded"


@dataclass
class Htlc:
    """One hop's conditional payment inside a channel."""

    channel: Channel
    payer: Address
    payee: Address
    amount: int
    payment_hash: Hash
    expires_at: float
    state: HtlcState = HtlcState.PENDING

    def fulfill(self, preimage: bytes, now: float) -> None:
        """Reveal the preimage: the lock pays out to the payee."""
        if self.state != HtlcState.PENDING:
            raise ChannelError(f"HTLC already {self.state.value}")
        if now >= self.expires_at:
            raise ChannelError("HTLC expired; only refund is possible")
        if sha256(preimage) != self.payment_hash:
            raise ChannelError("preimage does not match the payment hash")
        self.channel.pay(self.payer, self.amount)
        self.state = HtlcState.FULFILLED

    def refund(self, now: float) -> None:
        """After expiry the locked amount returns to the payer."""
        if self.state != HtlcState.PENDING:
            raise ChannelError(f"HTLC already {self.state.value}")
        if now < self.expires_at:
            raise ChannelError("HTLC not yet expired")
        self.state = HtlcState.REFUNDED  # lock dissolves; no transfer happened


@dataclass(frozen=True)
class Invoice:
    """What the recipient hands the payer: amount + payment hash."""

    payment_hash: Hash
    amount: int
    recipient: Address


class HtlcRouter:
    """Multi-hop HTLC payments over a :class:`ChannelNetwork`."""

    def __init__(self, network: ChannelNetwork) -> None:
        self.network = network
        self._secrets: Dict[Hash, bytes] = {}
        self.payments_settled = 0
        self.payments_refunded = 0

    # --------------------------------------------------------------- invoice

    def create_invoice(self, recipient: Address, amount: int, secret: bytes) -> Invoice:
        """Recipient side: register the secret, publish its hash."""
        if amount <= 0:
            raise ChannelError("invoice amount must be positive")
        payment_hash = sha256(secret)
        self._secrets[payment_hash] = secret
        return Invoice(payment_hash=payment_hash, amount=amount, recipient=recipient)

    # ----------------------------------------------------------------- route

    def lock_route(
        self, payer: Address, invoice: Invoice, now: float, timeout_s: float = 600.0
    ) -> List[Htlc]:
        """Phase 1: place an HTLC on every hop, outermost expiring last.

        Capacity is checked per hop; a failure midway releases nothing
        because locks don't move funds until fulfilment.
        """
        path = self.network.find_route(payer, invoice.recipient, invoice.amount)
        locks: List[Htlc] = []
        for hop_index, (u, v) in enumerate(zip(path, path[1:])):
            channel = self.network.channel(u, v)
            if channel.phase != ChannelPhase.OPEN:
                raise ChannelError("route crosses a closed channel")
            if channel.balance_of(u) < invoice.amount:
                raise ChannelError(f"hop {u.short()} lacks capacity")
            locks.append(
                Htlc(
                    channel=channel,
                    payer=u,
                    payee=v,
                    amount=invoice.amount,
                    payment_hash=invoice.payment_hash,
                    expires_at=now + timeout_s - hop_index * HOP_DELTA_S,
                )
            )
        if locks and locks[-1].expires_at <= now:
            raise ChannelError("route too long for the requested timeout")
        return locks

    def settle(self, locks: List[Htlc], preimage: bytes, now: float) -> None:
        """Phase 2: the recipient's preimage unwinds the route inner-to-
        outer.  One secret, every hop — that's the atomicity."""
        for htlc in reversed(locks):
            htlc.fulfill(preimage, now)
        self.payments_settled += 1

    def pay(
        self, payer: Address, invoice: Invoice, now: float, timeout_s: float = 600.0
    ) -> List[Htlc]:
        """Lock and settle in one step (the cooperative fast path)."""
        locks = self.lock_route(payer, invoice, now, timeout_s)
        secret = self._secrets.get(invoice.payment_hash)
        if secret is None:
            raise ChannelError("recipient never published this invoice")
        self.settle(locks, secret, now)
        return locks

    def refund_expired(self, locks: List[Htlc], now: float) -> int:
        """Phase 2': nobody revealed the secret; expire the locks."""
        refunded = 0
        for htlc in locks:
            if htlc.state == HtlcState.PENDING and now >= htlc.expires_at:
                htlc.refund(now)
                refunded += 1
        if refunded and all(h.state == HtlcState.REFUNDED for h in locks):
            self.payments_refunded += 1
        return refunded
