"""Sharding (Section VI-A).

"Sharding splits the network in K partitions, no longer forcing all nodes
in the network to process all incoming transactions.  Every shard k ∈ K,
in its simplest form, has its own transaction history ...  In a more
complex scenario, cross shard communication is available, meaning that
for k, m ∈ K, k ≠ m a transaction from k can trigger an event in m."

Accounts map to shards by address hash.  Intra-shard transfers execute
locally; cross-shard transfers use a two-phase lock-and-relay: debit plus
an outbound *receipt* on the source shard, then the receipt is applied on
the target shard one "slot" later — so cross-shard traffic costs two
entries and extra latency, the overhead the E13 bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import InsufficientFundsError, ShardingError
from repro.common.types import Address
from repro.crypto.hashing import sha256


@dataclass(frozen=True)
class CrossShardReceipt:
    """An outbound transfer waiting to be applied on its target shard."""

    source_shard: int
    target_shard: int
    recipient: Address
    amount: int
    created_slot: int


@dataclass
class Shard:
    """One partition: balances plus its own entry history."""

    index: int
    balances: Dict[Address, int] = field(default_factory=dict)
    entries_processed: int = 0
    outbound: List[CrossShardReceipt] = field(default_factory=list)

    def credit(self, account: Address, amount: int) -> None:
        self.balances[account] = self.balances.get(account, 0) + amount

    def debit(self, account: Address, amount: int) -> None:
        balance = self.balances.get(account, 0)
        if balance < amount:
            raise InsufficientFundsError(
                f"shard {self.index}: {account.short()} has {balance} < {amount}"
            )
        self.balances[account] = balance - amount


class ShardedLedger:
    """K shards with deterministic account placement and 2-phase
    cross-shard transfers."""

    def __init__(self, shard_count: int, per_shard_tps: float = 10.0) -> None:
        if shard_count < 1:
            raise ShardingError("need at least one shard")
        if per_shard_tps <= 0:
            raise ShardingError("per-shard capacity must be positive")
        self.shards = [Shard(index=i) for i in range(shard_count)]
        self.per_shard_tps = per_shard_tps
        self.slot = 0
        self.intra_shard_txs = 0
        self.cross_shard_txs = 0

    # ------------------------------------------------------------- placement

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_of(self, account: Address) -> int:
        """Deterministic address-to-shard mapping."""
        digest = sha256(bytes(account))
        return int.from_bytes(bytes(digest)[:8], "big") % self.shard_count

    def balance(self, account: Address) -> int:
        return self.shards[self.shard_of(account)].balances.get(account, 0)

    def credit(self, account: Address, amount: int) -> None:
        self.shards[self.shard_of(account)].credit(account, amount)

    # -------------------------------------------------------------- transfers

    def transfer(self, sender: Address, recipient: Address, amount: int) -> bool:
        """Execute a transfer; returns True if it stayed intra-shard."""
        if amount <= 0:
            raise ShardingError("amount must be positive")
        src = self.shard_of(sender)
        dst = self.shard_of(recipient)
        source_shard = self.shards[src]
        source_shard.debit(sender, amount)
        source_shard.entries_processed += 1
        if src == dst:
            source_shard.credit(recipient, amount)
            self.intra_shard_txs += 1
            return True
        # Cross-shard: phase one emits a receipt; phase two applies it on
        # the target shard at the next slot boundary.
        source_shard.outbound.append(
            CrossShardReceipt(
                source_shard=src,
                target_shard=dst,
                recipient=recipient,
                amount=amount,
                created_slot=self.slot,
            )
        )
        self.cross_shard_txs += 1
        return False

    def advance_slot(self) -> int:
        """Apply all receipts created in earlier slots; returns how many."""
        self.slot += 1
        applied = 0
        for shard in self.shards:
            remaining: List[CrossShardReceipt] = []
            for receipt in shard.outbound:
                if receipt.created_slot < self.slot:
                    target = self.shards[receipt.target_shard]
                    target.credit(receipt.recipient, receipt.amount)
                    target.entries_processed += 1
                    applied += 1
                else:
                    remaining.append(receipt)
            shard.outbound = remaining
        return applied

    def settle(self) -> None:
        """Drain all in-flight receipts."""
        while any(shard.outbound for shard in self.shards):
            self.advance_slot()

    # --------------------------------------------------------------- metrics

    def total_supply(self) -> int:
        on_shards = sum(sum(s.balances.values()) for s in self.shards)
        in_flight = sum(r.amount for s in self.shards for r in s.outbound)
        return on_shards + in_flight

    def entries_by_shard(self) -> List[int]:
        return [s.entries_processed for s in self.shards]

    def effective_tps(self, cross_shard_fraction: float) -> float:
        """Analytic throughput for the E13 sweep.

        Intra-shard txs cost 1 entry; cross-shard cost 2 (debit+receipt
        apply).  With K shards each processing ``per_shard_tps`` entries:
        TPS = K · per_shard / (1 + cross_fraction).
        """
        if not 0.0 <= cross_shard_fraction <= 1.0:
            raise ShardingError("cross-shard fraction must be in [0, 1]")
        capacity = self.shard_count * self.per_shard_tps
        return capacity / (1.0 + cross_shard_fraction)
