"""Block-size scaling and its centralization cost (Section VI-A).

"Increasing the block size also increases the maximum amount of
transactions that fit into a block, effectively increasing transaction
rate.  However, the block size increase would eventually lead to
centralization due to the fact that consumer hardware would become unable
to process blocks."  Segwit2x's 2 MB blocks are one point on this sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.units import MB
from repro.blockchain.params import ChainParams

#: Sustained validation + bandwidth budget of consumer hardware, bytes/s.
#: (A few MB/s of signature checking and disk I/O on a 2018 desktop.)
CONSUMER_NODE_CAPACITY_BPS = 4 * MB


@dataclass(frozen=True)
class BlockSizePoint:
    """One row of the block-size sweep."""

    block_size_bytes: int
    tps: float
    node_load_bps: float
    consumer_viable: bool


def node_load_for(block_size_bytes: int, block_interval_s: float) -> float:
    """Average bytes/second every full node must validate and relay."""
    if block_size_bytes <= 0 or block_interval_s <= 0:
        raise ValueError("size and interval must be positive")
    return block_size_bytes / block_interval_s


def blocksize_sweep(
    base: ChainParams,
    sizes_bytes: List[int],
    avg_tx_size_bytes: int = 250,
    consumer_capacity_bps: float = CONSUMER_NODE_CAPACITY_BPS,
) -> List[BlockSizePoint]:
    """TPS and per-node load across block sizes (bench E10).

    TPS rises linearly with size; so does every node's processing load,
    and past ``consumer_capacity_bps`` only datacenter nodes keep up —
    the centralization threshold.
    """
    points: List[BlockSizePoint] = []
    for size in sizes_bytes:
        variant = base.with_block_size(size)
        load = node_load_for(size, variant.target_block_interval_s)
        points.append(
            BlockSizePoint(
                block_size_bytes=size,
                tps=variant.max_tps(avg_tx_size_bytes=avg_tx_size_bytes),
                node_load_bps=load,
                consumer_viable=load <= consumer_capacity_bps,
            )
        )
    return points


def centralization_threshold_bytes(
    base: ChainParams, consumer_capacity_bps: float = CONSUMER_NODE_CAPACITY_BPS
) -> int:
    """Block size beyond which consumer nodes drop out."""
    return int(consumer_capacity_bps * base.target_block_interval_s)
