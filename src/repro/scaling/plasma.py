"""Plasma — nested chains committing Merkle roots (Section VI-A).

"The framework creates a nested blockchain structure by the use of smart
contracts with a root chain being the Ethereum main chain ...  Only
Merkle roots created in the sidechains are periodically broadcasted to
the main network during non-faulty states allowing scalable transactions.
For faulty states, stakeholders need to display proof of fraud and the
Byzantine node gets penalized."

:class:`PlasmaOperator` batches child-chain transactions into child
blocks and commits each block's Merkle root to the root chain.  Users
hold Merkle inclusion proofs for their transactions; a fraudulent
commitment (a root covering an invalid transaction) is challenged with a
:class:`FraudProof`, slashing the operator's bond and triggering exits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.encoding import encode_uint
from repro.common.errors import FraudProofError, ValidationError
from repro.common.types import Address, Hash
from repro.crypto.hashing import sha256d
from repro.crypto.merkle import MerkleProof, MerkleTree


@dataclass(frozen=True)
class PlasmaTx:
    """A child-chain transfer."""

    sender: Address
    recipient: Address
    amount: int
    nonce: int

    def serialize(self) -> bytes:
        return (
            bytes(self.sender)
            + bytes(self.recipient)
            + encode_uint(self.amount, 16)
            + encode_uint(self.nonce, 8)
        )

    @property
    def txid(self) -> Hash:
        return sha256d(self.serialize())

    @property
    def size_bytes(self) -> int:
        return len(self.serialize())


@dataclass
class ChildBlock:
    """A child-chain block: transactions plus their Merkle tree."""

    number: int
    transactions: List[PlasmaTx]
    tree: MerkleTree

    @property
    def root(self) -> Hash:
        return self.tree.root

    def proof_for(self, index: int) -> MerkleProof:
        return self.tree.proof(index)


@dataclass(frozen=True)
class Commitment:
    """What actually lands on the root chain: 32 bytes per child block."""

    block_number: int
    root: Hash

    #: On-chain bytes per commitment (root + block number + framing).
    SIZE_BYTES = 48


@dataclass(frozen=True)
class FraudProof:
    """Evidence that a committed child block contains an invalid tx."""

    block_number: int
    tx: PlasmaTx
    inclusion: MerkleProof
    reason: str


class PlasmaChain:
    """The root-chain contract: bond, commitments, fraud handling."""

    def __init__(self, operator: Address, bond: int) -> None:
        if bond <= 0:
            raise ValidationError("operator bond must be positive")
        self.operator = operator
        self.bond = bond
        self.operator_slashed = False
        self.commitments: Dict[int, Commitment] = {}
        self.exited: Dict[Address, int] = {}
        self.halted = False

    def submit_commitment(self, commitment: Commitment) -> None:
        if self.halted:
            raise ValidationError("chain halted after fraud")
        if commitment.block_number in self.commitments:
            raise ValidationError(f"block {commitment.block_number} already committed")
        self.commitments[commitment.block_number] = commitment

    def challenge(self, proof: FraudProof) -> int:
        """Verify a fraud proof; on success slash the bond and halt.

        The proof must show the offending tx is *included* under the
        committed root; its invalidity is then checked against the claim.
        """
        commitment = self.commitments.get(proof.block_number)
        if commitment is None:
            raise FraudProofError(f"no commitment for block {proof.block_number}")
        if not proof.inclusion.verify(commitment.root):
            raise FraudProofError("inclusion proof does not match committed root")
        if proof.inclusion.leaf != proof.tx.txid:
            raise FraudProofError("proof leaf is not the claimed transaction")
        # The root-chain contract re-checks the invalidity claim.
        if proof.reason not in ("overspend", "bad-nonce", "unknown-sender"):
            raise FraudProofError(f"unrecognized fraud reason {proof.reason!r}")
        self.operator_slashed = True
        self.halted = True
        slashed = self.bond
        self.bond = 0
        return slashed

    def exit(self, user: Address, balance: int) -> None:
        """Withdraw a user's child-chain balance to the root chain."""
        self.exited[user] = self.exited.get(user, 0) + balance

    def on_chain_bytes(self) -> int:
        """Root-chain footprint: just the commitments."""
        return len(self.commitments) * Commitment.SIZE_BYTES


class PlasmaOperator:
    """The (possibly Byzantine) child-chain block producer."""

    def __init__(self, chain: PlasmaChain, deposits: Dict[Address, int]) -> None:
        self.chain = chain
        self.balances: Dict[Address, int] = dict(deposits)
        self.nonces: Dict[Address, int] = {addr: 0 for addr in deposits}
        self.blocks: List[ChildBlock] = []
        self._pending: List[PlasmaTx] = []
        # Queue-time view: committed state plus the effect of queued txs,
        # so several transfers from one sender fit in one child block.
        self._pending_balances: Dict[Address, int] = dict(deposits)
        self._pending_nonces: Dict[Address, int] = {addr: 0 for addr in deposits}
        self.txs_processed = 0

    # ------------------------------------------------------------ child side

    def submit_tx(self, tx: PlasmaTx) -> None:
        """Queue a child-chain transaction for the next block."""
        balance = self._pending_balances.get(tx.sender)
        if balance is None:
            raise ValidationError(f"unknown sender {tx.sender.short()}")
        if tx.amount <= 0 or tx.amount > balance:
            raise ValidationError("overspend")
        if tx.nonce != self._pending_nonces[tx.sender]:
            raise ValidationError("bad nonce")
        self._pending_balances[tx.sender] = balance - tx.amount
        self._pending_balances[tx.recipient] = (
            self._pending_balances.get(tx.recipient, 0) + tx.amount
        )
        self._pending_nonces[tx.sender] += 1
        self._pending_nonces.setdefault(tx.recipient, 0)
        self._pending.append(tx)

    def _validate(self, tx: PlasmaTx) -> None:
        balance = self.balances.get(tx.sender)
        if balance is None:
            raise ValidationError(f"unknown sender {tx.sender.short()}")
        if tx.amount <= 0 or tx.amount > balance:
            raise ValidationError("overspend")
        if tx.nonce != self.nonces[tx.sender]:
            raise ValidationError("bad nonce")

    def seal_block(self, include_invalid: Optional[PlasmaTx] = None) -> ChildBlock:
        """Apply pending txs, build the Merkle tree, commit the root.

        ``include_invalid`` lets tests/benches model a Byzantine operator
        sneaking an invalid transaction under an otherwise valid root.
        """
        applied: List[PlasmaTx] = []
        for tx in self._pending:
            try:
                self._validate(tx)
            except ValidationError:
                continue
            self.balances[tx.sender] -= tx.amount
            self.balances[tx.recipient] = self.balances.get(tx.recipient, 0) + tx.amount
            self.nonces.setdefault(tx.recipient, 0)
            self.nonces[tx.sender] += 1
            applied.append(tx)
            self.txs_processed += 1
        self._pending = []
        self._pending_balances = dict(self.balances)
        self._pending_nonces = dict(self.nonces)
        if include_invalid is not None:
            applied.append(include_invalid)  # Byzantine: committed unvalidated
        if not applied:
            raise ValidationError("cannot seal an empty child block")
        tree = MerkleTree([tx.txid for tx in applied])
        block = ChildBlock(number=len(self.blocks), transactions=applied, tree=tree)
        self.blocks.append(block)
        self.chain.submit_commitment(Commitment(block_number=block.number, root=block.root))
        return block

    # ------------------------------------------------------------ user side

    def inclusion_proof(self, block_number: int, tx: PlasmaTx) -> MerkleProof:
        block = self.blocks[block_number]
        index = next(
            i for i, t in enumerate(block.transactions) if t.txid == tx.txid
        )
        return block.proof_for(index)

    def build_fraud_proof(
        self, block_number: int, tx: PlasmaTx, reason: str
    ) -> FraudProof:
        """A watching user constructs the challenge for an invalid tx."""
        return FraudProof(
            block_number=block_number,
            tx=tx,
            inclusion=self.inclusion_proof(block_number, tx),
            reason=reason,
        )

    def exit_all(self) -> None:
        """Everyone exits to the root chain (post-fraud mass exit)."""
        for user, balance in self.balances.items():
            if balance > 0:
                self.chain.exit(user, balance)

    # --------------------------------------------------------------- metrics

    def child_chain_bytes(self) -> int:
        return sum(
            tx.size_bytes for block in self.blocks for tx in block.transactions
        )

    def compression_ratio(self) -> float:
        """Child-chain bytes handled per root-chain byte — the scaling win."""
        on_chain = self.chain.on_chain_bytes()
        return self.child_chain_bytes() / on_chain if on_chain else 0.0
