"""Proof of Stake (Section III-A2) and Casper-FFG-style finality
(Section IV-A).

"Validators deposit their stake in the smart contract, which in turn
picks the validator allowed to create a block.  The more tokens a
validator stakes, it has a higher chance to create the next block.  If an
incorrect block is submitted ... the validator's stake is burned."

:class:`ValidatorSet` is that contract: deposits, stake-weighted proposer
selection, and slashing.  :class:`FinalityGadget` adds the checkpoint
justification/finalization rule of Casper FFG — "non-reversible
checkpoints, guaranteeing block inclusion" — including slashing for the
two commandment violations (double vote, surround vote).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ValidationError
from repro.common.rng import weighted_choice
from repro.common.types import Address, Hash


@dataclass
class Validator:
    """One staker registered in the deposit contract."""

    address: Address
    stake: int
    slashed: bool = False

    @property
    def active(self) -> bool:
        return self.stake > 0 and not self.slashed


class ValidatorSet:
    """The deposit contract: stake-weighted lottery plus slashing."""

    def __init__(self) -> None:
        self._validators: Dict[Address, Validator] = {}
        self.burned_stake = 0

    # --------------------------------------------------------------- staking

    def deposit(self, address: Address, amount: int) -> None:
        if amount <= 0:
            raise ValidationError("deposit must be positive")
        validator = self._validators.get(address)
        if validator is None:
            self._validators[address] = Validator(address=address, stake=amount)
        elif validator.slashed:
            raise ValidationError(f"validator {address.short()} was slashed")
        else:
            validator.stake += amount

    def withdraw(self, address: Address, amount: int) -> None:
        validator = self._validators.get(address)
        if validator is None or validator.slashed:
            raise ValidationError(f"no active validator {address.short()}")
        if amount > validator.stake:
            raise ValidationError("withdrawal exceeds stake")
        validator.stake -= amount

    def slash(self, address: Address) -> int:
        """Burn a misbehaving validator's entire stake; returns the amount.

        "Burning stake has the same economic effect as dismantling an
        attacker's mining equipment."
        """
        validator = self._validators.get(address)
        if validator is None:
            raise ValidationError(f"unknown validator {address.short()}")
        burned = validator.stake
        validator.stake = 0
        validator.slashed = True
        self.burned_stake += burned
        return burned

    # ---------------------------------------------------------------- access

    def stake_of(self, address: Address) -> int:
        validator = self._validators.get(address)
        return validator.stake if validator and validator.active else 0

    def total_stake(self) -> int:
        return sum(v.stake for v in self._validators.values() if v.active)

    def active_validators(self) -> List[Validator]:
        return [v for v in self._validators.values() if v.active]

    # --------------------------------------------------------------- lottery

    def select_proposer(self, rng: random.Random) -> Address:
        """Stake-weighted proposer lottery for the next block."""
        active = self.active_validators()
        if not active:
            raise ValidationError("no active validators")
        chosen = weighted_choice(rng, active, [v.stake for v in active])
        return chosen.address

    def selection_distribution(self, rng: random.Random, rounds: int) -> Dict[Address, int]:
        """Empirical proposer counts over ``rounds`` lotteries (bench E2)."""
        counts: Dict[Address, int] = {}
        for _ in range(rounds):
            winner = self.select_proposer(rng)
            counts[winner] = counts.get(winner, 0) + 1
        return counts


# --------------------------------------------------------------------------
# Casper-FFG-style finality
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Checkpoint:
    """An epoch-boundary block reference."""

    block_id: Hash
    epoch: int


@dataclass(frozen=True)
class FinalityVote:
    """A validator's (source → target) checkpoint link vote."""

    validator: Address
    source: Checkpoint
    target: Checkpoint

    def __post_init__(self) -> None:
        if self.target.epoch <= self.source.epoch:
            raise ValidationError("target epoch must exceed source epoch")


@dataclass
class _EpochTally:
    votes_by_target: Dict[Hash, int] = field(default_factory=dict)
    voters: Dict[Address, FinalityVote] = field(default_factory=dict)


class FinalityGadget:
    """Checkpoint justification & finalization with slashing conditions.

    * A target checkpoint is *justified* once links from a justified
      source reach ≥ 2/3 of total stake.
    * A justified checkpoint is *finalized* when its direct child epoch
      checkpoint is justified from it.
    * Double votes (same target epoch, different targets) and surround
      votes are slashable.
    """

    def __init__(self, validators: ValidatorSet, genesis_checkpoint: Checkpoint) -> None:
        if genesis_checkpoint.epoch != 0:
            raise ValidationError("genesis checkpoint must be epoch 0")
        self.validators = validators
        self.genesis = genesis_checkpoint
        self._justified: Set[Tuple[Hash, int]] = {(genesis_checkpoint.block_id, 0)}
        self._finalized: List[Checkpoint] = [genesis_checkpoint]
        self._tallies: Dict[int, _EpochTally] = {}
        self._vote_history: Dict[Address, List[FinalityVote]] = {}
        self.slashings: List[Address] = []

    # ---------------------------------------------------------------- status

    def is_justified(self, checkpoint: Checkpoint) -> bool:
        return (checkpoint.block_id, checkpoint.epoch) in self._justified

    def is_finalized(self, checkpoint: Checkpoint) -> bool:
        return checkpoint in self._finalized

    @property
    def last_finalized(self) -> Checkpoint:
        return self._finalized[-1]

    # ----------------------------------------------------------------- votes

    def cast_vote(self, vote: FinalityVote) -> Optional[Address]:
        """Record a vote; returns the validator's address if it got slashed.

        Slashing conditions (Casper FFG):
        1. double vote — two distinct votes with the same target epoch;
        2. surround vote — one vote's span strictly surrounds another's.
        """
        stake = self.validators.stake_of(vote.validator)
        if stake <= 0:
            raise ValidationError(f"{vote.validator.short()} has no active stake")

        history = self._vote_history.setdefault(vote.validator, [])
        for prior in history:
            if prior.target.epoch == vote.target.epoch and prior.target != vote.target:
                self._punish(vote.validator)
                return vote.validator
            if _surrounds(vote, prior) or _surrounds(prior, vote):
                self._punish(vote.validator)
                return vote.validator
        history.append(vote)

        if not self.is_justified(vote.source):
            return None  # link from an unjustified source never counts

        tally = self._tallies.setdefault(vote.target.epoch, _EpochTally())
        if vote.validator in tally.voters:
            return None  # duplicate identical vote
        tally.voters[vote.validator] = vote
        tally.votes_by_target[vote.target.block_id] = (
            tally.votes_by_target.get(vote.target.block_id, 0) + stake
        )
        self._maybe_justify(vote)
        return None

    def _maybe_justify(self, vote: FinalityVote) -> None:
        tally = self._tallies[vote.target.epoch]
        total = self.validators.total_stake() + self.validators.burned_stake
        if total == 0:
            return
        supporting = tally.votes_by_target[vote.target.block_id]
        if supporting * 3 >= total * 2:
            key = (vote.target.block_id, vote.target.epoch)
            if key not in self._justified:
                self._justified.add(key)
                # Finalize the source when the justified target is its
                # immediate child epoch.
                if vote.target.epoch == vote.source.epoch + 1 and self.is_justified(
                    vote.source
                ):
                    if vote.source not in self._finalized:
                        self._finalized.append(vote.source)

    def _punish(self, validator: Address) -> None:
        self.validators.slash(validator)
        self.slashings.append(validator)


def _surrounds(outer: FinalityVote, inner: FinalityVote) -> bool:
    """True when ``outer``'s span strictly contains ``inner``'s."""
    return (
        outer.source.epoch < inner.source.epoch
        and inner.target.epoch < outer.target.epoch
    )


# ---------------------------------------------------------------- energy

#: Order-of-magnitude energy per block: PoW network burn at the paper's
#: date vs. a PoS validator set of commodity servers.  Used only for the
#: qualitative Section III-A2 comparison ("consumes far less electricity").
POW_ENERGY_PER_BLOCK_KWH = 650_000.0  # ~Bitcoin network, 10 min of ~4 GW
POS_ENERGY_PER_BLOCK_KWH = 0.05  # hundreds of validators, seconds of CPU


def energy_ratio() -> float:
    """How many times more energy a PoW block costs than a PoS block."""
    return POW_ENERGY_PER_BLOCK_KWH / POS_ENERGY_PER_BLOCK_KWH
