"""Wire codec: decoding for every serialized blockchain structure.

Structures define ``serialize()`` for hashing and size accounting; this
module supplies the inverse, so blocks and transactions can round-trip
through a byte stream (disk storage, the fast-sync download path, or a
future real network transport).  Every decoder validates framing and
rejects trailing garbage.
"""

from __future__ import annotations



from repro.common.encoding import Decoder
from repro.common.errors import ValidationError
from repro.common.types import Address, Hash
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.receipts import Receipt
from repro.blockchain.transaction import (
    AccountTransaction,
    Transaction,
    TxInput,
    TxOutput,
)

# Type tags for the polymorphic transaction container in block bodies.
_TAG_UTXO = b"\x01"
_TAG_ACCOUNT = b"\x02"


def decode_tx_output(d: Decoder) -> TxOutput:
    amount = d.read_uint(8)
    recipient = Address(d._take(20))  # noqa: SLF001 - codec is a friend module
    return TxOutput(amount=amount, recipient=recipient)


def decode_tx_input(d: Decoder) -> TxInput:
    prev_txid = Hash(d._take(32))  # noqa: SLF001
    prev_index = d.read_uint(4)
    public_key = d.read_bytes()
    signature = d.read_bytes()
    return TxInput(
        prev_txid=prev_txid,
        prev_index=prev_index,
        public_key=public_key,
        signature=signature,
    )


def decode_transaction(data: bytes) -> Transaction:
    """Inverse of :meth:`Transaction.serialize`."""
    d = Decoder(data)
    nonce = d.read_uint(8)
    inputs = tuple(decode_tx_input(Decoder(raw)) for raw in d.read_list())
    outputs = tuple(decode_tx_output(Decoder(raw)) for raw in d.read_list())
    if not d.finished():
        raise ValidationError("trailing bytes after transaction")
    return Transaction(inputs=inputs, outputs=outputs, nonce=nonce)


def decode_account_transaction(data: bytes) -> AccountTransaction:
    """Inverse of :meth:`AccountTransaction.serialize`."""
    d = Decoder(data)
    sender_public_key = d.read_bytes()
    nonce = d.read_uint(8)
    recipient = Address(d._take(20))  # noqa: SLF001
    value = d.read_uint(16)
    gas_limit = d.read_uint(8)
    gas_price = d.read_uint(8)
    payload = d.read_bytes()
    signature = d.read_bytes()
    if not d.finished():
        raise ValidationError("trailing bytes after account transaction")
    return AccountTransaction(
        sender_public_key=sender_public_key,
        nonce=nonce,
        recipient=recipient,
        value=value,
        gas_limit=gas_limit,
        gas_price=gas_price,
        data=payload,
        signature=signature,
    )


def decode_header(data: bytes) -> BlockHeader:
    """Inverse of :meth:`BlockHeader.serialize`."""
    d = Decoder(data)
    parent_id = Hash(d._take(32))  # noqa: SLF001
    merkle_root = Hash(d._take(32))  # noqa: SLF001
    state_root = Hash(d._take(32))  # noqa: SLF001
    receipts_root = Hash(d._take(32))  # noqa: SLF001
    timestamp = d.read_uint(8) / 1000.0
    height = d.read_uint(8)
    target = d.read_uint(32)
    proposer_raw = d._take(20)  # noqa: SLF001
    nonce = d.read_uint(8)
    if not d.finished():
        raise ValidationError("trailing bytes after header")
    proposer = None if proposer_raw == b"\x00" * 20 else Address(proposer_raw)
    return BlockHeader(
        parent_id=parent_id,
        merkle_root=merkle_root,
        timestamp=timestamp,
        height=height,
        target=target,
        nonce=nonce,
        state_root=state_root,
        receipts_root=receipts_root,
        proposer=proposer,
    )


def encode_block(block: Block) -> bytes:
    """Full block wire form: header + tagged transaction list."""
    from repro.common.encoding import encode_list

    body = []
    for tx in block.transactions:
        if isinstance(tx, AccountTransaction):
            body.append(_TAG_ACCOUNT + tx.serialize())
        elif isinstance(tx, Transaction):
            body.append(_TAG_UTXO + tx.serialize())
        else:  # pragma: no cover - the type union is closed
            raise ValidationError(f"unencodable transaction type {type(tx)}")
    return block.header.serialize() + encode_list(body)


def decode_block(data: bytes) -> Block:
    """Inverse of :func:`encode_block`; re-checks the Merkle commitment."""
    header_size = 32 * 4 + 8 * 2 + 32 + 20 + 8
    header = decode_header(data[:header_size])
    d = Decoder(data[header_size:])
    raw_txs = d.read_list()
    if not d.finished():
        raise ValidationError("trailing bytes after block body")
    transactions: list = []
    for raw in raw_txs:
        tag, payload = raw[:1], raw[1:]
        if tag == _TAG_UTXO:
            transactions.append(decode_transaction(payload))
        elif tag == _TAG_ACCOUNT:
            transactions.append(decode_account_transaction(payload))
        else:
            raise ValidationError(f"unknown transaction tag {tag!r}")
    block = Block(header=header, transactions=tuple(transactions))
    if block.transactions and not block.merkle_root_matches():
        raise ValidationError("decoded body does not match the header's Merkle root")
    return block


def decode_receipt(data: bytes) -> Receipt:
    """Inverse of :meth:`Receipt.serialize`."""
    d = Decoder(data)
    txid = Hash(d._take(32))  # noqa: SLF001
    success = d.read_bool()
    gas_used = d.read_uint(8)
    cumulative = d.read_uint(8)
    if not d.finished():
        raise ValidationError("trailing bytes after receipt")
    return Receipt(txid=txid, success=success, gas_used=gas_used, cumulative_gas=cumulative)
