"""A full blockchain network node.

Ties together the chain store, the materialized state (UTXO set or
account trie), the mempool, gossip, and block production.  One class
serves both reference implementations: ``params.uses_gas`` selects the
Ethereum-style account model, otherwise the Bitcoin-style UTXO model.

Block production comes in two flavours matching Section III:

* :meth:`start_pow_mining` — Poisson-process PoW mining with a hash-power
  share (leader election by lottery);
* :class:`PosSlotDriver` — fixed slots with a stake-weighted proposer
  lottery (PoS), defined at module scope because it coordinates the whole
  validator set, not one node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.errors import ReproError, ValidationError
from repro.common.types import Address, Hash, TxId
from repro.crypto.pow import MAX_TARGET
from repro.net.message import Message
from repro.protocol import ConsensusEngine, ProtocolNode
from repro.blockchain.block import AnyTransaction, Block, assemble_block
from repro.blockchain.chain import ChainStore, ReorgResult
from repro.blockchain.mempool import Mempool, MempoolLimits
from repro.blockchain.miner import SimulatedMiner
from repro.blockchain.params import ChainParams
from repro.blockchain.receipts import receipts_root
from repro.blockchain.state import AccountState
from repro.blockchain.transaction import (
    AccountTransaction,
    Transaction,
    make_coinbase,
)
from repro.blockchain.utxo import UTXOSet, UndoRecord
from repro.blockchain.validation import (
    apply_block,
    revert_block,
    validate_block_structure,
)

MSG_TX = "tx"
MSG_BLOCK = "block"


@dataclass
class NodeStats:
    """Counters for one node's view of the protocol."""

    blocks_accepted: int = 0
    blocks_rejected: int = 0
    reorgs: int = 0
    orphaned_blocks: int = 0
    orphaned_transactions: int = 0
    txs_seen: int = 0
    validation_bytes: int = 0  # bytes of block bodies validated (load metric)
    blocks_withheld: int = 0   # selfish mining: blocks kept private
    private_releases: int = 0  # selfish mining: private-chain publications


class ChainConsensus(ConsensusEngine):
    """Heaviest-chain fork choice over a block tree (Section III-A).

    A block whose parent has not arrived parks in the intake layer under
    the parent id (previously the :class:`ChainStore` orphan pool did
    this below the node).  Duplicate detection is left to
    ``ChainStore.add_block`` so repeated gossip stays a silent
    not-accepted, exactly as before the stack.
    """

    paradigm = "blockchain"

    def __init__(self, node: "BlockchainNode") -> None:
        self._node = node

    def artifact_key(self, block: Block) -> Hash:
        return block.block_id

    def missing_dependency(self, block: Block) -> Optional[Hash]:
        chain = self._node.chain
        if block.block_id in chain:
            return None  # duplicate: integrate reports not-accepted
        parent = block.parent_id
        if not parent.is_zero() and parent not in chain:
            return parent
        return None

    def integrate(self, block: Block) -> bool:
        return self._node._integrate_block(block)

    def signature_items(self, block: Block):
        return _block_signature_items(block)


def _block_signature_items(block: Block) -> List[tuple]:
    """Every signature triple a block body will verify (both tx models)."""
    items: List[tuple] = []
    for tx in block.transactions:
        if isinstance(tx, Transaction):
            if not tx.is_coinbase:
                items.extend(tx.signature_items())
        elif isinstance(tx, AccountTransaction):
            items.extend(tx.signature_items())
    return items


class BlockchainNode(ProtocolNode):
    """A validating full node for either reference implementation."""

    def __init__(
        self,
        node_id: str,
        params: ChainParams,
        genesis: Block,
        genesis_allocations: Optional[Dict[Address, int]] = None,
        mempool_limits: Optional[MempoolLimits] = None,
    ) -> None:
        super().__init__(node_id)
        self.params = params
        self.chain = ChainStore(genesis)
        self.mempool = Mempool(fee_oracle=self._fee_of, limits=mempool_limits)
        self.stats = NodeStats()
        self.consensus = ChainConsensus(self)
        self._tx_blocks: Dict[TxId, Hash] = {}  # txid -> containing main-chain block
        self._miner: Optional[SimulatedMiner] = None
        self._mining_epoch = 0
        # Byzantine family "selfish" (wired by the adapters/deploy
        # factory): withhold mined blocks, release against competitors.
        self.selfish_mining = False
        self._private_blocks: List[Block] = []
        self.byz_rng: Optional[random.Random] = None
        self._entry_block_id: Optional[Hash] = None
        self._entry_result: Optional[ReorgResult] = None

        if params.uses_gas:
            self.state: Optional[AccountState] = AccountState()
            self.utxo: Optional[UTXOSet] = None
            for address, amount in (genesis_allocations or {}).items():
                self.state.credit(address, amount)
            self._state_roots: Dict[Hash, Hash] = {
                genesis.block_id: self.state.root_hash
            }
        else:
            self.state = None
            self.utxo = UTXOSet()
            self._undo: Dict[Hash, List[UndoRecord]] = {}
            for tx in genesis.transactions:
                undo = self.utxo.apply_transaction(tx)
                self._undo.setdefault(genesis.block_id, []).append(undo)
            for tx in genesis.transactions:
                self._tx_blocks[tx.txid] = genesis.block_id

    def _fee_of(self, tx: Transaction) -> int:
        """Mempool fee oracle: implied fee against the current UTXO view.

        Transactions spending in-mempool (not yet mined) outputs can't be
        priced yet; they rank at zero until their parents confirm.
        """
        if self.utxo is None:
            return 0
        try:
            return self.utxo.fee(tx)
        except ReproError:
            return 0

    # ------------------------------------------------------------------ API

    @property
    def head(self) -> Block:
        return self.chain.head

    def balance(self, address: Address) -> int:
        if self.utxo is not None:
            return self.utxo.balance(address)
        assert self.state is not None
        return self.state.balance(address)

    def submit_transaction(self, tx: AnyTransaction) -> bool:
        """Inject a locally created transaction and gossip it.

        Goes out through the transport layer: a wallet transaction
        created while its node is offline is republished on reconnect.
        """
        if not self._admit_transaction(tx):
            return False
        self.transport.publish(
            tx,
            Message(kind=MSG_TX, payload=tx, size_bytes=tx.size_bytes, dedup_key=tx.txid),
        )
        return True

    def confirmations(self, txid: TxId) -> int:
        """Main-chain confirmations of the block containing ``txid``."""
        block_id = self._tx_blocks.get(txid)
        if block_id is None:
            return 0
        return self.chain.confirmations(block_id)

    def is_confirmed(self, txid: TxId) -> bool:
        """Confirmed per the implementation's depth convention (Section
        IV-A: 6 for Bitcoin, 11 for Ethereum)."""
        return self.confirmations(txid) >= self.params.confirmation_depth

    # -------------------------------------------------------------- messages

    def handle_message(self, sender_id: str, message: Message) -> None:
        if message.kind == MSG_TX:
            self._admit_transaction(message.payload)
        elif message.kind == MSG_BLOCK:
            self.receive_block(message.payload)
            if self.selfish_mining and self._private_blocks:
                # A competitor published: the selfish miner answers with
                # its private chain (Eyal & Sirer's race).
                self._maybe_release_private()

    def message_signature_items(self, message: Message):
        if message.kind == MSG_TX:
            tx = message.payload
            if isinstance(tx, Transaction) and tx.is_coinbase:
                return ()
            return tx.signature_items()
        if message.kind == MSG_BLOCK:
            return _block_signature_items(message.payload)
        return ()

    def _admit_transaction(self, tx: AnyTransaction) -> bool:
        self.stats.txs_seen += 1
        if tx.txid in self._tx_blocks:
            return False  # already on (our view of) the chain
        if isinstance(tx, AccountTransaction):
            if not tx.verify_signature():
                return False
        elif isinstance(tx, Transaction):
            if tx.is_coinbase or not tx.verify_input_signatures():
                return False
        return self.mempool.add(tx)

    # ---------------------------------------------------------------- blocks

    def receive_block(self, block: Block) -> ReorgResult:
        """Validate and integrate one block, updating state and mempool.

        Runs the shared stack pipeline (:meth:`ProtocolNode.ingest`):
        a block whose parent is unknown parks in the intake layer and
        reports ``block_accepted=False``; integrating a parent retries
        its parked children.  The returned :class:`ReorgResult` covers
        ``block`` itself — cascaded children integrate with their own
        results.
        """
        prev_id, prev_result = self._entry_block_id, self._entry_result
        self._entry_block_id, self._entry_result = block.block_id, None
        try:
            self.ingest(block)
            result = self._entry_result
        finally:
            self._entry_block_id, self._entry_result = prev_id, prev_result
        return result if result is not None else ReorgResult(block_accepted=False)

    def _integrate_block(self, block: Block) -> bool:
        try:
            validate_block_structure(block, self.params)
        except ValidationError:
            self.stats.blocks_rejected += 1
            raise
        self.stats.validation_bytes += block.body_size_bytes
        result = self.chain.add_block(block)
        if block.block_id == self._entry_block_id:
            self._entry_result = result
        if not result.block_accepted:
            return False
        self.stats.blocks_accepted += 1
        if result.is_reorg:
            self.stats.reorgs += 1
            self.stats.orphaned_blocks += len(result.rolled_back)
        if result.extended_main:
            self._update_state(result)
            self._mining_epoch += 1
            self._reschedule_mining()
        return True

    def _update_state(self, result: ReorgResult) -> None:
        """Roll back orphaned blocks, apply adopted ones, fix the mempool."""
        if self.utxo is not None:
            for block in reversed(result.rolled_back):
                revert_block(self._undo.pop(block.block_id, []), self.utxo)
            for block in result.applied:
                self._undo[block.block_id] = apply_block(block, self.utxo, self.params)
        else:
            assert self.state is not None
            if result.rolled_back:
                fork_parent = self.chain.block_at_height(
                    result.applied[0].height - 1
                )
                self.state.rollback_to(self._state_roots[fork_parent.block_id])
            for block in result.applied:
                self._apply_account_block(block)

        for block in result.rolled_back:
            for tx in block.transactions:
                self._tx_blocks.pop(tx.txid, None)
            readmitted = self.mempool.readmit(block.transactions)
            self.stats.orphaned_transactions += readmitted
        for block in result.applied:
            for tx in block.transactions:
                self._tx_blocks[tx.txid] = block.block_id
            self.mempool.remove_included(block.transactions)

    def _apply_account_block(self, block: Block) -> None:
        assert self.state is not None
        account_txs = [
            tx for tx in block.transactions if isinstance(tx, AccountTransaction)
        ]
        miner = block.header.proposer or Address.zero()
        self.state.apply_block_transactions(
            account_txs, miner, self.params.block_reward
        )
        if (
            not block.header.state_root.is_zero()
            and self.state.root_hash != block.header.state_root
        ):
            raise ValidationError(
                f"block {block.block_id.short()} state root mismatch"
            )
        self._state_roots[block.block_id] = self.state.root_hash

    # ------------------------------------------------------------- catch-up

    def sync_from(self, peer: "BlockchainNode") -> int:
        """Adopt main-chain blocks this replica is missing from a peer.

        Real clients run headers-first initial block download / catch-up
        after a partition; here the peer's main chain is replayed through
        normal validation (``receive_block``), so fork choice and state
        updates apply as if the blocks had arrived by gossip.  Returns
        the number of blocks adopted.
        """
        adopted = 0
        for block in peer.chain.main_chain()[1:]:
            if block.block_id in self.chain:
                continue
            try:
                result = self.receive_block(block)
            except ReproError:
                continue
            if result.block_accepted:
                adopted += 1
        return adopted

    def state_sync_from(
        self, peer: "BlockchainNode", keep_depth: Optional[int] = None
    ) -> int:
        """Catch up from a checkpoint instead of replaying history.

        The Section V-A fast-sync idea applied to a live node: download
        all headers, the peer's materialized state snapshot at a pivot
        (head − ``keep_depth``), and only the recent block bodies.  The
        pivot is cemented, so the replica never needs the undo data it
        skipped.  This is also the only way to join from a *pruned* peer,
        whose old bodies are gone (``sync_from`` would park forever).
        Account-model chains fall back to full replay — their state root
        is re-derived per block.  Returns the number of blocks adopted.
        """
        if self.utxo is None or peer.utxo is None:
            return self.sync_from(peer)
        from repro.storage.pruning import DEFAULT_KEEP_DEPTH

        depth = DEFAULT_KEEP_DEPTH if keep_depth is None else keep_depth
        pivot = max(peer.chain.height - depth, 0)
        adopted = 0
        wire_bytes = peer.utxo.serialized_size_bytes()
        for block in peer.chain.main_chain()[1:]:
            if block.block_id in self.chain:
                continue
            if block.height <= pivot:
                # Headers-only below the pivot; bodies are never fetched
                # (and a pruned peer no longer has them anyway).
                block = Block(header=block.header, transactions=())
                wire_bytes += block.header.size_bytes
            else:
                wire_bytes += block.size_bytes
                self._undo[block.block_id] = list(peer._undo.get(block.block_id, []))
            if self.chain.add_block(block).block_accepted:
                adopted += 1
        self.utxo = peer.utxo.snapshot()
        self._tx_blocks = dict(peer._tx_blocks)
        self.chain.cement(pivot)
        for counters in (self.transport.counters, peer.transport.counters):
            counters.state_syncs += 1
            counters.state_sync_bytes += wire_bytes
        self.revive_intake()
        self._mining_epoch += 1
        self._reschedule_mining()
        return adopted

    def layer_counters(self) -> Dict[str, float]:
        counters = super().layer_counters()
        counters.update(self.mempool.counters())
        return counters

    def announce_chain(self) -> None:
        """Gossip this replica's main chain (post-partition heads-up).

        Peers that already saw a block ignore it via gossip dedup; peers
        on the other side of a healed partition adopt the heavier branch.
        """
        for block in self.chain.main_chain()[1:]:
            self.broadcast(
                Message(
                    kind=MSG_BLOCK,
                    payload=block,
                    size_bytes=block.size_bytes,
                    dedup_key=block.block_id,
                )
            )

    # ------------------------------------------------------------ production

    def create_block_template(
        self, timestamp: float, proposer: Address, target: int = MAX_TARGET
    ) -> Block:
        """Assemble the best block this node can mine right now."""
        if self.utxo is not None:
            return self._create_utxo_template(timestamp, proposer, target)
        return self._create_account_template(timestamp, proposer, target)

    def _create_utxo_template(
        self, timestamp: float, proposer: Address, target: int
    ) -> Block:
        assert self.utxo is not None
        budget = (self.params.max_block_size_bytes or 10**9) - 200  # coinbase room
        candidates = self.mempool.select_by_size(budget)
        chosen: List[Transaction] = []
        spent: Set[Tuple[TxId, int]] = set()
        created: Dict[Tuple[TxId, int], int] = {}
        fees = 0
        for tx in candidates:
            if not isinstance(tx, Transaction):
                continue
            outpoints = [i.outpoint for i in tx.inputs]
            if any(op in spent for op in outpoints):
                continue  # conflicts with an already chosen tx
            input_value = 0
            ok = True
            for op in outpoints:
                out = self.utxo.get(op)
                if out is not None:
                    input_value += out.amount
                elif op in created:
                    input_value += created[op]
                else:
                    ok = False
                    break
            if not ok or input_value < tx.total_output():
                continue
            chosen.append(tx)
            spent.update(outpoints)
            for index, output in enumerate(tx.outputs):
                created[(tx.txid, index)] = output.amount
            fees += input_value - tx.total_output()
        coinbase = make_coinbase(
            proposer, self.params.block_reward + fees, nonce=self.head.height + 1
        )
        return assemble_block(
            parent=self.head.header,
            transactions=[coinbase] + chosen,
            timestamp=timestamp,
            target=target,
            proposer=proposer,
        )

    def _create_account_template(
        self, timestamp: float, proposer: Address, target: int
    ) -> Block:
        assert self.state is not None
        gas_limit = self.params.initial_gas_limit or 8_000_000
        candidates = self.mempool.select_by_gas(gas_limit)
        # Execute on a scratch version to find the valid prefix and the
        # resulting roots, then roll the live state back.
        before = self.state.checkpoint()
        chosen: List[AccountTransaction] = []
        receipts = []
        for tx in candidates:
            try:
                receipt = self.state.apply_transaction(tx, proposer)
            except ReproError:
                continue
            receipts.append(receipt)
            chosen.append(tx)
        self.state.credit(proposer, self.params.block_reward)
        state_root = self.state.root_hash
        self.state.rollback_to(before)
        return assemble_block(
            parent=self.head.header,
            transactions=chosen,
            timestamp=timestamp,
            target=target,
            state_root=state_root,
            receipts_root=receipts_root(receipts),
            proposer=proposer,
        )

    # ----------------------------------------------------------- PoW mining

    def start_pow_mining(self, hashrate_share: float, coinbase: Address) -> None:
        """Begin Poisson-process mining (Section III-A1 lottery)."""
        if self.network is None:
            raise RuntimeError("attach the node to a network before mining")
        sim = self.network.simulator
        self._miner = SimulatedMiner(
            coinbase_address=coinbase,
            hashrate_share=hashrate_share,
            target_interval_s=self.params.target_block_interval_s,
            rng=sim.fork_rng(f"miner:{self.node_id}"),
        )
        self._reschedule_mining()

    def stop_mining(self) -> None:
        self._miner = None
        self._mining_epoch += 1

    @property
    def miner(self) -> Optional[SimulatedMiner]:
        return self._miner

    def refresh_mining(self) -> None:
        """Re-arm the next solve with current miner rates.

        Call after changing ``hashrate_boost``/``difficulty_factor`` so
        the new rate takes effect immediately instead of at the next
        head change (exponential memorylessness makes the re-draw fair).
        """
        self._mining_epoch += 1
        self._reschedule_mining()

    def _reschedule_mining(self) -> None:
        """(Re)arm the next block-discovery event for the current head.

        Restarting the exponential draw on head change is statistically
        neutral (memorylessness) and mirrors miners switching templates.
        """
        if self._miner is None or self.network is None:
            return
        epoch = self._mining_epoch
        delay = self._miner.next_block_delay()

        def solve() -> None:
            if self._miner is None or epoch != self._mining_epoch:
                return  # stale: head moved since this draw
            self._produce_and_broadcast()

        self.network.simulator.schedule(delay, solve, label=f"mine:{self.node_id}")

    def _produce_and_broadcast(self) -> None:
        assert self._miner is not None and self.network is not None
        sim = self.network.simulator
        block = self.create_block_template(
            timestamp=sim.now, proposer=self._miner.coinbase_address
        )
        block = self._miner.make_block(
            parent=self.head.header,
            transactions=block.transactions,
            timestamp=sim.now,
            target=MAX_TARGET,
            state_root=block.header.state_root,
            receipts_root=block.header.receipts_root,
        )
        self.receive_block(block)  # bumps epoch and reschedules
        if self.selfish_mining:
            # Byzantine family "selfish": keep the block private and
            # keep mining on top of it; the release races a competitor.
            self._private_blocks.append(block)
            self.stats.blocks_withheld += 1
            return
        self.transport.publish(block, self._block_message(block))

    def _block_message(self, block: Block) -> Message:
        return Message(
            kind=MSG_BLOCK,
            payload=block,
            size_bytes=block.size_bytes,
            dedup_key=block.block_id,
        )

    def _maybe_release_private(self) -> None:
        """Release the withheld chain, or (rng-driven, stubborn-miner
        variant) hold a long lead through one more round."""
        if (len(self._private_blocks) >= 2 and self.byz_rng is not None
                and self.byz_rng.random() < 0.25):
            return
        self.release_private_blocks()

    def release_private_blocks(self) -> int:
        """Publish every withheld block still on our main chain."""
        released = 0
        for block in self._private_blocks:
            if self.chain.is_on_main_chain(block.block_id):
                self.transport.publish(block, self._block_message(block))
                released += 1
        self._private_blocks.clear()
        if released:
            self.stats.private_releases += 1
        return released

    # ------------------------------------------------------------- transport

    def retains_artifact(self, artifact: Any) -> bool:
        """Offline-queued blocks republish only while still stored;
        transactions only until (our view of) the chain includes them."""
        if isinstance(artifact, Block):
            return artifact.block_id in self.chain
        return artifact.txid not in self._tx_blocks


# --------------------------------------------------------------------------
# PoS block production
# --------------------------------------------------------------------------


class PosSlotDriver:
    """Drives PoS block production across a set of nodes (Section III-A2).

    Every ``slot_interval`` seconds the deposit contract's lottery picks a
    proposer; that validator's node builds and broadcasts the next block.
    No hashing happens — which is the entire energy argument.
    """

    def __init__(
        self,
        nodes: Dict[Address, BlockchainNode],
        validator_set,
        slot_interval_s: Optional[float] = None,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one validator node")
        self.nodes = nodes
        self.validator_set = validator_set
        first = next(iter(nodes.values()))
        self.slot_interval_s = slot_interval_s or first.params.target_block_interval_s
        self.slots_run = 0
        self.proposer_history: List[Address] = []

    def start(self, simulator, until: float) -> None:
        rng = simulator.fork_rng("pos-slots")

        def slot() -> None:
            proposer = self.validator_set.select_proposer(rng)
            self.proposer_history.append(proposer)
            self.slots_run += 1
            node = self.nodes.get(proposer)
            if node is None:
                return  # proposer offline: empty slot
            block = node.create_block_template(
                timestamp=simulator.now, proposer=proposer
            )
            node.receive_block(block)
            node.transport.publish(
                block,
                Message(
                    kind=MSG_BLOCK,
                    payload=block,
                    size_bytes=block.size_bytes,
                    dedup_key=block.block_id,
                ),
            )

        simulator.schedule_periodic(self.slot_interval_s, slot, until=until)
