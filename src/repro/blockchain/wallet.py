"""Wallets: key management plus spendable-output tracking.

A wallet answers "what can this key spend right now?" — which, on a UTXO
chain, requires tracking in-flight (submitted but unmined) transactions,
or the second payment would double-spend the first's inputs inside the
mempool.  :class:`UtxoWallet` keeps an *optimistic* view: spent outputs
leave immediately, change and incoming outputs arrive immediately.  The
view matches the eventual chain state for any set of valid,
non-conflicting payments, because orphaned transactions are re-mined
(Section IV-A) rather than dropped.

:class:`AccountWallet` is the account-model analogue: the only local
state is the next nonce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import ValidationError
from repro.common.types import Address, TxId
from repro.crypto.keys import KeyPair
from repro.blockchain.transaction import (
    AccountTransaction,
    Transaction,
    build_transaction,
    sign_account_transaction,
)

Outpoint = Tuple[TxId, int]


@dataclass
class UtxoWallet:
    """One keypair's optimistic spendable-output set."""

    keypair: KeyPair
    _outputs: Dict[Outpoint, int] = field(default_factory=dict)

    @property
    def address(self) -> Address:
        return self.keypair.address

    @property
    def balance(self) -> int:
        """Spendable value under the optimistic view."""
        return sum(self._outputs.values())

    def track(self, txid: TxId, index: int, amount: int) -> None:
        """Register an output this wallet controls (funding, change,
        incoming payment)."""
        if amount < 0:
            raise ValidationError("tracked amount must be non-negative")
        self._outputs[(txid, index)] = amount

    def track_funding(self, tx: Transaction) -> int:
        """Scan a transaction for outputs payable to this wallet."""
        found = 0
        for index, output in enumerate(tx.outputs):
            if output.recipient == self.address:
                self.track(tx.txid, index, output.amount)
                found += 1
        return found

    def spendable(self) -> List[Tuple[TxId, int, int]]:
        return [
            (txid, index, amount)
            for (txid, index), amount in sorted(self._outputs.items())
        ]

    def pay(self, recipient: Address, amount: int, fee: int = 0) -> Transaction:
        """Build a signed payment and update the optimistic view."""
        tx = build_transaction(self.keypair, self.spendable(), recipient, amount, fee)
        for tx_input in tx.inputs:
            self._outputs.pop(tx_input.outpoint, None)
        for index, output in enumerate(tx.outputs):
            if output.recipient == self.address:
                self.track(tx.txid, index, output.amount)
        return tx

    def receive_from(self, tx: Transaction) -> int:
        """Credit outputs of a counterparty's payment to this wallet."""
        return self.track_funding(tx)


@dataclass
class AccountWallet:
    """Account-model wallet: the key plus the next nonce."""

    keypair: KeyPair
    next_nonce: int = 0

    @property
    def address(self) -> Address:
        return self.keypair.address

    def pay(
        self,
        recipient: Address,
        value: int,
        gas_limit: int = 21_000,
        gas_price: int = 1,
        data: bytes = b"",
    ) -> AccountTransaction:
        """Build a signed transaction and advance the local nonce."""
        tx = sign_account_transaction(
            self.keypair,
            nonce=self.next_nonce,
            recipient=recipient,
            value=value,
            gas_limit=gas_limit,
            gas_price=gas_price,
            data=data,
        )
        self.next_nonce += 1
        return tx

    def resync(self, chain_nonce: int) -> None:
        """Adopt the chain's view after a restart or dropped txs."""
        if chain_nonce < 0:
            raise ValidationError("nonce cannot be negative")
        self.next_nonce = chain_nonce
