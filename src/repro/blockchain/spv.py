"""Simplified Payment Verification — the blockchain light client.

Section V's pruning discussion implies the serving hierarchy: full nodes
hold everything, pruned nodes hold headers plus a recent window, and
light (SPV) clients hold *only headers*, verifying individual payments
with Merkle inclusion proofs against header commitments.  This module
implements that client: a header chain validated for linkage and PoW,
plus proof checking and the depth-based confidence rule of Section IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import InvalidProofOfWorkError, UnknownParentError, ValidationError
from repro.common.types import Hash, TxId
from repro.crypto.merkle import MerkleProof
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import ChainStore


@dataclass(frozen=True)
class PaymentProof:
    """Everything an SPV client needs to verify one payment.

    Produced by a full node (:func:`make_payment_proof`), consumed by
    :meth:`SpvClient.verify_payment`.
    """

    txid: TxId
    block_id: Hash
    merkle_proof: MerkleProof


class SpvClient:
    """A headers-only client.

    Storage is ~200 bytes per block instead of full bodies — the
    lightest point on Section V's trade-off curve — at the price of
    trusting depth, not validation, for confirmation confidence.
    """

    def __init__(self, genesis_header: BlockHeader, check_pow: bool = True) -> None:
        if not genesis_header.parent_id.is_zero():
            raise ValidationError("SPV client must start from a genesis header")
        self._headers: Dict[Hash, BlockHeader] = {genesis_header.block_id: genesis_header}
        self._chain: List[Hash] = [genesis_header.block_id]
        self._check_pow = check_pow

    # ---------------------------------------------------------------- sync

    def add_header(self, header: BlockHeader) -> None:
        """Append the next header, validating linkage and proof of work.

        SPV clients follow a single presented chain; reorg handling
        (accepting a heavier competing chain of headers) is in
        :meth:`adopt_chain`.
        """
        if header.parent_id != self._chain[-1]:
            raise UnknownParentError(
                f"header {header.block_id.short()} does not extend the tip"
            )
        if header.height != len(self._chain):
            raise ValidationError("header height does not follow the tip")
        if self._check_pow and not header.check_proof_of_work():
            raise InvalidProofOfWorkError(
                f"header {header.block_id.short()} fails proof of work"
            )
        self._headers[header.block_id] = header
        self._chain.append(header.block_id)

    def adopt_chain(self, headers: List[BlockHeader]) -> bool:
        """Switch to a competing header chain if it carries more work.

        Returns True if adopted.  The competing chain must share this
        client's genesis and be internally valid.
        """
        if not headers or headers[0].block_id != self._chain[0]:
            return False
        candidate = SpvClient(headers[0], check_pow=self._check_pow)
        for header in headers[1:]:
            candidate.add_header(header)
        if candidate.total_work() <= self.total_work():
            return False
        self._headers = candidate._headers
        self._chain = candidate._chain
        return True

    def sync_from(self, chain: ChainStore) -> int:
        """Pull any missing main-chain headers from a full node."""
        added = 0
        for block in chain.main_chain()[len(self._chain):]:
            self.add_header(block.header)
            added += 1
        return added

    # --------------------------------------------------------------- queries

    @property
    def height(self) -> int:
        return len(self._chain) - 1

    def tip(self) -> BlockHeader:
        return self._headers[self._chain[-1]]

    def total_work(self) -> float:
        return sum(self._headers[h].work for h in self._chain)

    def header_at(self, height: int) -> BlockHeader:
        return self._headers[self._chain[height]]

    def storage_bytes(self) -> int:
        """What the client stores: headers only."""
        return sum(self._headers[h].size_bytes for h in self._chain)

    # ---------------------------------------------------------- verification

    def verify_payment(self, proof: PaymentProof) -> int:
        """Validate a payment proof; returns its confirmation count.

        Checks: (1) the block is on this client's header chain; (2) the
        Merkle path links the txid to that header's commitment.  The
        returned depth feeds the Section IV-A rule ("wait for six").
        """
        header = self._headers.get(proof.block_id)
        if header is None or proof.block_id not in self._chain:
            raise ValidationError("payment's block is not on the header chain")
        if proof.merkle_proof.leaf != proof.txid:
            raise ValidationError("proof is not about the claimed transaction")
        if not proof.merkle_proof.verify(header.merkle_root):
            raise ValidationError("Merkle proof does not match the header commitment")
        height = self._chain.index(proof.block_id)
        return self.height - height + 1

    def is_confirmed(self, proof: PaymentProof, depth: int) -> bool:
        return self.verify_payment(proof) >= depth


def make_payment_proof(block: Block, txid: TxId) -> PaymentProof:
    """Full-node side: build the SPV proof for a transaction in a block."""
    from repro.crypto.merkle import MerkleTree

    txids = [tx.txid for tx in block.transactions]
    try:
        index = txids.index(txid)
    except ValueError:
        raise ValidationError(
            f"tx {txid.short()} is not in block {block.block_id.short()}"
        ) from None
    tree = MerkleTree(txids)
    return PaymentProof(
        txid=txid, block_id=block.block_id, merkle_proof=tree.proof(index)
    )
