"""The mempool: pending transactions awaiting inclusion.

Section VI opens with the pending-transaction backlogs of Bitcoin
(~187k) and Ethereum (~22k) — the mempool is where that backlog lives.
Selection is by fee rate (fee per byte for UTXO txs, gas price for
account txs), the policy real miners use.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.common.types import TxId
from repro.blockchain.gas import intrinsic_gas
from repro.blockchain.transaction import AccountTransaction, Transaction

AnyTx = Union[Transaction, AccountTransaction]
FeeOracle = Callable[[Transaction], int]


class Mempool:
    """Pending-transaction pool with fee-ordered block template selection."""

    def __init__(self, fee_oracle: Optional[FeeOracle] = None) -> None:
        self._txs: Dict[TxId, AnyTx] = {}
        self._fees: Dict[TxId, int] = {}
        self._fee_oracle = fee_oracle
        self.total_accepted = 0
        self.total_dropped = 0

    # ---------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: TxId) -> bool:
        return txid in self._txs

    def get(self, txid: TxId) -> Optional[AnyTx]:
        return self._txs.get(txid)

    def pending(self) -> List[AnyTx]:
        return list(self._txs.values())

    def size_bytes(self) -> int:
        return sum(tx.size_bytes for tx in self._txs.values())

    # -------------------------------------------------------------- mutation

    def add(self, tx: AnyTx, fee: Optional[int] = None) -> bool:
        """Admit a transaction; returns False if already present."""
        if tx.txid in self._txs:
            return False
        if fee is None:
            if isinstance(tx, AccountTransaction):
                fee = intrinsic_gas(tx) * tx.gas_price
            elif self._fee_oracle is not None:
                fee = self._fee_oracle(tx)
            else:
                fee = 0
        self._txs[tx.txid] = tx
        self._fees[tx.txid] = fee
        self.total_accepted += 1
        return True

    def remove(self, txid: TxId) -> Optional[AnyTx]:
        self._fees.pop(txid, None)
        return self._txs.pop(txid, None)

    def remove_included(self, txs: Iterable[AnyTx]) -> int:
        """Drop transactions that made it into a block."""
        removed = 0
        for tx in txs:
            if self.remove(tx.txid) is not None:
                removed += 1
        return removed

    def readmit(self, txs: Iterable[AnyTx]) -> int:
        """Return orphaned transactions to the pool (Section IV-A:
        "orphaned transactions need to be included in a new block")."""
        readmitted = 0
        for tx in txs:
            if getattr(tx, "is_coinbase", False):
                continue  # a coinbase only exists in its own block
            if self.add(tx):
                readmitted += 1
        return readmitted

    # -------------------------------------------------------------- selection

    def _fee_rate(self, txid: TxId) -> float:
        tx = self._txs[txid]
        return self._fees[txid] / max(tx.size_bytes, 1)

    def select_by_size(self, max_bytes: int) -> List[AnyTx]:
        """Greedy fee-rate-ordered selection under a byte cap (Bitcoin)."""
        chosen: List[AnyTx] = []
        used = 0
        for txid in sorted(self._txs, key=self._fee_rate, reverse=True):
            tx = self._txs[txid]
            if used + tx.size_bytes > max_bytes:
                continue
            chosen.append(tx)
            used += tx.size_bytes
        return chosen

    def select_by_gas(self, gas_limit: int) -> List[AccountTransaction]:
        """Greedy gas-price-ordered selection under a gas cap (Ethereum)."""
        account_txs = [
            tx for tx in self._txs.values() if isinstance(tx, AccountTransaction)
        ]
        chosen: List[AccountTransaction] = []
        used = 0
        for tx in sorted(account_txs, key=lambda t: t.gas_price, reverse=True):
            cost = intrinsic_gas(tx)
            if used + cost > gas_limit:
                continue
            chosen.append(tx)
            used += cost
        return chosen

    def evict(self, keep: int) -> int:
        """Drop the lowest-fee-rate transactions beyond ``keep`` entries."""
        if len(self._txs) <= keep:
            return 0
        ranked = sorted(self._txs, key=self._fee_rate, reverse=True)
        dropped = 0
        for txid in ranked[keep:]:
            self.remove(txid)
            dropped += 1
        self.total_dropped += dropped
        return dropped
