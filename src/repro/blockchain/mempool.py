"""The mempool: pending transactions awaiting inclusion.

Section VI opens with the pending-transaction backlogs of Bitcoin
(~187k) and Ethereum (~22k) — the mempool is where that backlog lives.
Selection is by fee rate (fee per byte for UTXO txs, gas price for
account txs), the policy real miners use.

Admission is a fee market (:class:`MempoolLimits`): a minimum fee rate,
byte/count caps with lowest-fee-rate eviction, and replace-by-fee for
conflicting transactions (same outpoint for UTXO, same sender+nonce for
accounts).  The default limits are unbounded, which reproduces the
historical unlimited-pool behaviour bit-for-bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.common.types import TxId
from repro.blockchain.gas import intrinsic_gas
from repro.blockchain.transaction import AccountTransaction, Transaction

AnyTx = Union[Transaction, AccountTransaction]
FeeOracle = Callable[[Transaction], int]

#: Outpoint spent by a UTXO transaction input.
_Outpoint = Tuple[TxId, int]
#: (sender address bytes, nonce) slot an account transaction occupies.
_NonceSlot = Tuple[bytes, int]

#: Remembered fees of removed transactions (readmit-after-reorg path)
#: are bounded so a long soak cannot grow the map without limit.
_FEE_MEMORY_CAP = 100_000


@dataclass(frozen=True)
class MempoolLimits:
    """Fee-market admission policy.  The defaults disable every limit."""

    #: maximum transactions held (None = unbounded)
    max_count: Optional[int] = None
    #: maximum total transaction bytes held (None = unbounded)
    max_bytes: Optional[int] = None
    #: reject transactions under this fee rate (fee per byte)
    min_fee_rate: float = 0.0
    #: a replacement must beat the incumbent's price by this factor
    #: (1.0 = any strictly higher bid wins, BIP125 uses 1.1-ish)
    replacement_factor: float = 1.0

    @property
    def bounded(self) -> bool:
        return self.max_count is not None or self.max_bytes is not None


class Mempool:
    """Pending-transaction pool with fee-ordered block template selection."""

    def __init__(
        self,
        fee_oracle: Optional[FeeOracle] = None,
        limits: Optional[MempoolLimits] = None,
    ) -> None:
        self._txs: Dict[TxId, AnyTx] = {}
        self._fees: Dict[TxId, int] = {}
        self._fee_oracle = fee_oracle
        self.limits = limits or MempoolLimits()
        #: running byte total — ``size_bytes`` is O(1), not a scan
        self._bytes = 0
        #: outpoint -> txid spending it (UTXO conflict/RBF index)
        self._by_outpoint: Dict[_Outpoint, TxId] = {}
        #: (sender, nonce) -> txid occupying the slot (account RBF index)
        self._by_nonce_slot: Dict[_NonceSlot, TxId] = {}
        #: fees of removed txs, so a reorg readmit keeps its original bid
        self._fee_memory: Dict[TxId, int] = {}
        #: lazy min-heap of (fee_rate, seq, txid) for cap eviction
        self._rate_heap: List[Tuple[float, int, TxId]] = []
        self._heap_seq = 0
        self.total_accepted = 0
        self.total_dropped = 0
        self.total_replaced = 0
        self.total_rejected_fee = 0
        self.total_rejected_full = 0
        self.total_rejected_replacement = 0

    # ---------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: TxId) -> bool:
        return txid in self._txs

    def get(self, txid: TxId) -> Optional[AnyTx]:
        return self._txs.get(txid)

    def pending(self) -> List[AnyTx]:
        return list(self._txs.values())

    def size_bytes(self) -> int:
        return self._bytes

    def counters(self) -> Dict[str, float]:
        """Backpressure accounting in the flat ``layer.metric`` namespace
        (merged into node layer counters → ``LedgerStats.extra``)."""
        return {
            "mempool.accepted": float(self.total_accepted),
            "mempool.dropped": float(self.total_dropped),
            "mempool.replaced": float(self.total_replaced),
            "mempool.rejected_fee": float(self.total_rejected_fee),
            "mempool.rejected_full": float(self.total_rejected_full),
            "mempool.rejected_replacement": float(self.total_rejected_replacement),
            "mempool.backlog": float(len(self._txs)),
            "mempool.backlog_bytes": float(self._bytes),
        }

    # -------------------------------------------------------------- mutation

    def add(self, tx: AnyTx, fee: Optional[int] = None) -> bool:
        """Admit a transaction under the fee-market policy.

        Returns False when already present, priced under the floor,
        outbid by an existing conflict, or squeezed out by the caps.  A
        conflicting transaction that outbids its incumbent (higher gas
        price / fee rate) replaces it — replace-by-fee.
        """
        if tx.txid in self._txs:
            return False
        fee = self._resolve_fee(tx, fee)
        rate = fee / max(tx.size_bytes, 1)

        conflicts = self._conflicts_of(tx)
        if conflicts:
            if not self._outbids(tx, rate, conflicts):
                self.total_rejected_replacement += 1
                return False
            for victim in conflicts:
                self.remove(victim)
                self.total_replaced += 1

        limits = self.limits
        if limits.min_fee_rate and rate < limits.min_fee_rate:
            self.total_rejected_fee += 1
            return False
        if limits.bounded and not self._make_room(tx, rate):
            self.total_rejected_full += 1
            return False

        self._txs[tx.txid] = tx
        self._fees[tx.txid] = fee
        self._bytes += tx.size_bytes
        self._index(tx)
        self._heap_seq += 1
        heapq.heappush(self._rate_heap, (rate, self._heap_seq, tx.txid))
        self.total_accepted += 1
        return True

    def _resolve_fee(self, tx: AnyTx, fee: Optional[int]) -> int:
        if fee is not None:
            return fee
        remembered = self._fee_memory.pop(tx.txid, None)
        if remembered:
            # A reorged transaction keeps its recorded bid instead of
            # being repriced (readmit used to reset the fee to zero and
            # starve the transaction behind fresh traffic).
            return remembered
        if isinstance(tx, AccountTransaction):
            return intrinsic_gas(tx) * tx.gas_price
        if self._fee_oracle is not None:
            return self._fee_oracle(tx)
        return 0

    def _conflicts_of(self, tx: AnyTx) -> List[TxId]:
        found: List[TxId] = []
        if isinstance(tx, AccountTransaction):
            incumbent = self._by_nonce_slot.get((bytes(tx.sender), tx.nonce))
            if incumbent is not None:
                found.append(incumbent)
        elif isinstance(tx, Transaction) and not tx.is_coinbase:
            for tx_input in tx.inputs:
                incumbent = self._by_outpoint.get(tx_input.outpoint)
                if incumbent is not None and incumbent not in found:
                    found.append(incumbent)
        return found

    def _outbids(self, tx: AnyTx, rate: float, conflicts: List[TxId]) -> bool:
        factor = self.limits.replacement_factor
        if isinstance(tx, AccountTransaction):
            for txid in conflicts:
                incumbent = self._txs[txid]
                assert isinstance(incumbent, AccountTransaction)
                if tx.gas_price <= incumbent.gas_price * factor:
                    return False
            return True
        return all(rate > self._fee_rate(txid) * factor for txid in conflicts)

    def _make_room(self, tx: AnyTx, rate: float) -> bool:
        """Evict lowest-fee-rate entries until ``tx`` fits; refuse if the
        newcomer does not outbid the cheapest incumbent (mempool-full
        backpressure, the real min-relay-fee ratchet)."""
        while self._over_capacity(tx):
            victim = self._cheapest()
            if victim is None:
                return False
            victim_rate, txid = victim
            if victim_rate >= rate:
                return False
            self.remove(txid)
            self.total_dropped += 1
        return True

    def _over_capacity(self, tx: AnyTx) -> bool:
        limits = self.limits
        if limits.max_count is not None and len(self._txs) + 1 > limits.max_count:
            return True
        if (
            limits.max_bytes is not None
            and self._bytes + tx.size_bytes > limits.max_bytes
        ):
            return True
        return False

    def _cheapest(self) -> Optional[Tuple[float, TxId]]:
        """Lowest-fee-rate entry, discarding stale heap records."""
        heap = self._rate_heap
        while heap:
            rate, _, txid = heap[0]
            if txid in self._txs and self._fee_rate(txid) == rate:
                return rate, txid
            heapq.heappop(heap)
        return None

    def _index(self, tx: AnyTx) -> None:
        if isinstance(tx, AccountTransaction):
            self._by_nonce_slot[(bytes(tx.sender), tx.nonce)] = tx.txid
        elif isinstance(tx, Transaction) and not tx.is_coinbase:
            for tx_input in tx.inputs:
                self._by_outpoint[tx_input.outpoint] = tx.txid

    def _unindex(self, tx: AnyTx) -> None:
        if isinstance(tx, AccountTransaction):
            slot = (bytes(tx.sender), tx.nonce)
            if self._by_nonce_slot.get(slot) == tx.txid:
                del self._by_nonce_slot[slot]
        elif isinstance(tx, Transaction) and not tx.is_coinbase:
            for tx_input in tx.inputs:
                if self._by_outpoint.get(tx_input.outpoint) == tx.txid:
                    del self._by_outpoint[tx_input.outpoint]

    def remove(self, txid: TxId) -> Optional[AnyTx]:
        tx = self._txs.pop(txid, None)
        fee = self._fees.pop(txid, None)
        if tx is None:
            return None
        self._bytes -= tx.size_bytes
        self._unindex(tx)
        if fee is not None:
            if len(self._fee_memory) >= _FEE_MEMORY_CAP:
                self._fee_memory.clear()
            self._fee_memory[txid] = fee
        return tx

    def remove_included(self, txs: Iterable[AnyTx]) -> int:
        """Drop transactions that made it into a block, plus any pool
        entries they conflict with (their inputs/nonce slots are gone)."""
        removed = 0
        for tx in txs:
            if self.remove(tx.txid) is not None:
                removed += 1
            for stale in self._conflicts_of(tx):
                self.remove(stale)
                self.total_dropped += 1
        return removed

    def readmit(self, txs: Iterable[AnyTx]) -> int:
        """Return orphaned transactions to the pool (Section IV-A:
        "orphaned transactions need to be included in a new block").
        The original fee survives via the remembered-fee map."""
        readmitted = 0
        for tx in txs:
            if getattr(tx, "is_coinbase", False):
                continue  # a coinbase only exists in its own block
            if self.add(tx):
                readmitted += 1
        return readmitted

    # -------------------------------------------------------------- selection

    def _fee_rate(self, txid: TxId) -> float:
        tx = self._txs[txid]
        return self._fees[txid] / max(tx.size_bytes, 1)

    def select_by_size(self, max_bytes: int) -> List[AnyTx]:
        """Greedy fee-rate-ordered selection under a byte cap (Bitcoin)."""
        chosen: List[AnyTx] = []
        used = 0
        for txid in sorted(self._txs, key=self._fee_rate, reverse=True):
            tx = self._txs[txid]
            if used + tx.size_bytes > max_bytes:
                continue
            chosen.append(tx)
            used += tx.size_bytes
        return chosen

    def select_by_gas(self, gas_limit: int) -> List[AccountTransaction]:
        """Greedy gas-price-ordered selection under a gas cap (Ethereum)."""
        account_txs = [
            tx for tx in self._txs.values() if isinstance(tx, AccountTransaction)
        ]
        chosen: List[AccountTransaction] = []
        used = 0
        for tx in sorted(account_txs, key=lambda t: t.gas_price, reverse=True):
            cost = intrinsic_gas(tx)
            if used + cost > gas_limit:
                continue
            chosen.append(tx)
            used += cost
        return chosen

    def evict(self, keep: int) -> int:
        """Drop the lowest-fee-rate transactions beyond ``keep`` entries."""
        if len(self._txs) <= keep:
            return 0
        ranked = sorted(self._txs, key=self._fee_rate, reverse=True)
        dropped = 0
        for txid in ranked[keep:]:
            self.remove(txid)
            dropped += 1
        self.total_dropped += dropped
        return dropped
