"""Ethereum's gas model (Section VI-A).

"Gas is the unit used to measure the fees required for a particular
computation"; the *gas limit* bounds the total gas of a block and — unlike
Bitcoin's byte limit — adapts to network conditions.  We implement the
intrinsic-gas rule for plain transactions and the miner-driven limit
adjustment (each block may move the limit by at most parent/1024, the
geth voting rule).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blockchain.transaction import AccountTransaction

#: Intrinsic gas of a plain value transfer.
TX_BASE_GAS = 21_000
#: Gas per non-zero byte of transaction data.
DATA_NONZERO_GAS = 68
#: Gas per zero byte of transaction data.
DATA_ZERO_GAS = 4
#: Largest relative step the gas limit may take per block: parent // 1024.
GAS_LIMIT_BOUND_DIVISOR = 1024
#: Gas limit never falls below this floor.
MIN_GAS_LIMIT = 5_000


def intrinsic_gas(tx: AccountTransaction) -> int:
    """Gas consumed before any execution: base cost plus data bytes."""
    zero_bytes = tx.data.count(0)
    nonzero_bytes = len(tx.data) - zero_bytes
    return TX_BASE_GAS + zero_bytes * DATA_ZERO_GAS + nonzero_bytes * DATA_NONZERO_GAS


def adjust_gas_limit(parent_limit: int, parent_gas_used: int, desired_limit: int) -> int:
    """Next block's gas limit under the miner-voting rule.

    Miners nudge the limit toward ``desired_limit`` but each step is
    clamped to ``parent_limit // 1024`` — this is the mechanism that makes
    Ethereum's capacity "dynamic and adapt to network conditions".
    ``parent_gas_used`` is accepted for signature parity with clients that
    target 1.5x parent usage when no explicit desire is configured.
    """
    if parent_limit < MIN_GAS_LIMIT:
        raise ValueError(f"parent gas limit {parent_limit} below protocol minimum")
    max_step = max(parent_limit // GAS_LIMIT_BOUND_DIVISOR, 1)
    if desired_limit > parent_limit:
        new_limit = min(desired_limit, parent_limit + max_step)
    else:
        new_limit = max(desired_limit, parent_limit - max_step)
    return max(new_limit, MIN_GAS_LIMIT)


@dataclass(frozen=True)
class GasPolicy:
    """A miner's stance on block capacity."""

    desired_gas_limit: int

    def next_limit(self, parent_limit: int, parent_gas_used: int) -> int:
        return adjust_gas_limit(parent_limit, parent_gas_used, self.desired_gas_limit)
