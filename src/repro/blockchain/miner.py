"""Mining — real and simulated.

:class:`Miner` grinds the actual partial-hash-inversion puzzle; usable at
test difficulties and for demonstrating the lottery itself (Section
III-A1).  :class:`SimulatedMiner` models the same process as a Poisson
arrival of block discoveries with rate proportional to the miner's hash
power share — the standard abstraction, and the one under which the
paper's own throughput arithmetic holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.rng import exponential
from repro.common.types import Address, Hash
from repro.crypto.pow import solve_pow
from repro.blockchain.block import AnyTransaction, Block, BlockHeader, assemble_block


@dataclass
class MiningStats:
    """Work performed and blocks won by one miner."""

    blocks_mined: int = 0
    hash_attempts: int = 0


class Miner:
    """A real PoW miner: builds a template and grinds nonces."""

    def __init__(self, coinbase_address: Address) -> None:
        self.coinbase_address = coinbase_address
        self.stats = MiningStats()

    def mine_block(
        self,
        parent: Optional[BlockHeader],
        transactions: Sequence[AnyTransaction],
        timestamp: float,
        target: int,
        state_root: Hash = Hash.zero(),
        receipts_root: Hash = Hash.zero(),
        max_attempts: Optional[int] = None,
    ) -> Optional[Block]:
        """Assemble a candidate and search for a winning nonce.

        Returns ``None`` when ``max_attempts`` runs out (lottery lost).
        """
        candidate = assemble_block(
            parent=parent,
            transactions=transactions,
            timestamp=timestamp,
            target=target,
            state_root=state_root,
            receipts_root=receipts_root,
            proposer=self.coinbase_address,
        )
        solution = solve_pow(
            candidate.header.pow_payload(), target, max_attempts=max_attempts
        )
        if solution is None:
            if max_attempts is not None:
                self.stats.hash_attempts += max_attempts
            return None
        self.stats.hash_attempts += solution.attempts
        self.stats.blocks_mined += 1
        return Block(
            header=candidate.header.with_nonce(solution.nonce),
            transactions=candidate.transactions,
        )


class SimulatedMiner:
    """Poisson-process mining for discrete-event experiments.

    A miner holding fraction ``p`` of the network hash power finds blocks
    at rate ``p / target_interval`` — the memoryless lottery of Section
    III-A1.  ``next_block_delay`` draws the time to this miner's next
    solve; restarting the draw whenever the chain head changes is valid
    because the exponential is memoryless.
    """

    def __init__(
        self,
        coinbase_address: Address,
        hashrate_share: float,
        target_interval_s: float,
        rng: random.Random,
    ) -> None:
        if not 0 < hashrate_share <= 1:
            raise ValueError(f"hashrate share must be in (0, 1], got {hashrate_share}")
        if target_interval_s <= 0:
            raise ValueError("target interval must be positive")
        self.coinbase_address = coinbase_address
        self.hashrate_share = hashrate_share
        self.target_interval_s = target_interval_s
        self._rng = rng
        self.stats = MiningStats()
        #: External hash-power factor (1.0 = the calibration point).
        #: Raising it models hardware joining the network (Section VI-A).
        self.hashrate_boost = 1.0
        #: Difficulty factor applied by retargeting: block rate divides
        #: by it, so doubling difficulty halves this miner's rate.
        self.difficulty_factor = 1.0

    @property
    def block_rate(self) -> float:
        """Expected blocks per second for this miner."""
        return (self.hashrate_share * self.hashrate_boost) / (
            self.target_interval_s * self.difficulty_factor
        )

    def next_block_delay(self) -> float:
        """Seconds until this miner's next block discovery."""
        return exponential(self._rng, self.block_rate)

    def make_block(
        self,
        parent: Optional[BlockHeader],
        transactions: Sequence[AnyTransaction],
        timestamp: float,
        target: int,
        state_root: Hash = Hash.zero(),
        receipts_root: Hash = Hash.zero(),
    ) -> Block:
        """Produce the discovered block (no real grinding; the Poisson
        draw already decided the discovery time).  A deterministic nonce
        derived from the RNG keeps block ids unique."""
        self.stats.blocks_mined += 1
        block = assemble_block(
            parent=parent,
            transactions=transactions,
            timestamp=timestamp,
            target=target,
            state_root=state_root,
            receipts_root=receipts_root,
            proposer=self.coinbase_address,
            nonce=self._rng.getrandbits(63),
        )
        return block


def mining_race(
    shares: Sequence[float],
    rounds: int,
    rng: random.Random,
    target_interval_s: float = 1.0,
) -> list:
    """Simulate ``rounds`` independent block lotteries among miners with
    the given hash-power ``shares``; returns per-miner win counts.

    The winner of each round is the miner whose exponential solve time is
    smallest — equivalently a weighted lottery, which is what the bench
    for E1 asserts (win rate ∝ hash power).
    """
    if abs(sum(shares) - 1.0) > 1e-9:
        raise ValueError("hashrate shares must sum to 1")
    wins = [0] * len(shares)
    for _ in range(rounds):
        times = [
            exponential(rng, share / target_interval_s) if share > 0 else float("inf")
            for share in shares
        ]
        wins[times.index(min(times))] += 1
    return wins
