"""Live difficulty retargeting for simulated mining networks.

Section VI-A: "the PoW puzzle difficulty is dynamic so that the block
generation time converges to a fixed value."  The analytic form is
checked by bench E1b; this module closes the loop *inside a running
network*: a retargeter periodically measures the realized block rate on
an observer chain and adjusts every miner's ``difficulty_factor`` the
way Bitcoin's epoch rule would, so hash-power shocks (miners joining or
leaving, modelled by ``hashrate_boost``) are absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.blockchain.node import BlockchainNode

#: Bitcoin clamps each adjustment step to 4x either way.
MAX_STEP = 4.0


@dataclass
class RetargetRecord:
    """One adjustment: when, what was measured, what was applied."""

    time_s: float
    measured_interval_s: float
    factor_applied: float
    difficulty_factor_after: float


class LiveRetargeter:
    """Epoch-style difficulty controller over a set of mining nodes."""

    def __init__(
        self,
        nodes: List[BlockchainNode],
        target_interval_s: float,
        check_every_s: float,
    ) -> None:
        if target_interval_s <= 0 or check_every_s <= 0:
            raise ValueError("intervals must be positive")
        self.nodes = nodes
        self.target_interval_s = target_interval_s
        self.check_every_s = check_every_s
        self.history: List[RetargetRecord] = []
        self._last_height = nodes[0].chain.height

    def start(self, simulator, until: float) -> None:
        simulator.schedule_periodic(
            self.check_every_s, lambda: self._retarget(simulator.now), until=until
        )

    def _retarget(self, now: float) -> None:
        observer = self.nodes[0].chain
        blocks = observer.height - self._last_height
        self._last_height = observer.height
        if blocks <= 0:
            return
        measured_interval = self.check_every_s / blocks
        # Blocks too fast ⇒ ratio < 1 ⇒ difficulty must rise by 1/ratio.
        ratio = measured_interval / self.target_interval_s
        ratio = min(max(ratio, 1.0 / MAX_STEP), MAX_STEP)
        factor = 1.0 / ratio
        for node in self.nodes:
            miner = node.miner
            if miner is None:
                continue
            miner.difficulty_factor *= factor
            node.refresh_mining()
        self.history.append(
            RetargetRecord(
                time_s=now,
                measured_interval_s=measured_interval,
                factor_applied=factor,
                difficulty_factor_after=(
                    self.nodes[0].miner.difficulty_factor
                    if self.nodes[0].miner
                    else 1.0
                ),
            )
        )

    def measured_intervals(self) -> List[float]:
        return [r.measured_interval_s for r in self.history]


def apply_hashrate_shock(nodes: List[BlockchainNode], boost: float) -> None:
    """Multiply every miner's hash power (new hardware joins/leaves)."""
    if boost <= 0:
        raise ValueError("boost must be positive")
    for node in nodes:
        miner = node.miner
        if miner is not None:
            miner.hashrate_boost *= boost
            node.refresh_mining()
