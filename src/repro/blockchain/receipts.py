"""Transaction receipts (Section II-A / V-A).

Ethereum stores receipts in their own Merkle structure per block; fast
sync "downloads the transaction receipts along the blocks" instead of
re-executing history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.encoding import encode_bool, encode_uint
from repro.common.types import Hash, TxId
from repro.crypto.hashing import sha256d
from repro.crypto.merkle import merkle_root


@dataclass(frozen=True)
class Receipt:
    """Execution outcome of one account transaction."""

    txid: TxId
    success: bool
    gas_used: int
    cumulative_gas: int

    def serialize(self) -> bytes:
        return (
            bytes(self.txid)
            + encode_bool(self.success)
            + encode_uint(self.gas_used, 8)
            + encode_uint(self.cumulative_gas, 8)
        )

    @property
    def size_bytes(self) -> int:
        return len(self.serialize())

    @property
    def receipt_hash(self) -> Hash:
        return sha256d(self.serialize())


def receipts_root(receipts: Sequence[Receipt]) -> Hash:
    """Merkle root committing to a block's receipts."""
    if not receipts:
        return Hash.zero()
    return merkle_root([r.receipt_hash for r in receipts])
