"""Block and transaction validation rules.

"The entries are checked for validity by all other nodes" (Section
III-A) — these are those checks.  Structural checks (PoW, Merkle root,
size caps) are separated from contextual checks (UTXO availability,
signatures, value conservation) so callers can validate headers first.
"""

from __future__ import annotations

from typing import List, Set

from repro.common.errors import (
    DoubleSpendError,
    InvalidProofOfWorkError,
    ValidationError,
)
from repro.crypto.keys import prewarm_signatures
from repro.blockchain.block import Block
from repro.blockchain.gas import intrinsic_gas
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import AccountTransaction, Transaction
from repro.blockchain.utxo import Outpoint, UTXOSet


def validate_block_structure(
    block: Block, params: ChainParams, check_pow: bool = True
) -> None:
    """Context-free checks: PoW, Merkle commitment, capacity caps."""
    if check_pow and params.consensus == "pow" and not block.is_genesis():
        if not block.header.check_proof_of_work():
            raise InvalidProofOfWorkError(
                f"block {block.block_id.short()} fails its proof of work"
            )
    if not block.merkle_root_matches():
        raise ValidationError(
            f"block {block.block_id.short()} Merkle root does not match its body"
        )
    if params.max_block_size_bytes is not None:
        if block.body_size_bytes > params.max_block_size_bytes:
            raise ValidationError(
                f"block {block.block_id.short()} body {block.body_size_bytes} B "
                f"exceeds cap {params.max_block_size_bytes} B"
            )
    if params.initial_gas_limit is not None:
        gas = sum(
            intrinsic_gas(tx)
            for tx in block.transactions
            if isinstance(tx, AccountTransaction)
        )
        if gas > params.initial_gas_limit:
            raise ValidationError(
                f"block {block.block_id.short()} uses {gas} gas, "
                f"over limit {params.initial_gas_limit}"
            )


def validate_transaction(tx: Transaction, utxo_set: UTXOSet) -> int:
    """Contextual UTXO-transaction checks; returns the implied fee."""
    if tx.is_coinbase:
        raise ValidationError("coinbase transactions are only valid inside a block")
    if not tx.verify_input_signatures():
        raise ValidationError(f"tx {tx.txid.short()} has an invalid signature")
    return utxo_set.fee(tx)  # raises on unknown inputs / value inflation


def validate_block_transactions(
    block: Block, utxo_set: UTXOSet, params: ChainParams
) -> int:
    """Contextual checks of a UTXO block body; returns total fees.

    Enforces: exactly one leading coinbase, no intra-block double spends,
    all inputs unspent, signatures valid, and coinbase value within
    subsidy + fees.  Does not mutate ``utxo_set``.
    """
    if not block.transactions:
        raise ValidationError("block has no transactions (missing coinbase)")
    coinbase = block.transactions[0]
    if not isinstance(coinbase, Transaction) or not coinbase.is_coinbase:
        raise ValidationError("first transaction must be the coinbase")

    if len(block.transactions) > 2:
        # Verify the block's signature burst in one batch pass; the
        # per-transaction checks below then hit the signature cache.
        prewarm_signatures(
            [
                item
                for tx in block.transactions[1:]
                if isinstance(tx, Transaction) and not tx.is_coinbase
                for item in tx.signature_items()
            ]
        )

    spent_in_block: Set[Outpoint] = set()
    created_in_block: dict = {}
    total_fees = 0
    for tx in block.transactions[1:]:
        if not isinstance(tx, Transaction):
            raise ValidationError("UTXO block contains a non-UTXO transaction")
        if tx.is_coinbase:
            raise ValidationError("only the first transaction may be a coinbase")
        if not tx.verify_input_signatures():
            raise ValidationError(f"tx {tx.txid.short()} has an invalid signature")
        input_value = 0
        for tx_input in tx.inputs:
            outpoint = tx_input.outpoint
            if outpoint in spent_in_block:
                raise DoubleSpendError(
                    f"outpoint {outpoint[0].short()}:{outpoint[1]} spent twice in block"
                )
            spent_in_block.add(outpoint)
            output = utxo_set.get(outpoint)
            if output is None:
                output = created_in_block.get(outpoint)
            if output is None:
                raise DoubleSpendError(
                    f"tx {tx.txid.short()} spends unavailable output "
                    f"{outpoint[0].short()}:{outpoint[1]}"
                )
            input_value += output.amount
        fee = input_value - tx.total_output()
        if fee < 0:
            raise ValidationError(f"tx {tx.txid.short()} outputs exceed inputs")
        total_fees += fee
        for index, output in enumerate(tx.outputs):
            created_in_block[(tx.txid, index)] = output

    max_coinbase = params.block_reward + total_fees
    if coinbase.total_output() > max_coinbase:
        raise ValidationError(
            f"coinbase pays {coinbase.total_output()}, max is {max_coinbase}"
        )
    return total_fees


def apply_block(
    block: Block, utxo_set: UTXOSet, params: ChainParams
) -> List["UndoRecord"]:
    """Validate then apply a UTXO block; returns undo records tip-ward.

    The undo list reverses the block during a reorg (Section IV-A).
    """
    validate_block_transactions(block, utxo_set, params)
    undos = []
    for tx in block.transactions:
        undos.append(utxo_set.apply_transaction(tx))
    return undos


def revert_block(undos: List["UndoRecord"], utxo_set: UTXOSet) -> None:
    """Reverse a previously applied block (reorg rollback path)."""
    for undo in reversed(undos):
        utxo_set.revert_transaction(undo)


# Re-export for type checkers without creating an import cycle at runtime.
from repro.blockchain.utxo import UndoRecord  # noqa: E402  (intentional tail import)
