"""Blockchain substrate: Bitcoin-style UTXO chains and Ethereum-style
account/gas chains, with PoW and PoS consensus (Sections II-A, III-A,
IV-A, V-A, VI-A of the paper).
"""

from repro.blockchain.block import (
    Block,
    BlockHeader,
    build_genesis_block,
    build_genesis_with_allocations,
)
from repro.blockchain.chain import ChainStore, ReorgResult
from repro.blockchain.finality import FinalityDriver
from repro.blockchain.mempool import Mempool
from repro.blockchain.miner import Miner, SimulatedMiner
from repro.blockchain.params import BITCOIN, ETHEREUM, ETHEREUM_POS, SEGWIT2X, ChainParams
from repro.blockchain.pos import FinalityGadget, Validator, ValidatorSet
from repro.blockchain.retarget import LiveRetargeter
from repro.blockchain.spv import SpvClient, make_payment_proof
from repro.blockchain.state import AccountState
from repro.blockchain.transaction import (
    AccountTransaction,
    Transaction,
    TxInput,
    TxOutput,
    make_coinbase,
)
from repro.blockchain.utxo import UTXOSet
from repro.blockchain.wallet import AccountWallet, UtxoWallet

__all__ = [
    "AccountState",
    "AccountTransaction",
    "AccountWallet",
    "BITCOIN",
    "Block",
    "BlockHeader",
    "ChainParams",
    "ChainStore",
    "ETHEREUM",
    "ETHEREUM_POS",
    "FinalityDriver",
    "FinalityGadget",
    "LiveRetargeter",
    "Mempool",
    "Miner",
    "ReorgResult",
    "SEGWIT2X",
    "SimulatedMiner",
    "SpvClient",
    "Transaction",
    "TxInput",
    "TxOutput",
    "UTXOSet",
    "UtxoWallet",
    "Validator",
    "ValidatorSet",
    "build_genesis_block",
    "build_genesis_with_allocations",
    "make_coinbase",
    "make_payment_proof",
]
