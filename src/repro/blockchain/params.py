"""Chain parameter presets for the paper's reference implementations.

The Section VI-A arithmetic — Bitcoin at 3–7 TPS from a 1 MB block every
~600 s, Ethereum at 7–15 TPS from a gas-limited block every ~15 s — is a
pure function of these presets; the benches recompute it from here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.common.units import MB


@dataclass(frozen=True)
class ChainParams:
    """Protocol constants of one blockchain deployment."""

    name: str
    #: Seconds between blocks the difficulty rule aims for.
    target_block_interval_s: float
    #: Byte cap on a block body (None for gas-limited chains).
    max_block_size_bytes: Optional[int]
    #: Gas cap on a block (None for byte-limited chains).
    initial_gas_limit: Optional[int]
    #: Tokens minted to the miner/proposer per block.
    block_reward: int
    #: Blocks per difficulty-retarget epoch (1 = per-block adjustment).
    retarget_interval_blocks: int
    #: Depth at which a block is conventionally considered confirmed
    #: (Section IV-A: six for Bitcoin, five to eleven for Ethereum).
    confirmation_depth: int
    #: Consensus family: "pow" or "pos".
    consensus: str = "pow"

    def __post_init__(self) -> None:
        if self.target_block_interval_s <= 0:
            raise ValueError("block interval must be positive")
        if (self.max_block_size_bytes is None) == (self.initial_gas_limit is None):
            raise ValueError("exactly one of byte cap / gas cap must be set")
        if self.consensus not in ("pow", "pos"):
            raise ValueError(f"unknown consensus family {self.consensus!r}")

    @property
    def uses_gas(self) -> bool:
        return self.initial_gas_limit is not None

    def max_tps(self, avg_tx_size_bytes: int = 250, avg_tx_gas: int = 21_000) -> float:
        """Protocol throughput ceiling implied by these parameters."""
        if self.max_block_size_bytes is not None:
            txs_per_block = self.max_block_size_bytes / avg_tx_size_bytes
        else:
            assert self.initial_gas_limit is not None
            txs_per_block = self.initial_gas_limit / avg_tx_gas
        return txs_per_block / self.target_block_interval_s

    def with_block_size(self, max_block_size_bytes: int) -> "ChainParams":
        """Variant with a different byte cap (the Segwit2x experiment)."""
        if self.max_block_size_bytes is None:
            raise ValueError(f"{self.name} is gas-limited, not byte-limited")
        return replace(
            self,
            name=f"{self.name}-{max_block_size_bytes // MB}MB",
            max_block_size_bytes=max_block_size_bytes,
        )


#: Bitcoin: 10-minute blocks, 1 MB cap, 6-confirmation convention.
BITCOIN = ChainParams(
    name="bitcoin",
    target_block_interval_s=600.0,
    max_block_size_bytes=1 * MB,
    initial_gas_limit=None,
    block_reward=12_5000_0000,  # 12.5 BTC in satoshi at the paper's date
    retarget_interval_blocks=2016,
    confirmation_depth=6,
    consensus="pow",
)

#: Segwit2x: Bitcoin with a 2 MB block cap (Section VI-A).
SEGWIT2X = BITCOIN.with_block_size(2 * MB)

#: Ethereum: ~15 s blocks, gas-limited, 5–11 confirmation convention
#: (we use the conservative end, 11).
ETHEREUM = ChainParams(
    name="ethereum",
    target_block_interval_s=15.0,
    max_block_size_bytes=None,
    initial_gas_limit=8_000_000,
    block_reward=3 * 10**18,  # 3 ether in wei at the paper's date
    retarget_interval_blocks=1,
    confirmation_depth=11,
    consensus="pow",
)

#: Ethereum after the announced PoS transition: ~4 s blocks (Section VI-A:
#: "the transition to PoS should decrease Ethereum's block generation time
#: to 4 seconds or lower").
ETHEREUM_POS = ChainParams(
    name="ethereum-pos",
    target_block_interval_s=4.0,
    max_block_size_bytes=None,
    initial_gas_limit=8_000_000,
    block_reward=3 * 10**18,
    retarget_interval_blocks=1,
    confirmation_depth=11,
    consensus="pos",
)
