"""Transactions for both blockchain reference implementations.

Bitcoin models value as *unspent transaction outputs* (UTXOs): a
transaction consumes previous outputs via signed inputs and creates new
outputs.  Ethereum models value as *account balances*: a transaction is a
signed (sender, nonce, recipient, value, gas) tuple.  The distinction
matters for Section V — Nano's argument that balances (not UTXOs) make
history discardable applies to account models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.encoding import Encoder, encode_uint
from repro.common.memo import cached
from repro.common.errors import ValidationError
from repro.common.types import Address, Hash, TxId
from repro.crypto.hashing import sha256d
from repro.crypto.keys import KeyPair, address_of, verify_signature

#: Output index marking a coinbase input (no previous output is spent).
COINBASE_INDEX = 0xFFFFFFFF


@dataclass(frozen=True)
class TxOutput:
    """A spendable value assigned to an address."""

    amount: int
    recipient: Address

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValidationError(f"negative output amount {self.amount}")

    @cached
    def _serialized(self) -> bytes:
        return Encoder.shared().uint(self.amount, 8).raw(bytes(self.recipient)).getvalue()

    def serialize(self) -> bytes:
        return self._serialized


@dataclass(frozen=True)
class TxInput:
    """A reference to a previous output plus spending authorization."""

    prev_txid: TxId
    prev_index: int
    public_key: bytes = b""
    signature: bytes = b""

    @property
    def outpoint(self) -> Tuple[TxId, int]:
        return (self.prev_txid, self.prev_index)

    @property
    def is_coinbase(self) -> bool:
        return self.prev_txid.is_zero() and self.prev_index == COINBASE_INDEX

    @cached
    def _serialized(self) -> bytes:
        return (
            Encoder.shared()
            .raw(bytes(self.prev_txid))
            .uint(self.prev_index, 4)
            .bytes(self.public_key)
            .bytes(self.signature)
            .getvalue()
        )

    def serialize(self) -> bytes:
        return self._serialized


@dataclass(frozen=True)
class Transaction:
    """A UTXO transaction (Bitcoin model)."""

    inputs: Tuple[TxInput, ...]
    outputs: Tuple[TxOutput, ...]
    #: Differentiates coinbases of different blocks/miners so their ids differ.
    nonce: int = 0

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValidationError("transaction must have at least one output")
        if not self.inputs:
            raise ValidationError("transaction must have at least one input")

    # ------------------------------------------------------------- identity
    #
    # Transactions are immutable, so canonical bytes and digest are
    # computed once and cached forever (never invalidated).

    @cached
    def _serialized(self) -> bytes:
        return (
            Encoder.shared()
            .uint(self.nonce, 8)
            .list([i.serialize() for i in self.inputs])
            .list([o.serialize() for o in self.outputs])
            .getvalue()
        )

    def serialize(self) -> bytes:
        return self._serialized

    @cached
    def txid(self) -> TxId:
        return sha256d(self._serialized)

    @property
    def size_bytes(self) -> int:
        return len(self._serialized)

    # ------------------------------------------------------------- semantics

    @cached
    def is_coinbase(self) -> bool:
        return len(self.inputs) == 1 and self.inputs[0].is_coinbase

    def total_output(self) -> int:
        return sum(o.amount for o in self.outputs)

    @cached
    def _sighash(self) -> Hash:
        body = (
            Encoder.shared()
            .list([bytes(i.prev_txid) + encode_uint(i.prev_index, 4)
                   for i in self.inputs])
            .list([o.serialize() for o in self.outputs])
            .getvalue()
        )
        return sha256d(body)

    def sighash(self) -> Hash:
        """Digest each input signs: outpoints + outputs (not signatures).

        Cached: every node revalidates the same immutable transaction, so
        the digest is computed once per object, not once per check."""
        return self._sighash

    def verify_input_signatures(self) -> bool:
        """Check every non-coinbase input's signature over the sighash."""
        digest = bytes(self._sighash)
        for tx_input in self.inputs:
            if tx_input.is_coinbase:
                continue
            if not verify_signature(tx_input.public_key, digest, tx_input.signature):
                return False
        return True

    def signature_items(self) -> List[tuple]:
        """Per-input triples for
        :func:`repro.crypto.keys.verify_signatures_batch` (coinbase inputs
        carry no signature and are skipped)."""
        digest = bytes(self._sighash)
        return [
            (tx_input.public_key, digest, tx_input.signature)
            for tx_input in self.inputs
            if not tx_input.is_coinbase
        ]


def make_coinbase(recipient: Address, amount: int, nonce: int = 0) -> Transaction:
    """The block-subsidy transaction that pays the miner (Section III-A1:
    "miners are granted tokens ... as an economic incentive")."""
    coinbase_input = TxInput(prev_txid=Hash.zero(), prev_index=COINBASE_INDEX)
    return Transaction(
        inputs=(coinbase_input,),
        outputs=(TxOutput(amount=amount, recipient=recipient),),
        nonce=nonce,
    )


def build_transaction(
    keypair: KeyPair,
    spendable: List[Tuple[TxId, int, int]],
    recipient: Address,
    amount: int,
    fee: int = 0,
) -> Transaction:
    """Assemble and sign a payment.

    ``spendable`` lists (txid, index, value) outputs owned by ``keypair``.
    Inputs are selected greedily; change (if any) returns to the sender.
    """
    if amount <= 0:
        raise ValidationError("payment amount must be positive")
    if fee < 0:
        raise ValidationError("fee must be non-negative")

    selected: List[Tuple[TxId, int, int]] = []
    gathered = 0
    for txid, index, value in spendable:
        selected.append((txid, index, value))
        gathered += value
        if gathered >= amount + fee:
            break
    if gathered < amount + fee:
        raise ValidationError(
            f"insufficient funds: have {gathered}, need {amount + fee}"
        )

    outputs: List[TxOutput] = [TxOutput(amount=amount, recipient=recipient)]
    change = gathered - amount - fee
    if change > 0:
        outputs.append(TxOutput(amount=change, recipient=keypair.address))

    unsigned_inputs = tuple(
        TxInput(prev_txid=txid, prev_index=index, public_key=keypair.public_key)
        for txid, index, _value in selected
    )
    unsigned = Transaction(inputs=unsigned_inputs, outputs=tuple(outputs))
    signature = keypair.sign(bytes(unsigned.sighash()))
    signed_inputs = tuple(
        TxInput(
            prev_txid=i.prev_txid,
            prev_index=i.prev_index,
            public_key=keypair.public_key,
            signature=signature,
        )
        for i in unsigned_inputs
    )
    signed = Transaction(inputs=signed_inputs, outputs=tuple(outputs))
    # The sighash covers outpoints + outputs only (never signatures), so
    # the unsigned sibling already computed the signed tx's digest.
    signed.__dict__["_sighash"] = unsigned._sighash
    return signed


# --------------------------------------------------------------------------
# Account model (Ethereum)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AccountTransaction:
    """An Ethereum-style account transaction.

    ``gas_limit``/``gas_price`` make block capacity a *computation* budget
    rather than a byte budget — the Section VI-A point that Ethereum block
    size "is not measured in bytes but rather in gas".
    """

    sender_public_key: bytes
    nonce: int
    recipient: Address
    value: int
    gas_limit: int
    gas_price: int
    data: bytes = b""
    signature: bytes = b""

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValidationError("value must be non-negative")
        if self.gas_limit <= 0:
            raise ValidationError("gas limit must be positive")
        if self.gas_price < 0:
            raise ValidationError("gas price must be non-negative")

    @property
    def sender(self) -> Address:
        return address_of(self.sender_public_key)

    @cached
    def _body_bytes(self) -> bytes:
        return (
            Encoder.shared()
            .bytes(self.sender_public_key)
            .uint(self.nonce, 8)
            .raw(bytes(self.recipient))
            .uint(self.value, 16)
            .uint(self.gas_limit, 8)
            .uint(self.gas_price, 8)
            .bytes(self.data)
            .getvalue()
        )

    def _body(self) -> bytes:
        return self._body_bytes

    @cached
    def _serialized(self) -> bytes:
        return Encoder.shared().raw(self._body_bytes).bytes(self.signature).getvalue()

    def serialize(self) -> bytes:
        return self._serialized

    @cached
    def txid(self) -> TxId:
        return sha256d(self._serialized)

    @property
    def size_bytes(self) -> int:
        return len(self._serialized)

    @cached
    def _sighash(self) -> Hash:
        return sha256d(self._body_bytes)

    def sighash(self) -> Hash:
        return self._sighash

    def verify_signature(self) -> bool:
        return verify_signature(
            self.sender_public_key, bytes(self.sighash()), self.signature
        )

    def signature_items(self) -> List[tuple]:
        """Triples for :func:`repro.crypto.keys.verify_signatures_batch`."""
        return [(self.sender_public_key, bytes(self._sighash), self.signature)]


def sign_account_transaction(
    keypair: KeyPair,
    nonce: int,
    recipient: Address,
    value: int,
    gas_limit: int = 21_000,
    gas_price: int = 1,
    data: bytes = b"",
) -> AccountTransaction:
    """Build a signed account transaction from ``keypair``."""
    unsigned = AccountTransaction(
        sender_public_key=keypair.public_key,
        nonce=nonce,
        recipient=recipient,
        value=value,
        gas_limit=gas_limit,
        gas_price=gas_price,
        data=data,
    )
    signature = keypair.sign(bytes(unsigned.sighash()))
    signed = AccountTransaction(
        sender_public_key=keypair.public_key,
        nonce=nonce,
        recipient=recipient,
        value=value,
        gas_limit=gas_limit,
        gas_price=gas_price,
        data=data,
        signature=signature,
    )
    # Body bytes and sighash exclude the signature, so the unsigned
    # sibling already computed both for the signed object.
    signed.__dict__["_body_bytes"] = unsigned._body_bytes
    signed.__dict__["_sighash"] = unsigned._sighash
    return signed
