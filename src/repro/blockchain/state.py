"""Ethereum-style account state backed by a Merkle-Patricia trie.

The trie's root hash is the header's ``state_root``; every transaction
execution produces a new root, and the old roots remain addressable — the
"deltas in the global state" that Section V-A says can be rolled back on
a soft fork or discarded by fast sync.

Contract accounts (Section VI-A: smart contracts make Ethereum "a
platform rather than only a cryptocurrency") carry code executed by
:mod:`repro.blockchain.vm` with upfront gas debiting and refund-on-halt,
and keep their persistent storage in the same authenticated trie, so the
state root commits to code, balances and storage alike.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.encoding import Decoder, encode_bytes, encode_uint
from repro.common.errors import InsufficientFundsError, ValidationError
from repro.common.types import ADDRESS_SIZE, Address, Hash
from repro.crypto.trie import MerklePatriciaTrie
from repro.blockchain.gas import intrinsic_gas
from repro.blockchain.receipts import Receipt
from repro.blockchain.transaction import AccountTransaction
from repro.blockchain import vm

# Trie key namespaces: one authenticated structure commits to everything.
_ACCOUNT_PREFIX = b"\x00"
_STORAGE_PREFIX = b"\x01"

#: Gas surcharge for deploying a contract, plus per-byte code cost.
CREATE_GAS = 32_000
CODE_DEPOSIT_GAS_PER_BYTE = 200


@dataclass(frozen=True)
class AccountRecord:
    """One account's ledger entry: balance, nonce, and contract code."""

    balance: int
    nonce: int
    code: bytes = b""

    @property
    def is_contract(self) -> bool:
        return bool(self.code)

    def serialize(self) -> bytes:
        return (
            encode_uint(self.balance, 16)
            + encode_uint(self.nonce, 8)
            + encode_bytes(self.code)
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "AccountRecord":
        d = Decoder(data)
        return cls(balance=d.read_uint(16), nonce=d.read_uint(8), code=d.read_bytes())


EMPTY_ACCOUNT = AccountRecord(balance=0, nonce=0)


def contract_address(creator: Address, nonce: int) -> Address:
    """Deterministic address of a contract deployed by (creator, nonce)."""
    digest = hashlib.sha256(
        b"repro-contract" + bytes(creator) + nonce.to_bytes(8, "big")
    ).digest()
    return Address(digest[:ADDRESS_SIZE])


class AccountState:
    """Mutable world state with checkpointable roots.

    All reads/writes go through the trie so ``root_hash`` always commits
    to the full state, and :meth:`rollback_to` restores any historical
    root in O(1) (persistent trie, see :mod:`repro.crypto.trie`).
    """

    def __init__(self) -> None:
        self._trie = MerklePatriciaTrie()

    # ---------------------------------------------------------------- access

    @property
    def root_hash(self) -> Hash:
        return self._trie.root_hash

    def account(self, address: Address) -> AccountRecord:
        raw = self._trie.get(_ACCOUNT_PREFIX + bytes(address))
        return AccountRecord.deserialize(raw) if raw is not None else EMPTY_ACCOUNT

    def balance(self, address: Address) -> int:
        return self.account(address).balance

    def nonce(self, address: Address) -> int:
        return self.account(address).nonce

    def code(self, address: Address) -> bytes:
        return self.account(address).code

    def storage(self, address: Address, slot: int) -> int:
        raw = self._trie.get(self._storage_key(address, slot))
        return int.from_bytes(raw, "big") if raw is not None else 0

    def accounts(self) -> Iterator[Tuple[Address, AccountRecord]]:
        for key, value in self._trie.items():
            if key[:1] == _ACCOUNT_PREFIX:
                yield Address(key[1:]), AccountRecord.deserialize(value)

    def total_supply(self) -> int:
        return sum(record.balance for _, record in self.accounts())

    # -------------------------------------------------------------- mutation

    def _write(self, address: Address, record: AccountRecord) -> None:
        self._trie.put(_ACCOUNT_PREFIX + bytes(address), record.serialize())

    @staticmethod
    def _storage_key(address: Address, slot: int) -> bytes:
        return _STORAGE_PREFIX + bytes(address) + slot.to_bytes(32, "big")

    def _write_storage(self, address: Address, slot: int, value: int) -> None:
        key = self._storage_key(address, slot)
        if value == 0:
            self._trie.delete(key)
        else:
            self._trie.put(key, value.to_bytes(32, "big"))

    def credit(self, address: Address, amount: int) -> None:
        """Mint/transfer-in value (genesis allocation, block rewards)."""
        if amount < 0:
            raise ValidationError("credit amount must be non-negative")
        record = self.account(address)
        self._write(
            address, AccountRecord(record.balance + amount, record.nonce, record.code)
        )

    # ------------------------------------------------------------- execution

    def apply_transaction(self, tx: AccountTransaction, miner: Address) -> Receipt:
        """Execute a transaction with Ethereum-style gas accounting.

        Upfront the sender is debited ``value + gas_limit * gas_price``;
        unused gas is refunded on completion.  Plain transfers consume
        the intrinsic gas; transactions to ``Address.zero()`` with data
        deploy a contract; transactions to a contract account run its
        code.  A failed execution (revert / out of gas) produces a
        ``success=False`` receipt: the value transfer and storage writes
        are undone, the nonce still advances, and the miner keeps the
        fee for the gas actually burned.

        Raises on structurally invalid transactions (bad signature,
        wrong nonce, underfunded, gas limit below intrinsic) — those
        make the *block* invalid rather than producing a receipt.
        """
        if not tx.verify_signature():
            raise ValidationError(f"tx {tx.txid.short()} has an invalid signature")
        sender = tx.sender
        record = self.account(sender)
        if tx.nonce != record.nonce:
            raise ValidationError(
                f"tx {tx.txid.short()} nonce {tx.nonce} != account nonce {record.nonce}"
            )
        base_gas = intrinsic_gas(tx)
        if tx.gas_limit < base_gas:
            raise ValidationError(
                f"tx {tx.txid.short()} gas limit {tx.gas_limit} below intrinsic {base_gas}"
            )
        max_cost = tx.value + tx.gas_limit * tx.gas_price
        if record.balance < max_cost:
            raise InsufficientFundsError(
                f"{sender.short()} has {record.balance}, tx may cost {max_cost}"
            )

        # Upfront debit: value + full gas allowance; nonce advances now.
        self._write(
            sender,
            AccountRecord(record.balance - max_cost, record.nonce + 1, record.code),
        )

        is_create = tx.recipient == Address.zero() and bool(tx.data)
        recipient_record = self.account(tx.recipient)
        if is_create:
            gas_used, success = self._execute_create(tx, base_gas)
        elif recipient_record.is_contract:
            gas_used, success = self._execute_call(tx, recipient_record, base_gas)
        else:
            self.credit(tx.recipient, tx.value)
            gas_used, success = base_gas, True

        # Refund unused gas; pay the miner for gas burned.
        refund = (tx.gas_limit - gas_used) * tx.gas_price
        if not success:
            refund += tx.value  # failed executions do not move value
        if refund:
            self.credit(sender, refund)
        fee = gas_used * tx.gas_price
        if fee:
            self.credit(miner, fee)
        return Receipt(txid=tx.txid, success=success, gas_used=gas_used, cumulative_gas=0)

    def _execute_create(self, tx: AccountTransaction, base_gas: int) -> Tuple[int, bool]:
        """Deploy ``tx.data`` as contract code."""
        deploy_gas = CREATE_GAS + len(tx.data) * CODE_DEPOSIT_GAS_PER_BYTE
        gas_used = base_gas + deploy_gas
        if gas_used > tx.gas_limit:
            return tx.gas_limit, False  # out of gas: all gas burned
        new_address = contract_address(tx.sender, tx.nonce)
        existing = self.account(new_address)
        if existing.is_contract:
            return gas_used, False  # address collision (same creator+nonce)
        self._write(
            new_address,
            AccountRecord(existing.balance + tx.value, 0, tx.data),
        )
        return gas_used, True

    def _execute_call(
        self, tx: AccountTransaction, contract: AccountRecord, base_gas: int
    ) -> Tuple[int, bool]:
        """Run a contract account's code."""
        target = tx.recipient
        context = vm.ExecutionContext(
            caller=int.from_bytes(bytes(tx.sender), "big"),
            call_value=tx.value,
            call_args=_decode_call_args(tx.data),
            storage_read=lambda slot: self.storage(target, slot),
            balance_read=lambda addr_word: self.balance(
                Address(addr_word.to_bytes(32, "big")[-ADDRESS_SIZE:])
            ),
        )
        result = vm.execute(contract.code, tx.gas_limit - base_gas, context)
        gas_used = base_gas + result.gas_used
        if not result.success:
            return min(gas_used, tx.gas_limit), False
        # Value transfer and storage writes land only on success.
        self.credit(target, tx.value)
        for slot, value in result.storage_writes.items():
            self._write_storage(target, slot, value)
        return gas_used, True

    def apply_block_transactions(
        self, txs: List[AccountTransaction], miner: Address, block_reward: int
    ) -> Tuple[List[Receipt], int]:
        """Execute a block body; returns (receipts, total gas used).

        The miner's reward is credited after all transactions, matching
        the coinbase-last convention.
        """
        if len(txs) > 1:
            from repro.crypto.keys import prewarm_signatures

            prewarm_signatures(
                [item for tx in txs for item in tx.signature_items()]
            )
        receipts: List[Receipt] = []
        cumulative = 0
        for tx in txs:
            receipt = self.apply_transaction(tx, miner)
            cumulative += receipt.gas_used
            receipts.append(
                Receipt(
                    txid=receipt.txid,
                    success=receipt.success,
                    gas_used=receipt.gas_used,
                    cumulative_gas=cumulative,
                )
            )
        if block_reward:
            self.credit(miner, block_reward)
        return receipts, cumulative

    # --------------------------------------------------------------- history

    def rollback_to(self, root: Hash) -> None:
        """Restore the state committed by ``root`` (reorg path)."""
        self._trie.set_root(root)

    def checkpoint(self) -> Hash:
        """Alias of ``root_hash`` that reads as intent at call sites."""
        return self.root_hash

    # ------------------------------------------------------------ accounting

    def trie_node_count(self) -> int:
        return self._trie.node_count()

    def store_size_bytes(self) -> int:
        """Bytes of *all* state versions — what fast sync prunes."""
        return self._trie.store_size_bytes()

    def live_size_bytes(self) -> int:
        """Bytes reachable from the current root only."""
        reachable = self._trie.reachable_nodes(self._trie.root_hash)
        return sum(
            len(self._trie._nodes[h].encode()) for h in reachable  # noqa: SLF001
        )

    def prune_history(self, keep_roots: Optional[List[Hash]] = None) -> int:
        """Discard state deltas not reachable from ``keep_roots`` (defaults
        to the current root).  Returns bytes freed — the fast-sync payoff."""
        roots = keep_roots if keep_roots is not None else [self.root_hash]
        return self._trie.prune(roots)


def _decode_call_args(data: bytes) -> Tuple[int, ...]:
    """Call data is a sequence of 32-byte big-endian words."""
    words = []
    for i in range(0, len(data) - len(data) % 32, 32):
        words.append(int.from_bytes(data[i : i + 32], "big"))
    return tuple(words)


def encode_call_args(*args: int) -> bytes:
    """Pack integers as contract call data (32-byte words)."""
    return b"".join((a & vm.WORD_MASK).to_bytes(32, "big") for a in args)
