"""Finality driver: Casper-FFG checkpoints cementing a live chain.

Section IV-A: Ethereum's announced "proof of stake based finality system
that is supposed to introduce non-reversible checkpoints, guaranteeing
block inclusion."  :class:`FinalityDriver` runs that loop over a network
of :class:`~repro.blockchain.node.BlockchainNode` replicas: every
``epoch_length`` blocks the validator set votes a (source → target)
checkpoint link; once a checkpoint is finalized, every replica cements
the chain up to it, after which no reorg can cross it (enforced by
:meth:`repro.blockchain.chain.ChainStore.cement`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ReproError

from repro.blockchain.chain import ChainStore
from repro.blockchain.node import BlockchainNode
from repro.blockchain.pos import Checkpoint, FinalityGadget, FinalityVote, ValidatorSet


@dataclass
class FinalityStats:
    epochs_processed: int = 0
    checkpoints_finalized: int = 0
    blocks_cemented: int = 0


class FinalityDriver:
    """Coordinates checkpoint voting and cementing across replicas.

    The driver plays the role of the validators' vote transport (in a
    real deployment votes travel in blocks); honesty is parameterized so
    tests can model abstaining validators.
    """

    def __init__(
        self,
        nodes: List[BlockchainNode],
        validators: ValidatorSet,
        epoch_length: int,
        participation: float = 1.0,
    ) -> None:
        if epoch_length < 1:
            raise ValueError("epoch length must be positive")
        if not 0.0 <= participation <= 1.0:
            raise ValueError("participation must be in [0, 1]")
        self.nodes = nodes
        self.validators = validators
        self.epoch_length = epoch_length
        self.participation = participation
        genesis = nodes[0].chain.genesis
        self.gadget = FinalityGadget(
            validators, Checkpoint(block_id=genesis.block_id, epoch=0)
        )
        self._last_justified = Checkpoint(block_id=genesis.block_id, epoch=0)
        self.stats = FinalityStats()

    # ----------------------------------------------------------------- steps

    def checkpoint_for_epoch(self, chain: ChainStore, epoch: int) -> Optional[Checkpoint]:
        """The epoch-boundary block on a replica's main chain."""
        height = epoch * self.epoch_length
        if height > chain.height:
            return None
        return Checkpoint(block_id=chain.block_at_height(height).block_id, epoch=epoch)

    def run_epoch(self, epoch: int) -> bool:
        """Vote the link (last justified → this epoch's checkpoint).

        Returns True when the vote finalized a checkpoint and cementing
        advanced.  Validators vote for the checkpoint on the *first*
        node's view — a simplification standing in for the fork-choice
        agreement honest validators reach before voting.
        """
        observer = self.nodes[0].chain
        target = self.checkpoint_for_epoch(observer, epoch)
        if target is None or target.epoch <= self._last_justified.epoch:
            return False
        self.stats.epochs_processed += 1

        active = self.validators.active_validators()
        voting = active[: max(1, int(len(active) * self.participation))]
        if self.participation >= 1.0:
            voting = active
        finalized_before = self.gadget.last_finalized
        for validator in voting:
            vote = FinalityVote(
                validator=validator.address,
                source=self._last_justified,
                target=target,
            )
            try:
                self.gadget.cast_vote(vote)
            except ReproError:
                continue
        if self.gadget.is_justified(target):
            self._last_justified = target
        newly_finalized = self.gadget.last_finalized
        if newly_finalized != finalized_before:
            self.stats.checkpoints_finalized += 1
            self._cement(newly_finalized)
            return True
        return False

    def _cement(self, checkpoint: Checkpoint) -> None:
        height = checkpoint.epoch * self.epoch_length
        for node in self.nodes:
            if node.chain.height >= height:
                before = node.chain.cemented_height
                node.chain.cement(height)
                self.stats.blocks_cemented += max(
                    0, node.chain.cemented_height - max(before, 0)
                )

    def run_available_epochs(self) -> int:
        """Process every epoch the chain has grown past; returns the
        number of newly finalized checkpoints."""
        finalized = 0
        epoch = self._last_justified.epoch + 1
        while True:
            target = self.checkpoint_for_epoch(self.nodes[0].chain, epoch)
            if target is None:
                break
            if self.run_epoch(epoch):
                finalized += 1
            epoch += 1
        return finalized

    @property
    def finalized_height(self) -> int:
        return self.gadget.last_finalized.epoch * self.epoch_length
