"""Difficulty adjustment (Section VI-A).

"The PoW puzzle difficulty is dynamic so that the block generation time
converges to a fixed value" — adding hash power does not add throughput.
Two retarget styles are implemented:

* Bitcoin: every ``retarget_interval`` blocks, scale the target by the
  ratio of actual to expected epoch duration, clamped to 4x per step.
* Ethereum: every block nudges difficulty up/down by parent/2048 depending
  on whether the parent interval beat the target.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.pow import MAX_TARGET

#: Bitcoin clamps each retarget step to a factor of 4 either way.
BITCOIN_MAX_ADJUSTMENT = 4.0
#: Ethereum's per-block adjustment quantum: parent_difficulty // 2048.
ETHEREUM_ADJUSTMENT_DIVISOR = 2048


def bitcoin_retarget(
    current_target: int,
    epoch_duration_s: float,
    expected_duration_s: float,
    max_adjustment: float = BITCOIN_MAX_ADJUSTMENT,
) -> int:
    """New target after one Bitcoin retarget epoch.

    Blocks came too fast (epoch shorter than expected) ⇒ target shrinks
    ⇒ difficulty rises.
    """
    if current_target <= 0:
        raise ValueError("target must be positive")
    if expected_duration_s <= 0:
        raise ValueError("expected duration must be positive")
    ratio = epoch_duration_s / expected_duration_s
    ratio = min(max(ratio, 1.0 / max_adjustment), max_adjustment)
    # Fixed-point multiply: targets are 256-bit, so float multiplication
    # would corrupt the low bits.
    scaled = round(ratio * 2**32)
    return max(1, min(MAX_TARGET, current_target * scaled >> 32))


def ethereum_adjust(
    parent_target: int,
    parent_interval_s: float,
    target_interval_s: float,
) -> int:
    """Per-block Ethereum-style adjustment.

    If the parent arrived faster than the target interval, difficulty
    increases (target decreases) by one quantum, and vice versa.
    """
    if parent_target <= 0:
        raise ValueError("target must be positive")
    quantum = max(parent_target // ETHEREUM_ADJUSTMENT_DIVISOR, 1)
    if parent_interval_s < target_interval_s:
        new_target = parent_target - quantum
    elif parent_interval_s > target_interval_s:
        new_target = parent_target + quantum
    else:
        new_target = parent_target
    return max(1, min(MAX_TARGET, new_target))


def epoch_duration(timestamps: Sequence[float]) -> float:
    """Duration spanned by an epoch's block timestamps."""
    if len(timestamps) < 2:
        raise ValueError("need at least two timestamps")
    return timestamps[-1] - timestamps[0]


def simulated_difficulty_for_interval(
    network_hashrate: float, target_interval_s: float
) -> float:
    """Difficulty that yields one block per ``target_interval_s`` given a
    total network hash rate (hashes/second) — the planning arithmetic the
    Poisson mining model uses."""
    if network_hashrate <= 0 or target_interval_s <= 0:
        raise ValueError("hashrate and interval must be positive")
    return network_hashrate * target_interval_s
