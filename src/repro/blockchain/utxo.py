"""The UTXO set — Bitcoin's materialized ledger state.

Applying a block consumes inputs and creates outputs; each application
returns an :class:`UndoRecord` so the set can be rolled back when a soft
fork orphans the block (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DoubleSpendError, ValidationError
from repro.common.types import Address, TxId
from repro.blockchain.transaction import Transaction, TxOutput

Outpoint = Tuple[TxId, int]


@dataclass
class UndoRecord:
    """Everything needed to reverse one transaction's effect."""

    txid: TxId
    spent: List[Tuple[Outpoint, TxOutput]] = field(default_factory=list)
    created: List[Outpoint] = field(default_factory=list)


class UTXOSet:
    """Mapping of unspent outpoints to their outputs, with an address index."""

    def __init__(self) -> None:
        self._utxos: Dict[Outpoint, TxOutput] = {}
        self._by_address: Dict[Address, Dict[Outpoint, int]] = {}

    # ---------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._utxos)

    def __contains__(self, outpoint: Outpoint) -> bool:
        return outpoint in self._utxos

    def get(self, outpoint: Outpoint) -> Optional[TxOutput]:
        return self._utxos.get(outpoint)

    def balance(self, address: Address) -> int:
        """Sum of unspent output values held by ``address``."""
        return sum(self._by_address.get(address, {}).values())

    def spendable(self, address: Address) -> List[Tuple[TxId, int, int]]:
        """(txid, index, value) triples spendable by ``address``."""
        entries = self._by_address.get(address, {})
        return [(txid, index, value) for (txid, index), value in sorted(entries.items())]

    def total_value(self) -> int:
        return sum(o.amount for o in self._utxos.values())

    # -------------------------------------------------------------- mutation

    def _add(self, outpoint: Outpoint, output: TxOutput) -> None:
        self._utxos[outpoint] = output
        self._by_address.setdefault(output.recipient, {})[outpoint] = output.amount

    def _remove(self, outpoint: Outpoint) -> TxOutput:
        output = self._utxos.pop(outpoint)
        per_address = self._by_address[output.recipient]
        del per_address[outpoint]
        if not per_address:
            del self._by_address[output.recipient]
        return output

    def apply_transaction(self, tx: Transaction) -> UndoRecord:
        """Spend the inputs and create the outputs of ``tx``.

        Raises :class:`DoubleSpendError` if an input is already spent or
        unknown; the set is left unchanged on failure.
        """
        undo = UndoRecord(txid=tx.txid)
        if not tx.is_coinbase:
            seen: set = set()
            for tx_input in tx.inputs:
                outpoint = tx_input.outpoint
                if outpoint in seen:
                    raise DoubleSpendError(
                        f"tx {tx.txid.short()} spends {outpoint[0].short()}:{outpoint[1]} twice"
                    )
                seen.add(outpoint)
                if outpoint not in self._utxos:
                    raise DoubleSpendError(
                        f"tx {tx.txid.short()} spends missing/spent output "
                        f"{outpoint[0].short()}:{outpoint[1]}"
                    )
        try:
            if not tx.is_coinbase:
                for tx_input in tx.inputs:
                    output = self._remove(tx_input.outpoint)
                    undo.spent.append((tx_input.outpoint, output))
            for index, output in enumerate(tx.outputs):
                outpoint = (tx.txid, index)
                self._add(outpoint, output)
                undo.created.append(outpoint)
        except Exception:
            self.revert_transaction(undo)
            raise
        return undo

    def revert_transaction(self, undo: UndoRecord) -> None:
        """Reverse a previously applied transaction (reorg path)."""
        for outpoint in reversed(undo.created):
            if outpoint in self._utxos:
                self._remove(outpoint)
        for outpoint, output in reversed(undo.spent):
            self._add(outpoint, output)

    def snapshot(self) -> "UTXOSet":
        """Independent copy of the set (checkpoint state-sync payload).

        Outpoints and outputs are immutable, so a shallow copy of the
        maps is a full logical copy.
        """
        clone = UTXOSet()
        clone._utxos = dict(self._utxos)
        clone._by_address = {
            address: dict(entries) for address, entries in self._by_address.items()
        }
        return clone

    def serialized_size_bytes(self) -> int:
        """Wire-size estimate of a snapshot: 36 bytes per outpoint
        (txid + index) plus 40 per output (amount + address)."""
        return len(self._utxos) * 76

    # ------------------------------------------------------------ valuation

    def input_value(self, tx: Transaction) -> int:
        """Total value the inputs of ``tx`` would consume."""
        if tx.is_coinbase:
            return 0
        total = 0
        for tx_input in tx.inputs:
            output = self._utxos.get(tx_input.outpoint)
            if output is None:
                raise ValidationError(
                    f"unknown input {tx_input.prev_txid.short()}:{tx_input.prev_index}"
                )
            total += output.amount
        return total

    def fee(self, tx: Transaction) -> int:
        """Implicit miner fee: inputs minus outputs."""
        if tx.is_coinbase:
            return 0
        fee = self.input_value(tx) - tx.total_output()
        if fee < 0:
            raise ValidationError(f"tx {tx.txid.short()} creates value out of thin air")
        return fee
