"""A gas-metered stack virtual machine for smart contracts.

Section VI-A: "Ethereum has a significant benefit compared to Bitcoin
since it supports *smart contracts*, which expands its potential to
become a platform rather than only a cryptocurrency" — and gas exists
precisely "to measure the fees required for a particular computation".
This module makes that computation real: a small stack machine with
per-opcode gas costs, persistent contract storage, value transfer, halts
(`STOP`/`RETURN`), reverts, and out-of-gas exhaustion.  It is the
execution engine behind contract accounts in
:class:`repro.blockchain.state.AccountState`.

The instruction set is a compact subset of the EVM's shape (stack of
256-bit words, storage as word → word) — enough to express counters,
token ledgers, deposit contracts and the like in tests and benches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError

WORD_MASK = 2**256 - 1
MAX_STACK = 1024


class VmError(ReproError):
    """Execution failure: bad opcode, stack violation, explicit revert."""


class OutOfGasError(VmError):
    """The gas budget ran out mid-execution."""


class Op(enum.IntEnum):
    """Opcodes.  ``PUSH`` reads the next 8 bytes of code as an operand."""

    STOP = 0x00
    PUSH = 0x01
    POP = 0x02
    DUP = 0x03
    SWAP = 0x04
    ADD = 0x10
    SUB = 0x11
    MUL = 0x12
    DIV = 0x13
    MOD = 0x14
    LT = 0x20
    GT = 0x21
    EQ = 0x22
    ISZERO = 0x23
    NOT = 0x24
    JUMP = 0x30
    JUMPI = 0x31
    SLOAD = 0x40
    SSTORE = 0x41
    CALLER = 0x50
    CALLVALUE = 0x51
    BALANCE = 0x52
    ARG = 0x53  # push call-data word by index
    RETURN = 0x60
    REVERT = 0x61


#: Gas cost per opcode.  SSTORE is deliberately the expensive one, as in
#: the real schedule (state growth is what gas must price).
GAS_COSTS: Dict[Op, int] = {
    Op.STOP: 0,
    Op.PUSH: 3,
    Op.POP: 2,
    Op.DUP: 3,
    Op.SWAP: 3,
    Op.ADD: 3,
    Op.SUB: 3,
    Op.MUL: 5,
    Op.DIV: 5,
    Op.MOD: 5,
    Op.LT: 3,
    Op.GT: 3,
    Op.EQ: 3,
    Op.ISZERO: 3,
    Op.NOT: 3,
    Op.JUMP: 8,
    Op.JUMPI: 10,
    Op.SLOAD: 200,
    Op.SSTORE: 5_000,
    Op.CALLER: 2,
    Op.CALLVALUE: 2,
    Op.BALANCE: 400,
    Op.ARG: 3,
    Op.RETURN: 0,
    Op.REVERT: 0,
}


@dataclass
class ExecutionContext:
    """Everything a contract can see about its invocation."""

    caller: int  # caller address as an integer word
    call_value: int
    call_args: Tuple[int, ...] = ()
    #: Read a word from contract storage.
    storage_read: Callable[[int], int] = lambda slot: 0
    #: Read an address's balance (BALANCE opcode).
    balance_read: Callable[[int], int] = lambda addr: 0


@dataclass
class ExecutionResult:
    """Outcome of one contract run."""

    success: bool
    gas_used: int
    return_value: Optional[int] = None
    #: slot -> word, applied by the caller only on success.
    storage_writes: Dict[int, int] = field(default_factory=dict)
    error: Optional[str] = None


def assemble(*instructions) -> bytes:
    """Tiny assembler: ``assemble(Op.PUSH, 2, Op.PUSH, 3, Op.ADD, Op.RETURN)``.

    Integers following a ``PUSH`` become its 8-byte immediate operand.
    """
    out = bytearray()
    i = 0
    items = list(instructions)
    while i < len(items):
        item = items[i]
        if not isinstance(item, Op):
            raise VmError(f"expected opcode at position {i}, got {item!r}")
        out.append(int(item))
        if item == Op.PUSH:
            i += 1
            if i >= len(items) or isinstance(items[i], Op):
                raise VmError("PUSH requires an immediate operand")
            operand = int(items[i])
            out.extend((operand & WORD_MASK).to_bytes(32, "big")[-8:])
        i += 1
    return bytes(out)


def execute(code: bytes, gas_limit: int, context: ExecutionContext) -> ExecutionResult:
    """Run ``code`` until halt, revert, error, or gas exhaustion.

    Storage writes are buffered and returned; the state layer applies
    them only when ``success`` is True, so a revert or error leaves the
    contract's persistent state untouched.
    """
    stack: List[int] = []
    writes: Dict[int, int] = {}
    gas_used = 0
    pc = 0

    def pop(n: int = 1) -> List[int]:
        if len(stack) < n:
            raise VmError(f"stack underflow at pc={pc}")
        values = [stack.pop() for _ in range(n)]
        return values

    def push(value: int) -> None:
        if len(stack) >= MAX_STACK:
            raise VmError("stack overflow")
        stack.append(value & WORD_MASK)

    try:
        while pc < len(code):
            try:
                op = Op(code[pc])
            except ValueError:
                raise VmError(f"invalid opcode 0x{code[pc]:02x} at pc={pc}") from None
            gas_used += GAS_COSTS[op]
            if gas_used > gas_limit:
                raise OutOfGasError(
                    f"out of gas at pc={pc}: used {gas_used} > limit {gas_limit}"
                )

            if op == Op.STOP:
                return ExecutionResult(True, gas_used, None, writes)
            if op == Op.PUSH:
                if pc + 8 >= len(code) + 1:
                    raise VmError("truncated PUSH operand")
                push(int.from_bytes(code[pc + 1 : pc + 9], "big"))
                pc += 9
                continue
            if op == Op.POP:
                pop()
            elif op == Op.DUP:
                (top,) = pop()
                push(top)
                push(top)
            elif op == Op.SWAP:
                a, b = pop(2)
                push(a)
                push(b)
            elif op == Op.ADD:
                a, b = pop(2)
                push(a + b)
            elif op == Op.SUB:
                a, b = pop(2)
                push(a - b)
            elif op == Op.MUL:
                a, b = pop(2)
                push(a * b)
            elif op == Op.DIV:
                a, b = pop(2)
                push(0 if b == 0 else a // b)
            elif op == Op.MOD:
                a, b = pop(2)
                push(0 if b == 0 else a % b)
            elif op == Op.LT:
                a, b = pop(2)
                push(1 if a < b else 0)
            elif op == Op.GT:
                a, b = pop(2)
                push(1 if a > b else 0)
            elif op == Op.EQ:
                a, b = pop(2)
                push(1 if a == b else 0)
            elif op == Op.ISZERO:
                (a,) = pop()
                push(1 if a == 0 else 0)
            elif op == Op.NOT:
                (a,) = pop()
                push(~a)
            elif op == Op.JUMP:
                (dest,) = pop()
                if dest >= len(code):
                    raise VmError(f"jump out of bounds: {dest}")
                pc = dest
                continue
            elif op == Op.JUMPI:
                dest, condition = pop(2)
                if condition:
                    if dest >= len(code):
                        raise VmError(f"jump out of bounds: {dest}")
                    pc = dest
                    continue
            elif op == Op.SLOAD:
                (slot,) = pop()
                if slot in writes:
                    push(writes[slot])
                else:
                    push(context.storage_read(slot) & WORD_MASK)
            elif op == Op.SSTORE:
                slot, value = pop(2)
                writes[slot] = value
            elif op == Op.CALLER:
                push(context.caller)
            elif op == Op.CALLVALUE:
                push(context.call_value)
            elif op == Op.BALANCE:
                (addr,) = pop()
                push(context.balance_read(addr))
            elif op == Op.ARG:
                (index,) = pop()
                args = context.call_args
                push(args[index] if index < len(args) else 0)
            elif op == Op.RETURN:
                (value,) = pop()
                return ExecutionResult(True, gas_used, value, writes)
            elif op == Op.REVERT:
                return ExecutionResult(
                    False, gas_used, None, {}, error="explicit revert"
                )
            pc += 1
        # Falling off the end halts successfully, like STOP.
        return ExecutionResult(True, gas_used, None, writes)
    except OutOfGasError as exc:
        # All gas is consumed; writes are discarded.
        return ExecutionResult(False, gas_limit, None, {}, error=str(exc))
    except VmError as exc:
        return ExecutionResult(False, gas_used, None, {}, error=str(exc))


# ---------------------------------------------------------------- programs

def counter_contract() -> bytes:
    """Storage slot 0 is a counter; every call adds the first call arg
    (default 0) plus 1, and returns the new value."""
    return assemble(
        Op.PUSH, 0, Op.SLOAD,          # [count]
        Op.PUSH, 0, Op.ARG,            # [count, arg0]
        Op.ADD,                        # [count+arg0]
        Op.PUSH, 1, Op.ADD,            # [v = count+arg0+1]
        Op.DUP,                        # [v, v]
        Op.PUSH, 0, Op.SSTORE,         # SSTORE pops slot(=0), value(=v)
        Op.RETURN,
    )


def vault_contract() -> bytes:
    """Accepts deposits; records total received in slot 0.  Reverts if
    called with zero value (a guard clause exercising JUMPI/REVERT)."""
    # layout:
    #  0: CALLVALUE ISZERO PUSH <revert_pc> JUMPI  (if value==0 -> revert)
    #  then: slot0 += CALLVALUE; RETURN slot0
    # JUMPI pops (dest, condition) with dest on top, so the stack below
    # must be [condition, dest]; SSTORE pops (slot, value) likewise.
    body = assemble(
        Op.CALLVALUE, Op.ISZERO,  # [value==0]
        Op.PUSH, 0,               # [cond, revert_pc] (patched below)
        Op.JUMPI,
        Op.PUSH, 0, Op.SLOAD,
        Op.CALLVALUE, Op.ADD,     # [total]
        Op.DUP,                   # [total, total]
        Op.PUSH, 0, Op.SSTORE,    # slot0 = total
        Op.RETURN,
    )
    revert_pc = len(body)
    patched = bytearray(body)
    # The PUSH immediate sits at bytes 3..10 (opcode CALLVALUE, ISZERO,
    # PUSH at index 2, operand at 3..10).
    patched[3:11] = revert_pc.to_bytes(8, "big")
    return bytes(patched) + assemble(Op.REVERT)
