"""Chain store: block storage, fork choice, and reorganizations.

This is where the paper's Section IV-A behaviour lives.  Blocks form a
tree; the *main chain* is the branch of greatest cumulative work ("the
longer chain is adopted").  When a new block makes a side branch heavier,
:meth:`ChainStore.add_block` returns a :class:`ReorgResult` listing the
orphaned blocks (whose transactions the caller returns to the mempool)
and the newly adopted blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.errors import CementedBlockError, UnknownParentError, ValidationError
from repro.common.types import Hash
from repro.blockchain.block import Block


@dataclass
class ReorgResult:
    """Outcome of adding one block.

    ``rolled_back`` and ``applied`` are ordered root-to-tip; both empty
    lists with ``extended_main=False`` means the block landed on a side
    branch without changing the main chain.
    """

    block_accepted: bool
    extended_main: bool = False
    rolled_back: List[Block] = field(default_factory=list)
    applied: List[Block] = field(default_factory=list)

    @property
    def is_reorg(self) -> bool:
        return bool(self.rolled_back)


@dataclass
class _BlockEntry:
    block: Block
    cumulative_work: float
    arrival_order: int


class ChainStore:
    """A tree of blocks with heaviest-chain fork choice.

    Ties in cumulative work are broken by arrival order (first seen wins),
    matching real client behaviour: during a soft fork "nodes continue to
    build the chain on top of their received blocks".
    """

    def __init__(self, genesis: Block) -> None:
        if not genesis.is_genesis():
            raise ValidationError("chain store must be seeded with a genesis block")
        self._entries: Dict[Hash, _BlockEntry] = {}
        self._children: Dict[Hash, List[Hash]] = {}
        self._main_chain: List[Hash] = []  # index = height
        self._orphan_pool: Dict[Hash, List[Block]] = {}  # parent_id -> blocks
        self._arrivals = 0
        self._cemented_height = -1
        self.reorg_count = 0
        self.deepest_reorg = 0
        self._insert(genesis, cumulative_work=genesis.header.work)
        self._main_chain = [genesis.block_id]

    # ----------------------------------------------------------------- reads

    @property
    def genesis(self) -> Block:
        return self._entries[self._main_chain[0]].block

    @property
    def head(self) -> Block:
        return self._entries[self._main_chain[-1]].block

    @property
    def height(self) -> int:
        return len(self._main_chain) - 1

    def __contains__(self, block_id: Hash) -> bool:
        return block_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def block(self, block_id: Hash) -> Block:
        return self._entries[block_id].block

    def cumulative_work(self, block_id: Hash) -> float:
        return self._entries[block_id].cumulative_work

    def block_at_height(self, height: int) -> Block:
        return self._entries[self._main_chain[height]].block

    def main_chain(self) -> List[Block]:
        return [self._entries[h].block for h in self._main_chain]

    def main_chain_ids(self) -> List[Hash]:
        return list(self._main_chain)

    def is_on_main_chain(self, block_id: Hash) -> bool:
        entry = self._entries.get(block_id)
        if entry is None:
            return False
        height = entry.block.height
        return height < len(self._main_chain) and self._main_chain[height] == block_id

    def confirmations(self, block_id: Hash) -> int:
        """Blocks on the main chain at or above this one (0 = not on main
        chain) — the quantity Section IV-A's depth rules count."""
        entry = self._entries.get(block_id)
        if entry is None or not self.is_on_main_chain(block_id):
            return 0
        return self.height - entry.block.height + 1

    def tips(self) -> List[Block]:
        """All leaf blocks — more than one means a live fork exists."""
        with_children = set(self._children)
        return [
            e.block
            for e in self._entries.values()
            if e.block.block_id not in with_children
        ]

    def orphan_pool_size(self) -> int:
        return sum(len(blocks) for blocks in self._orphan_pool.values())

    def headers(self) -> Iterable[Block]:
        return (e.block for e in self._entries.values())

    # --------------------------------------------------------------- writes

    def add_block(self, block: Block) -> ReorgResult:
        """Insert ``block``; returns what happened to the main chain.

        Blocks whose parent is unknown are parked in the orphan pool and
        connected automatically when the parent arrives.
        """
        if block.block_id in self._entries:
            return ReorgResult(block_accepted=False)
        if block.parent_id not in self._entries:
            self._orphan_pool.setdefault(block.parent_id, []).append(block)
            return ReorgResult(block_accepted=False)

        result = self._connect(block)
        # Connecting may unlock parked descendants.
        queue = [block.block_id]
        while queue:
            parent_id = queue.pop()
            for orphan in self._orphan_pool.pop(parent_id, []):
                child_result = self._connect(orphan)
                result = _merge_results(result, child_result)
                queue.append(orphan.block_id)
        return result

    def cement(self, height: int) -> None:
        """Mark the main chain final up to ``height``: any reorg that
        would roll back at or below it raises (Casper FFG checkpoints /
        Nano block-cementing, Section IV)."""
        if height > self.height:
            raise ValueError(f"cannot cement unmined height {height}")
        self._cemented_height = max(self._cemented_height, height)

    @property
    def cemented_height(self) -> int:
        return self._cemented_height

    # ------------------------------------------------------------- internals

    def _insert(self, block: Block, cumulative_work: float) -> None:
        self._arrivals += 1
        self._entries[block.block_id] = _BlockEntry(
            block=block, cumulative_work=cumulative_work, arrival_order=self._arrivals
        )
        if not block.parent_id.is_zero():
            self._children.setdefault(block.parent_id, []).append(block.block_id)

    def _connect(self, block: Block) -> ReorgResult:
        parent_entry = self._entries[block.parent_id]
        if block.height != parent_entry.block.height + 1:
            raise ValidationError(
                f"block {block.block_id.short()} height {block.height} does not "
                f"follow parent height {parent_entry.block.height}"
            )
        cumulative = parent_entry.cumulative_work + block.header.work
        self._insert(block, cumulative)

        head_entry = self._entries[self._main_chain[-1]]
        if cumulative <= head_entry.cumulative_work:
            return ReorgResult(block_accepted=True, extended_main=False)

        if block.parent_id == self._main_chain[-1]:
            # Fast path: plain extension of the main chain.
            self._main_chain.append(block.block_id)
            return ReorgResult(block_accepted=True, extended_main=True, applied=[block])

        return self._reorganize(block)

    def _reorganize(self, new_head: Block) -> ReorgResult:
        """Switch the main chain to the branch ending at ``new_head``."""
        new_branch: List[Block] = []
        cursor: Optional[Block] = new_head
        while cursor is not None and not self.is_on_main_chain(cursor.block_id):
            new_branch.append(cursor)
            cursor = (
                self._entries[cursor.parent_id].block
                if cursor.parent_id in self._entries
                else None
            )
        if cursor is None:
            raise UnknownParentError("new branch does not connect to the main chain")
        new_branch.reverse()
        fork_height = cursor.height

        if fork_height < self._cemented_height:
            raise CementedBlockError(
                f"reorg would roll back cemented height {self._cemented_height}"
            )

        rolled_back = [
            self._entries[h].block for h in self._main_chain[fork_height + 1 :]
        ]
        del self._main_chain[fork_height + 1 :]
        self._main_chain.extend(b.block_id for b in new_branch)

        self.reorg_count += 1
        self.deepest_reorg = max(self.deepest_reorg, len(rolled_back))
        return ReorgResult(
            block_accepted=True,
            extended_main=True,
            rolled_back=rolled_back,
            applied=new_branch,
        )

    # --------------------------------------------------------------- pruning

    def drop_body(self, block_id: Hash) -> int:
        """Replace a block's body with an empty one, keeping the header.

        Returns the bytes freed.  Used by :mod:`repro.storage.pruning`;
        after this the node "is no longer able to relay the full history".
        """
        entry = self._entries[block_id]
        freed = entry.block.body_size_bytes
        entry.block = Block(header=entry.block.header, transactions=())
        return freed

    def total_size_bytes(self) -> int:
        """Serialized size of all stored blocks (main chain + side branches)."""
        return sum(e.block.size_bytes for e in self._entries.values())

    def main_chain_size_bytes(self) -> int:
        return sum(self._entries[h].block.size_bytes for h in self._main_chain)


def _merge_results(first: ReorgResult, second: ReorgResult) -> ReorgResult:
    """Combine results from connecting a block and its parked descendants."""
    if not second.extended_main:
        return first
    if not first.extended_main:
        return ReorgResult(
            block_accepted=first.block_accepted or second.block_accepted,
            extended_main=True,
            rolled_back=second.rolled_back,
            applied=second.applied,
        )
    # Both advanced the chain: net effect = first's rollbacks plus all
    # applied blocks that were not subsequently rolled back by second.
    rolled_ids = {b.block_id for b in second.rolled_back}
    surviving_applied = [b for b in first.applied if b.block_id not in rolled_ids]
    new_rolled = first.rolled_back + [
        b for b in second.rolled_back if b not in first.applied
    ]
    return ReorgResult(
        block_accepted=True,
        extended_main=True,
        rolled_back=new_rolled,
        applied=surviving_applied + second.applied,
    )
