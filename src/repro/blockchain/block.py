"""Blocks and headers (Figure 1 of the paper).

A header carries the parent hash (the chain link), the Merkle root of its
transactions, and the PoW fields; Ethereum-style chains additionally
commit to a state root and a receipts root (Section II-A: "Ethereum uses
three different structures to store transactions, receipts and state").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from repro.common.memo import cached
from typing import Optional, Sequence, Tuple, Union

from repro.common.encoding import Encoder
from repro.common.types import Address, Hash
from repro.crypto.hashing import sha256d
from repro.crypto.merkle import merkle_root
from repro.crypto.pow import MAX_TARGET, check_pow
from repro.blockchain.transaction import AccountTransaction, Transaction, make_coinbase

AnyTransaction = Union[Transaction, AccountTransaction]

#: Serialized header size is constant; handy for pruning math (Section V-A:
#: pruned nodes keep headers, discard bodies).
HEADER_SIZE_BYTES = 32 * 4 + 8 * 4 + 32  # four hashes + four u64 + target


@dataclass(frozen=True)
class BlockHeader:
    """Block metadata; its double-SHA256 is the block id."""

    parent_id: Hash
    merkle_root: Hash
    timestamp: float
    height: int
    target: int
    nonce: int = 0
    state_root: Hash = Hash.zero()
    receipts_root: Hash = Hash.zero()
    proposer: Optional[Address] = None  # PoS chains record the block proposer

    # Headers are immutable: the PoW payload, wire form, and digest are
    # each computed once and cached forever (``with_nonce`` builds a new
    # header, so caches never need invalidation).

    @cached
    def _pow_payload(self) -> bytes:
        return (
            Encoder.shared()
            .raw(bytes(self.parent_id))
            .raw(bytes(self.merkle_root))
            .raw(bytes(self.state_root))
            .raw(bytes(self.receipts_root))
            .uint(int(self.timestamp * 1000), 8)
            .uint(self.height, 8)
            .uint(self.target, 32)
            .raw(bytes(self.proposer) if self.proposer else b"\x00" * 20)
            .getvalue()
        )

    def pow_payload(self) -> bytes:
        """Everything the PoW nonce commits to (all fields except nonce)."""
        return self._pow_payload

    @cached
    def _serialized(self) -> bytes:
        return self._pow_payload + self.nonce.to_bytes(8, "big")

    def serialize(self) -> bytes:
        return self._serialized

    @cached
    def block_id(self) -> Hash:
        return sha256d(self._serialized)

    @property
    def size_bytes(self) -> int:
        return len(self._serialized)

    @property
    def work(self) -> float:
        """Expected hashes to find this block — fork-choice weight."""
        return MAX_TARGET / self.target

    def check_proof_of_work(self) -> bool:
        return check_pow(self.pow_payload(), self.nonce, self.target)

    def with_nonce(self, nonce: int) -> "BlockHeader":
        return replace(self, nonce=nonce)


@dataclass(frozen=True)
class Block:
    """Header plus transaction list."""

    header: BlockHeader
    transactions: Tuple[AnyTransaction, ...]

    @property
    def block_id(self) -> Hash:
        return self.header.block_id

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def parent_id(self) -> Hash:
        return self.header.parent_id

    @cached
    def size_bytes(self) -> int:
        """Serialized size: header plus all transaction bodies."""
        return self.header.size_bytes + self.body_size_bytes

    @cached
    def body_size_bytes(self) -> int:
        """Transaction bytes only — what pruning discards (Section V-A)."""
        return sum(tx.size_bytes for tx in self.transactions)

    @cached
    def _computed_merkle_root(self) -> Hash:
        if not self.transactions:
            return Hash.zero()
        return merkle_root([tx.txid for tx in self.transactions])

    def compute_merkle_root(self) -> Hash:
        return self._computed_merkle_root

    def merkle_root_matches(self) -> bool:
        return self._computed_merkle_root == self.header.merkle_root

    def is_genesis(self) -> bool:
        return self.header.parent_id.is_zero() and self.header.height == 0


def assemble_block(
    parent: Optional[BlockHeader],
    transactions: Sequence[AnyTransaction],
    timestamp: float,
    target: int,
    state_root: Hash = Hash.zero(),
    receipts_root: Hash = Hash.zero(),
    proposer: Optional[Address] = None,
    nonce: int = 0,
) -> Block:
    """Build a block whose header commits to the given transactions."""
    txs = tuple(transactions)
    root = merkle_root([tx.txid for tx in txs]) if txs else Hash.zero()
    header = BlockHeader(
        parent_id=parent.block_id if parent else Hash.zero(),
        merkle_root=root,
        timestamp=timestamp,
        height=(parent.height + 1) if parent else 0,
        target=target,
        nonce=nonce,
        state_root=state_root,
        receipts_root=receipts_root,
        proposer=proposer,
    )
    return Block(header=header, transactions=txs)


def build_genesis_block(
    initial_recipient: Address,
    initial_supply: int,
    target: int = MAX_TARGET,
    timestamp: float = 0.0,
) -> Block:
    """The hard-coded first block: "the genesis block has no predecessor"
    (Section II-A).  Its coinbase mints the initial supply."""
    coinbase = make_coinbase(initial_recipient, initial_supply, nonce=0)
    return assemble_block(
        parent=None,
        transactions=[coinbase],
        timestamp=timestamp,
        target=target,
    )


def build_genesis_with_allocations(
    allocations: "dict[Address, int]",
    target: int = MAX_TARGET,
    timestamp: float = 0.0,
) -> Block:
    """Genesis whose coinbase pays out an initial allocation table —
    "the initial state is hard-coded in the first block"."""
    from repro.blockchain.transaction import COINBASE_INDEX, Transaction, TxInput, TxOutput

    if not allocations:
        raise ValueError("genesis needs at least one allocation")
    coinbase = Transaction(
        inputs=(TxInput(prev_txid=Hash.zero(), prev_index=COINBASE_INDEX),),
        outputs=tuple(
            TxOutput(amount=amount, recipient=address)
            for address, amount in allocations.items()
        ),
        nonce=0,
    )
    return assemble_block(
        parent=None, transactions=[coinbase], timestamp=timestamp, target=target
    )
