"""The layered, paradigm-agnostic protocol stack.

Every node implementation — blockchain (PoW/PoS), Nano block-lattice,
IOTA-style tangle, Byteball-style witnessed DAG — is the same abstract
machine (Section II: a replicated "transaction-based state machine"),
differing only in its consensus rule.  This package makes that layering
explicit:

``MessagePlane``
    the structural contract of the fabric nodes publish into
    (publish/deliver/seen/retransmit semantics plus layer counters);
    the exact ``repro.net.Network`` is its reference implementation,
    and the sharded / nested-aggregate tiers implement it too so the
    same stack scales to 10^5-10^6 nodes;

``TransportLayer``
    peer send/broadcast, online/offline lifecycle, and
    republish-on-reconnect of locally created artifacts;

``IntakeLayer``
    the unified parked/unchecked/orphan buffer: artifacts whose
    dependency has not arrived yet are parked under the missing key,
    retried when it shows up, revived on heal/restart, and bounded in
    memory;

``ConsensusEngine``
    the paradigm-specific piece (chain selection, ORV elections, tip
    selection) behind a uniform ingest interface;

``LedgerStateMachine``
    the structural surface of a running deployment
    (``repro.core.ledger.Ledger`` satisfies it) so paradigm-agnostic
    tooling can type against this package instead of ``repro.core``.

Layering contract (enforced by ``scripts/check_layering.py``): this
package never imports ``repro.blockchain``, ``repro.dag``,
``repro.core`` or ``repro.check`` — the paradigm packages build *on* the
stack, not the other way around.
"""

from repro.protocol.interfaces import (
    ConsensusEngine,
    LedgerStateMachine,
    MessagePlane,
    aggregate_layer_counters,
    protocol_nodes,
)
from repro.protocol.intake import DEFAULT_INTAKE_CAPACITY, IntakeCounters, IntakeLayer
from repro.protocol.node import ProtocolNode
from repro.protocol.transport import TransportCounters, TransportLayer

__all__ = [
    "DEFAULT_INTAKE_CAPACITY",
    "ConsensusEngine",
    "IntakeCounters",
    "IntakeLayer",
    "LedgerStateMachine",
    "MessagePlane",
    "ProtocolNode",
    "TransportCounters",
    "TransportLayer",
    "aggregate_layer_counters",
    "protocol_nodes",
]
