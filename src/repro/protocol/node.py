"""The layered node: transport → intake → consensus on one replica.

:class:`ProtocolNode` composes the stack under a
:class:`~repro.net.node.NetworkNode`: the single shared ingest pipeline
(duplicate check → dependency check → park-or-integrate →
dependency-arrival retry) that three node classes used to hand-roll
divergently, plus the lifecycle glue — republish-on-reconnect and
intake revival on restart/heal — that previously existed only where a
fuzzer had already found the corresponding divergence bug.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.common.errors import ReproError
from repro.crypto.keys import prewarm_signatures
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.protocol.intake import DEFAULT_INTAKE_CAPACITY, IntakeLayer
from repro.protocol.interfaces import ConsensusEngine
from repro.protocol.transport import TransportLayer


class ProtocolNode(NetworkNode):
    """A network node running the layered protocol stack.

    Subclasses set :attr:`consensus` (their
    :class:`~repro.protocol.interfaces.ConsensusEngine`) during
    ``__init__`` and route gossip payloads through :meth:`ingest` /
    :meth:`ingest_quietly`; locally created artifacts go out through
    ``self.transport.publish``.  Everything else — parking, retry,
    revival, republish — is this class.
    """

    #: Set by the subclass constructor before any traffic flows.
    consensus: ConsensusEngine

    #: Per-node adversary flag (see :mod:`repro.faults`).  Honest by
    #: default; adapters flip it when wiring a Byzantine family
    #: (equivocation, withholding, selfish mining) onto this replica.
    is_byzantine: bool = False

    def __init__(
        self,
        node_id: str,
        *,
        intake_capacity: Optional[int] = DEFAULT_INTAKE_CAPACITY,
    ) -> None:
        super().__init__(node_id)
        self.intake = IntakeLayer(capacity=intake_capacity)
        self.transport = TransportLayer(self, retain=self.retains_artifact)

    # ------------------------------------------------------------- lifecycle

    def set_online(self, online: bool) -> None:
        """Reconnect first kicks parked network retries (base class),
        then flushes this node's own offline publications, then gives
        every parked intake artifact a fresh chance (its dependency may
        have arrived while we were away, via bootstrap or a peer)."""
        was_online = self.online
        super().set_online(online)
        if online and not was_online:
            republished = self.transport.on_reconnect()
            if republished:
                self._trace("record_republish", republished)
            self.revive_intake()

    def on_partition_heal(self) -> None:
        """Network-wide heal hook (see :meth:`Network.heal`)."""
        if self.online:
            self.revive_intake()

    # ----------------------------------------------------------- the pipeline

    def ingest(self, artifact: Any) -> bool:
        """Run one artifact through intake + consensus.

        Returns ``True`` when the artifact was integrated (and its
        parked dependents retried).  Raises whatever the consensus
        engine's validation raises — callers that must not propagate
        peer garbage use :meth:`ingest_quietly`.
        """
        key = self._ingest_no_retry(artifact)
        if key is None:
            return False
        self.retry_dependents(key)
        return True

    def _ingest_no_retry(self, artifact: Any) -> Optional[Hashable]:
        """One artifact through intake + consensus, without the
        dependent-retry tail; returns its key when integrated."""
        engine = self.consensus
        key = engine.artifact_key(artifact)
        if engine.is_known(key):
            return None
        missing = engine.missing_dependency(artifact)
        if missing is not None:
            evicted = self.intake.park(missing, artifact)
            self._trace("record_intake_park", missing, evicted)
            self.on_parked(artifact, missing)
            return None
        if not engine.integrate(artifact):
            return None
        engine.on_applied(artifact)
        return key

    def ingest_quietly(self, artifact: Any) -> bool:
        """:meth:`ingest`, swallowing validation errors from peers."""
        try:
            return self.ingest(artifact)
        except ReproError:
            return False

    def ingest_batch(self, artifacts: Any, *, skip: Any = None) -> int:
        """Run a whole burst through intake + consensus; returns the
        number integrated.

        Amortizes the burst two ways: the engine's signature triples are
        batch-verified up front (one sigcache fill for the whole burst,
        see :meth:`ConsensusEngine.signature_items`), and the
        dependent-retry pass runs once at the end instead of after every
        artifact.  Validation errors are swallowed per artifact (quiet
        ingest semantics — this is the bootstrap/sync/burst path).  The
        final ledger state is identical to scalar ingest in any order:
        an artifact parked because its dependency sat later in the burst
        is revived by the closing retry pass.

        ``skip`` (optional callable) is evaluated at each artifact's turn
        and drops it without touching the engine — callers whose engines
        count duplicates (the lattice) pass a membership test so an
        artifact integrated mid-batch (dependency retry, auto-receive)
        is skipped exactly as the scalar loop's re-check would.
        """
        if not isinstance(artifacts, (list, tuple)):
            artifacts = list(artifacts)
        engine = self.consensus
        if len(artifacts) > 1:
            triples: list = []
            collect = engine.signature_items
            for artifact in artifacts:
                triples.extend(collect(artifact))
            if triples:
                prewarm_signatures(triples)
        integrated = 0
        applied_keys = []
        intake_park = self.intake.park
        for artifact in artifacts:
            if skip is not None and skip(artifact):
                continue
            try:
                key = engine.artifact_key(artifact)
                if engine.is_known(key):
                    continue
                missing = engine.missing_dependency(artifact)
                if missing is not None:
                    evicted = intake_park(missing, artifact)
                    self._trace("record_intake_park", missing, evicted)
                    self.on_parked(artifact, missing)
                    continue
                if not engine.integrate(artifact):
                    continue
                engine.on_applied(artifact)
            except ReproError:
                continue
            integrated += 1
            applied_keys.append(key)
        for key in applied_keys:
            self.retry_dependents(key)
        return integrated

    def prewarm_messages(self, messages: Any) -> None:
        """Batch-verify the signatures a coalesced burst carries.

        Behavior-neutral (sigcache warming only — see
        :func:`repro.crypto.keys.prewarm_signatures`); the scalar checks
        inside each engine's validation then all hit the cache.
        """
        triples: list = []
        collect = self.message_signature_items
        for message in messages:
            triples.extend(collect(message))
        if triples:
            prewarm_signatures(triples)

    def message_signature_items(self, message: Message) -> Any:
        """Signature triples carried by one gossip message.

        Subclasses map their message kinds to the engine's
        :meth:`~ConsensusEngine.signature_items` (plus any non-artifact
        signed payloads such as votes).  Must be side-effect-free.
        """
        return ()

    def retry_dependents(self, key: Hashable) -> int:
        """Re-ingest everything parked on the just-integrated ``key``.

        The revival cascade (a revived artifact unblocks its own
        dependents, and so on) runs on an explicit stack in the same
        depth-first pre-order the old mutual recursion produced — a
        bootstrap burst can legally park thousands of artifacts behind
        one dependency, far past the interpreter's recursion limit.
        """
        parked = self.intake.satisfy(key)
        stack = [iter(parked)]
        while stack:
            artifact = next(stack[-1], None)
            if artifact is None:
                stack.pop()
                continue
            try:
                child = self._ingest_no_retry(artifact)
            except ReproError:
                continue
            if child is not None:
                stack.append(iter(self.intake.satisfy(child)))
        return len(parked)

    def revive_intake(self) -> int:
        """Retry every parked artifact; still-blocked ones re-park."""
        backlog = self.intake.drain()
        if backlog:
            self._trace("record_intake_revive", len(backlog))
        for artifact in backlog:
            self.ingest_quietly(artifact)
        return len(backlog)

    # ----------------------------------------------------------------- hooks

    def on_parked(self, artifact: Any, missing: Hashable) -> None:
        """Subclass hook: an artifact just parked waiting on ``missing``."""

    def retains_artifact(self, artifact: Any) -> bool:
        """Whether an offline-queued artifact is still worth
        republishing (default: yes).  Subclasses narrow this to "still
        in my ledger" so rolled-back artifacts are not resurrected."""
        return True

    # --------------------------------------------------------------- metrics

    def layer_counters(self) -> Dict[str, float]:
        """Per-layer cost attribution for sweeps: transport and intake
        counters plus the base traffic totals, one flat namespace."""
        flat: Dict[str, float] = {
            "transport.messages_sent": float(self.messages_sent),
            "transport.messages_received": float(self.messages_received),
            "transport.bytes_sent": float(self.bytes_sent),
            "transport.bytes_received": float(self.bytes_received),
        }
        for name, value in self.transport.counters.as_dict().items():
            flat[name] = float(value)
        for name, value in self.intake.counters.as_dict().items():
            flat[name] = float(value)
        flat["intake.backlog"] = float(len(self.intake))
        engine = getattr(self, "consensus", None)
        if engine is not None:
            for name, value in engine.counters().items():
                flat[f"consensus.{name}"] = float(value)
        return flat

    # ----------------------------------------------------------------- trace

    def _trace(self, record: str, *args: Any) -> None:
        """Emit a stack event into the network's tracer, if any is
        attached and enabled (pay-for-use, like the gossip hot path)."""
        network = self.network
        if network is None:
            return
        tracer = network.tracer
        if not tracer.enabled:
            return
        getattr(tracer, record)(network.simulator.now, self.node_id, *args)
