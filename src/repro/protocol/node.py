"""The layered node: transport → intake → consensus on one replica.

:class:`ProtocolNode` composes the stack under a
:class:`~repro.net.node.NetworkNode`: the single shared ingest pipeline
(duplicate check → dependency check → park-or-integrate →
dependency-arrival retry) that three node classes used to hand-roll
divergently, plus the lifecycle glue — republish-on-reconnect and
intake revival on restart/heal — that previously existed only where a
fuzzer had already found the corresponding divergence bug.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.common.errors import ReproError
from repro.net.node import NetworkNode
from repro.protocol.intake import DEFAULT_INTAKE_CAPACITY, IntakeLayer
from repro.protocol.interfaces import ConsensusEngine
from repro.protocol.transport import TransportLayer


class ProtocolNode(NetworkNode):
    """A network node running the layered protocol stack.

    Subclasses set :attr:`consensus` (their
    :class:`~repro.protocol.interfaces.ConsensusEngine`) during
    ``__init__`` and route gossip payloads through :meth:`ingest` /
    :meth:`ingest_quietly`; locally created artifacts go out through
    ``self.transport.publish``.  Everything else — parking, retry,
    revival, republish — is this class.
    """

    #: Set by the subclass constructor before any traffic flows.
    consensus: ConsensusEngine

    #: Per-node adversary flag (see :mod:`repro.faults`).  Honest by
    #: default; adapters flip it when wiring a Byzantine family
    #: (equivocation, withholding, selfish mining) onto this replica.
    is_byzantine: bool = False

    def __init__(
        self,
        node_id: str,
        *,
        intake_capacity: Optional[int] = DEFAULT_INTAKE_CAPACITY,
    ) -> None:
        super().__init__(node_id)
        self.intake = IntakeLayer(capacity=intake_capacity)
        self.transport = TransportLayer(self, retain=self.retains_artifact)

    # ------------------------------------------------------------- lifecycle

    def set_online(self, online: bool) -> None:
        """Reconnect first kicks parked network retries (base class),
        then flushes this node's own offline publications, then gives
        every parked intake artifact a fresh chance (its dependency may
        have arrived while we were away, via bootstrap or a peer)."""
        was_online = self.online
        super().set_online(online)
        if online and not was_online:
            republished = self.transport.on_reconnect()
            if republished:
                self._trace("record_republish", republished)
            self.revive_intake()

    def on_partition_heal(self) -> None:
        """Network-wide heal hook (see :meth:`Network.heal`)."""
        if self.online:
            self.revive_intake()

    # ----------------------------------------------------------- the pipeline

    def ingest(self, artifact: Any) -> bool:
        """Run one artifact through intake + consensus.

        Returns ``True`` when the artifact was integrated (and its
        parked dependents retried).  Raises whatever the consensus
        engine's validation raises — callers that must not propagate
        peer garbage use :meth:`ingest_quietly`.
        """
        engine = self.consensus
        key = engine.artifact_key(artifact)
        if engine.is_known(key):
            return False
        missing = engine.missing_dependency(artifact)
        if missing is not None:
            evicted = self.intake.park(missing, artifact)
            self._trace("record_intake_park", missing, evicted)
            self.on_parked(artifact, missing)
            return False
        if not engine.integrate(artifact):
            return False
        engine.on_applied(artifact)
        self.retry_dependents(key)
        return True

    def ingest_quietly(self, artifact: Any) -> bool:
        """:meth:`ingest`, swallowing validation errors from peers."""
        try:
            return self.ingest(artifact)
        except ReproError:
            return False

    def retry_dependents(self, key: Hashable) -> int:
        """Re-ingest everything parked on the just-integrated ``key``."""
        parked = self.intake.satisfy(key)
        for artifact in parked:
            self.ingest_quietly(artifact)
        return len(parked)

    def revive_intake(self) -> int:
        """Retry every parked artifact; still-blocked ones re-park."""
        backlog = self.intake.drain()
        if backlog:
            self._trace("record_intake_revive", len(backlog))
        for artifact in backlog:
            self.ingest_quietly(artifact)
        return len(backlog)

    # ----------------------------------------------------------------- hooks

    def on_parked(self, artifact: Any, missing: Hashable) -> None:
        """Subclass hook: an artifact just parked waiting on ``missing``."""

    def retains_artifact(self, artifact: Any) -> bool:
        """Whether an offline-queued artifact is still worth
        republishing (default: yes).  Subclasses narrow this to "still
        in my ledger" so rolled-back artifacts are not resurrected."""
        return True

    # --------------------------------------------------------------- metrics

    def layer_counters(self) -> Dict[str, float]:
        """Per-layer cost attribution for sweeps: transport and intake
        counters plus the base traffic totals, one flat namespace."""
        flat: Dict[str, float] = {
            "transport.messages_sent": float(self.messages_sent),
            "transport.messages_received": float(self.messages_received),
            "transport.bytes_sent": float(self.bytes_sent),
            "transport.bytes_received": float(self.bytes_received),
        }
        for name, value in self.transport.counters.as_dict().items():
            flat[name] = float(value)
        for name, value in self.intake.counters.as_dict().items():
            flat[name] = float(value)
        flat["intake.backlog"] = float(len(self.intake))
        engine = getattr(self, "consensus", None)
        if engine is not None:
            for name, value in engine.counters().items():
                flat[f"consensus.{name}"] = float(value)
        return flat

    # ----------------------------------------------------------------- trace

    def _trace(self, record: str, *args: Any) -> None:
        """Emit a stack event into the network's tracer, if any is
        attached and enabled (pay-for-use, like the gossip hot path)."""
        network = self.network
        if network is None:
            return
        tracer = network.tracer
        if not tracer.enabled:
            return
        getattr(tracer, record)(network.simulator.now, self.node_id, *args)
