"""Abstract interfaces of the protocol stack.

The stack decomposes every node into transport → intake → consensus →
ledger, the layering both DAG SoKs use to compare systems (Wang et al.;
Raikwar et al.) and the frame in which the source paper's Sections II-III
contrast blockchain and block-lattice.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class MessagePlane(Protocol):
    """Structural type of the fabric a protocol node publishes into.

    The stack used to hard-couple :class:`~repro.protocol.node.ProtocolNode`
    / :class:`~repro.protocol.transport.TransportLayer` to the exact
    in-process :class:`repro.net.network.Network`.  This protocol names
    the seam instead, so the same stack runs unchanged on any fabric
    that honors the contract:

    * **publish** — :meth:`gossip` floods a message from an origin node;
      :meth:`transmit` / :meth:`transmit_reliable` are the point-to-point
      primitives (unreliable datagram vs retransmit-with-backoff).
    * **deliver** — every accepted transmission resolves as exactly one
      ``node.deliver`` (or a coalesced ``deliver_batch``) at the
      destination; offline receivers drop (and gossip re-parks).
    * **seen/retransmit** — duplicate suppression is by *ownership*: the
      first in-flight delivery chain claims a ``(destination, key)``
      pair; lost attempts back off and retry, exhausted attempts park
      until :meth:`kick_retries` / :meth:`heal` revives them.  This is
      what lets propagation recover after partitions and restarts.
    * **layer counters** — :meth:`traffic_stats` /
      :meth:`plane_counters` expose the fabric totals that join the
      deployment's ``transport.* / intake.* / consensus.*`` namespaces.

    Three implementations exist: the exact :class:`repro.net.network.Network`
    (the reference — bit-identical goldens are pinned on it), the
    sharded plane (:class:`repro.net.sharded_plane.ShardedMessagePlane`,
    full protocol traffic over an epoch-barrier crowd at 10^4-10^6
    nodes) and the nested-aggregate tier
    (:class:`repro.net.aggregate.AggregateCluster` leaves hanging off an
    exact boundary).  ``repro.net`` / ``repro.sim`` may import *this
    module only* from the protocol package (enforced by
    ``scripts/check_layering.py``) — the interface is the one arrow
    allowed to point upward.
    """

    simulator: Any
    tracer: Any

    # ------------------------------------------------------------- wiring
    def add_node(self, node: Any) -> None: ...

    def connect(self, a: str, b: str, params: Any = None) -> None: ...

    def set_link(self, a: str, b: str, params: Any,
                 bidirectional: bool = True) -> None: ...

    def link_params(self, a: str, b: str) -> Any: ...

    def node(self, node_id: str) -> Any: ...

    def nodes(self) -> Any: ...

    def node_ids(self) -> List[str]: ...

    def neighbors(self, node_id: str) -> List[str]: ...

    # ------------------------------------------------------------ publish
    def gossip(self, origin: str, message: Any) -> None: ...

    def transmit(self, src: str, dst: str, message: Any) -> None: ...

    def transmit_reliable(self, src: str, dst: str, message: Any) -> None: ...

    # --------------------------------------------------------- partitions
    def partition(self, groups: Any) -> None: ...

    def heal(self) -> None: ...

    # --------------------------------------------------------- retransmit
    def kick_retries(self, dst: Optional[str] = None) -> None: ...

    def pending_retries(self) -> int: ...

    # ----------------------------------------------------------- counters
    def traffic_stats(self) -> Dict[str, float]: ...

    def plane_counters(self) -> Dict[str, float]: ...


class ConsensusEngine(abc.ABC):
    """The paradigm-specific layer of a :class:`~repro.protocol.node.ProtocolNode`.

    An engine validates and integrates *artifacts* (blocks, lattice
    blocks, tangle transactions, DAG units) into its replica's ledger
    state, and names the dependency an artifact is missing so the shared
    :class:`~repro.protocol.intake.IntakeLayer` can park it.

    Contract with :meth:`ProtocolNode.ingest`:

    * :meth:`artifact_key` — the gossip/dedup identity of an artifact;
      also the intake key its dependents park under.
    * :meth:`is_known` — fast duplicate test.  Engines whose
      :meth:`integrate` already rejects duplicates exactly the way the
      pre-stack implementation did may keep the default ``False`` so
      duplicate accounting is unchanged.
    * :meth:`missing_dependency` — the key this artifact cannot be
      validated without, or ``None`` when it is ready to integrate.
    * :meth:`integrate` — apply the artifact; return ``True`` when it
      was accepted (its dependents should be retried).  May raise a
      :class:`~repro.common.errors.ReproError` subtype exactly as the
      paradigm's validation does; quiet ingest paths catch it.
    * :meth:`on_applied` — post-acceptance hook (votes, auto-receive,
      re-mining) run before parked dependents are retried.
    """

    #: Human-readable paradigm tag ("blockchain", "dag-lattice", ...).
    paradigm: str = "abstract"

    @abc.abstractmethod
    def artifact_key(self, artifact: Any) -> Hashable:
        """Identity of ``artifact`` (block id / block hash / tx hash)."""

    def is_known(self, key: Hashable) -> bool:
        """Whether the replica already integrated ``key``."""
        return False

    @abc.abstractmethod
    def missing_dependency(self, artifact: Any) -> Optional[Hashable]:
        """Key of the artifact this one needs first, if absent."""

    @abc.abstractmethod
    def integrate(self, artifact: Any) -> bool:
        """Validate + apply; ``True`` iff accepted into the ledger."""

    def on_applied(self, artifact: Any) -> None:
        """Post-acceptance consensus actions (default: none)."""

    def signature_items(self, artifact: Any) -> Any:
        """``(public_key, message, signature)`` triples ``artifact`` carries.

        The batch tier feeds these to
        :func:`repro.crypto.keys.verify_signatures_batch` before a burst
        is ingested, so the engine's own scalar checks all hit the
        sigcache.  Must be side-effect-free; engines whose artifacts are
        unsigned keep the empty default.
        """
        return ()

    def counters(self) -> Dict[str, float]:
        """Engine-level counters (votes, view changes, QCs formed, ...).

        :meth:`ProtocolNode.layer_counters` merges these under the
        ``consensus.*`` namespace, mirroring ``transport.*`` /
        ``intake.*``, so they aggregate into ``LedgerStats.extra``
        through :func:`aggregate_layer_counters` with no adapter code.
        Engines without quorum machinery keep the empty default.
        """
        return {}


@runtime_checkable
class LedgerStateMachine(Protocol):
    """Structural type of a running deployment driven by payments.

    This is the surface :mod:`repro.core.adapters` exposes (its
    ``Ledger`` ABC satisfies this protocol), restated here so
    paradigm-agnostic layers — the fault injector, the invariant
    monitor, the fuzzer — can type against ``repro.protocol`` without
    importing the adapter package, keeping the dependency arrows
    pointing one way.
    """

    name: str
    paradigm: str

    def setup(self, accounts: int, initial_balance: int) -> None: ...

    def submit(self, event: Any) -> Optional[Any]: ...

    def advance(self, duration_s: float) -> None: ...

    def now(self) -> float: ...

    def is_confirmed(self, entry: Any) -> bool: ...

    def balance(self, account_index: int) -> int: ...

    def serialized_size(self) -> int: ...

    def stats(self) -> Any: ...


def protocol_nodes(nodes: Any) -> List[Any]:
    """The subset of ``nodes`` running on the protocol stack.

    Keys on the stack interface (a ``consensus`` engine plus the two
    layers), not on concrete classes, so callers in ``repro.core`` /
    ``repro.check`` / ``repro.faults`` never need paradigm imports.
    """
    from repro.protocol.node import ProtocolNode

    return [n for n in nodes if isinstance(n, ProtocolNode)]


def aggregate_layer_counters(nodes: Any) -> dict:
    """Sum per-layer counters over every stack node in ``nodes``.

    The deployment-wide view of transport/intake activity that flows
    into fault reports and ledger metrics — one flat ``layer.metric``
    namespace (see :meth:`ProtocolNode.layer_counters`).
    """
    totals: dict = {}
    for node in protocol_nodes(nodes):
        for name, value in node.layer_counters().items():
            totals[name] = totals.get(name, 0.0) + value
    if totals:
        # The sigcache is process-global (every replica shares it, as
        # every Bitcoin Core thread shares one sigcache), so its
        # accounting joins the aggregate view once — not per node.
        from repro.crypto.keys import sigcache_counters

        for name, value in sigcache_counters().items():
            totals[name] = float(value)
    return totals
