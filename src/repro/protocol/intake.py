"""The unified intake layer: parked/unchecked/orphan buffering.

Gossip gives no ordering guarantee, so every paradigm sees artifacts
arrive before their dependencies — a receive before its send (Nano's
"unchecked" table), a child block before its parent (Bitcoin's orphan
pool), a tangle transaction before its approved tips.  Before the stack
existed each node class hand-rolled this buffer; :class:`IntakeLayer`
is the single implementation: dependency-keyed parking with FIFO
eviction under a memory bound, dependency-arrival retry, and bulk
revival on heal/restart.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional

#: Default bound on simultaneously parked artifacts.  Generous enough
#: that healthy runs never evict; small enough that an adversary cannot
#: balloon a replica's memory with undeliverable dependents.
DEFAULT_INTAKE_CAPACITY = 4096


@dataclass
class IntakeCounters:
    """Cumulative per-node intake accounting (feeds metrics/trace)."""

    parked: int = 0
    retried: int = 0
    revived: int = 0
    evicted: int = 0

    def as_dict(self) -> dict:
        return {
            "intake.parked": self.parked,
            "intake.retried": self.retried,
            "intake.revived": self.revived,
            "intake.evicted": self.evicted,
        }


class IntakeLayer:
    """Dependency-keyed buffer of artifacts awaiting a prerequisite.

    ``park(key, artifact)`` files ``artifact`` under the missing ``key``;
    ``satisfy(key)`` pops (in arrival order) everything waiting on it;
    ``drain()`` pops the whole buffer for revival after a heal or
    restart.  The buffer is bounded: when ``capacity`` is exceeded the
    oldest parked key is evicted wholesale (FIFO — the entries least
    likely to still matter), counted in :attr:`counters`.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_INTAKE_CAPACITY) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._parked: "OrderedDict[Hashable, List[Any]]" = OrderedDict()
        self._size = 0
        self.counters = IntakeCounters()

    # ---------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Hashable) -> bool:
        return key in self._parked

    def waiting_on(self) -> List[Hashable]:
        """The missing keys currently blocking parked artifacts."""
        return list(self._parked)

    def parked_for(self, key: Hashable) -> List[Any]:
        """Artifacts waiting on ``key`` (a copy; does not pop)."""
        return list(self._parked.get(key, ()))

    # --------------------------------------------------------------- mutation

    def park(self, key: Hashable, artifact: Any) -> int:
        """File ``artifact`` under missing ``key``; returns evictions."""
        bucket = self._parked.get(key)
        if bucket is None:
            bucket = self._parked[key] = []
        bucket.append(artifact)
        self._size += 1
        self.counters.parked += 1
        evicted = 0
        while self.capacity is not None and self._size > self.capacity:
            # Evict the stalest dependency first — never the artifact
            # that was just parked.
            oldest_key = next(iter(self._parked))
            oldest = self._parked[oldest_key]
            if oldest_key == key:
                if len(oldest) <= 1:
                    break
                oldest.pop(0)
                self._size -= 1
                evicted += 1
                self.counters.evicted += 1
                continue
            del self._parked[oldest_key]
            self._size -= len(oldest)
            evicted += len(oldest)
            self.counters.evicted += len(oldest)
        return evicted

    def satisfy(self, key: Hashable) -> List[Any]:
        """Pop everything parked on ``key`` (its dependency arrived)."""
        bucket = self._parked.pop(key, None)
        if not bucket:
            return []
        self._size -= len(bucket)
        self.counters.retried += len(bucket)
        return bucket

    def drain(self) -> List[Any]:
        """Pop *all* parked artifacts, oldest dependency first.

        Used on restart and partition heal: dependencies may have
        arrived through a path that never hit this buffer (bootstrap, a
        healed link), so every parked artifact gets one fresh ingest
        attempt; still-blocked ones simply re-park.
        """
        artifacts: List[Any] = []
        for bucket in self._parked.values():
            artifacts.extend(bucket)
        self._parked.clear()
        self._size = 0
        self.counters.revived += len(artifacts)
        return artifacts
