"""The transport layer: publication lifecycle over the gossip fabric.

Any :class:`~repro.protocol.interfaces.MessagePlane` provides the raw
primitives (flooding, retransmit/backoff, online gating) — the exact
``repro.net.Network`` by default, the sharded or nested-aggregate planes
at scale; :class:`TransportLayer` adds the *node-side* publication
contract every paradigm needs: an artifact created while the node is
offline cannot be broadcast (``NetworkNode.broadcast`` is a silent
no-op), so it is queued and republished on reconnect — the fix the
fuzzer forced into ``NanoNode`` (a wallet flushing unconfirmed sends),
now shared by every node type.  Without it, a block/transaction/unit
created during downtime exists only on its author's replica and
per-paradigm heads diverge forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.message import Message
    from repro.net.node import NetworkNode


@dataclass
class TransportCounters:
    """Cumulative per-node publication accounting (feeds metrics/trace)."""

    published: int = 0
    queued_offline: int = 0
    republished: int = 0
    dropped_stale: int = 0
    #: checkpoint state-syncs served or consumed through this transport
    state_syncs: int = 0
    #: wire bytes those state-syncs moved (headers + snapshot + bodies)
    state_sync_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "transport.published": self.published,
            "transport.queued_offline": self.queued_offline,
            "transport.republished": self.republished,
            "transport.dropped_stale": self.dropped_stale,
            "transport.state_syncs": self.state_syncs,
            "transport.state_sync_bytes": self.state_sync_bytes,
        }


class TransportLayer:
    """Publication front-end of one :class:`~repro.net.node.NetworkNode`.

    ``publish`` gossips a locally created artifact, or queues it while
    the node is offline; ``on_reconnect`` republishes the backlog,
    filtering through ``retain`` (e.g. "still in my ledger") so
    artifacts rolled back during the outage are not resurrected.
    """

    def __init__(
        self,
        node: "NetworkNode",
        retain: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self._node = node
        self._retain = retain
        self._offline_backlog: List[Tuple[Any, "Message"]] = []
        self.counters = TransportCounters()

    # ---------------------------------------------------------------- queries

    @property
    def offline_backlog(self) -> int:
        """Artifacts queued for republish at the next reconnect."""
        return len(self._offline_backlog)

    # ------------------------------------------------------------ publication

    def publish(self, artifact: Any, message: "Message") -> bool:
        """Broadcast a locally created artifact; queue it when offline.

        Returns ``True`` when the message went out now, ``False`` when
        it was queued for republish-on-reconnect.
        """
        if not self._node.online:
            self._offline_backlog.append((artifact, message))
            self.counters.queued_offline += 1
            return False
        self.counters.published += 1
        self._node.broadcast(message)
        return True

    def on_reconnect(self) -> int:
        """Flush the offline backlog; returns artifacts republished."""
        if not self._offline_backlog:
            return 0
        backlog, self._offline_backlog = self._offline_backlog, []
        republished = 0
        for artifact, message in backlog:
            if self._retain is not None and not self._retain(artifact):
                self.counters.dropped_stale += 1
                continue
            self.counters.republished += 1
            republished += 1
            self._node.broadcast(message)
        return republished
