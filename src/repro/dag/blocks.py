"""Block-lattice blocks (Figure 2/3 of the paper).

Each block is one transaction on one account's chain and records the
account's *resulting balance* — the design that makes history prunable
(Section V-B: "accounts keep record of account balances instead of
unspent transaction inputs").  Four kinds exist:

* ``open``    — creates an account chain, receiving a pending send;
* ``send``    — deducts from the sender's balance toward a destination;
* ``receive`` — settles a pending send into the recipient's balance;
* ``change``  — rotates the account's representative (Section III-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from repro.common.memo import cached
from typing import Optional

from repro.common.encoding import Encoder
from repro.common.errors import ValidationError
from repro.common.types import Address, Hash
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair, verify_signature
from repro.crypto.pow import check_antispam, solve_antispam


class BlockType(enum.Enum):
    OPEN = "open"
    SEND = "send"
    RECEIVE = "receive"
    CHANGE = "change"


@dataclass(frozen=True)
class NanoBlock:
    """One node of the DAG: a single transaction on one account chain.

    ``balance`` is the account balance *after* this block.  ``link``
    carries the cross-chain edge: for a send, the destination address
    (zero-padded to 32 bytes); for a receive/open, the hash of the source
    send block.
    """

    block_type: BlockType
    account: Address
    previous: Hash  # zero hash for open blocks
    representative: Address
    balance: int
    link: bytes  # 32 bytes: destination address (padded) or source hash
    public_key: bytes = b""
    signature: bytes = b""
    work: int = 0

    def __post_init__(self) -> None:
        if self.balance < 0:
            raise ValidationError("balance cannot be negative")
        if len(self.link) != 32:
            raise ValidationError("link must be 32 bytes")
        if self.block_type == BlockType.OPEN and not self.previous.is_zero():
            raise ValidationError("open blocks have no predecessor")
        if self.block_type != BlockType.OPEN and self.previous.is_zero():
            raise ValidationError(f"{self.block_type.value} block needs a predecessor")

    # ------------------------------------------------------------- identity
    #
    # Blocks are immutable: signed body, wire form, and digest are each
    # computed once and cached forever (``_finish`` builds new blocks via
    # ``replace``, so caches never need invalidation).

    @cached
    def _signed_body_bytes(self) -> bytes:
        return (
            Encoder.shared()
            .raw(self.block_type.value.encode("ascii").ljust(8, b"\x00"))
            .raw(bytes(self.account))
            .raw(bytes(self.previous))
            .raw(bytes(self.representative))
            .uint(self.balance, 16)
            .raw(self.link)
            .getvalue()
        )

    def _signed_body(self) -> bytes:
        return self._signed_body_bytes

    @cached
    def block_hash(self) -> Hash:
        return sha256(self._signed_body_bytes)

    #: Bytes of per-block authentication overhead: public key (32) +
    #: signature (64) + work nonce (8).  Used by Section V size reports.
    AUTH_OVERHEAD_BYTES = 32 + 64 + 8

    @cached
    def _serialized(self) -> bytes:
        return (
            Encoder.shared()
            .raw(self._signed_body_bytes)
            .raw(self.public_key.ljust(32, b"\x00"))
            .raw(self.signature.ljust(64, b"\x00"))
            .uint(self.work, 8)
            .getvalue()
        )

    def serialize(self) -> bytes:
        """Full wire/disk form: body + public key + signature + work."""
        return self._serialized

    @property
    def size_bytes(self) -> int:
        return len(self._serialized)

    # -------------------------------------------------------------- helpers

    @property
    def destination(self) -> Address:
        """For send blocks: the recipient encoded in ``link``."""
        if self.block_type != BlockType.SEND:
            raise ValidationError("only send blocks have a destination")
        return Address(self.link[:20])

    @property
    def source(self) -> Hash:
        """For open/receive blocks: the send block being settled."""
        if self.block_type not in (BlockType.OPEN, BlockType.RECEIVE):
            raise ValidationError("only open/receive blocks have a source")
        return Hash(self.link)

    def work_root(self) -> bytes:
        """Payload the anti-spam PoW commits to: the previous block hash,
        or the account for a chain's first block (as in Nano)."""
        return bytes(self.previous) if not self.previous.is_zero() else bytes(self.account)

    # ----------------------------------------------------------- validation

    def verify_signature(self) -> bool:
        return verify_signature(
            self.public_key, bytes(self.block_hash), self.signature
        )

    def signature_item(self) -> tuple:
        """Triple for :func:`repro.crypto.keys.verify_signatures_batch`."""
        return (self.public_key, bytes(self.block_hash), self.signature)

    def verify_work(self, difficulty: float) -> bool:
        """Check the hashcash anti-spam stamp (Section III-B)."""
        return check_antispam(self.work_root(), self.work, difficulty)


def _finish(
    block: NanoBlock, keypair: KeyPair, work_difficulty: Optional[float]
) -> NanoBlock:
    """Sign the block and attach anti-spam work."""
    signature = keypair.sign(bytes(block.block_hash))
    work = (
        solve_antispam(block.work_root(), work_difficulty)
        if work_difficulty is not None
        else 0
    )
    return replace(block, public_key=keypair.public_key, signature=signature, work=work)


def _pad_address(address: Address) -> bytes:
    return bytes(address) + b"\x00" * 12


def make_open(
    keypair: KeyPair,
    source: Hash,
    amount: int,
    representative: Address,
    work_difficulty: Optional[float] = None,
) -> NanoBlock:
    """First block of an account chain, settling a pending send.

    A *genesis* open block passes ``source=Hash.zero()`` and mints the
    initial supply — "the genesis transaction defines the initial state".
    """
    block = NanoBlock(
        block_type=BlockType.OPEN,
        account=keypair.address,
        previous=Hash.zero(),
        representative=representative,
        balance=amount,
        link=bytes(source),
    )
    return _finish(block, keypair, work_difficulty)


def make_send(
    keypair: KeyPair,
    previous: NanoBlock,
    destination: Address,
    amount: int,
    work_difficulty: Optional[float] = None,
    representative: Optional[Address] = None,
) -> NanoBlock:
    """Deduct ``amount`` from the account: funds become *pending* for the
    destination until it issues a receive (Figure 3)."""
    if amount <= 0:
        raise ValidationError("send amount must be positive")
    if amount > previous.balance:
        raise ValidationError(
            f"send of {amount} exceeds balance {previous.balance}"
        )
    block = NanoBlock(
        block_type=BlockType.SEND,
        account=keypair.address,
        previous=previous.block_hash,
        representative=representative or previous.representative,
        balance=previous.balance - amount,
        link=_pad_address(destination),
    )
    return _finish(block, keypair, work_difficulty)


def make_receive(
    keypair: KeyPair,
    previous: NanoBlock,
    source: Hash,
    amount: int,
    work_difficulty: Optional[float] = None,
) -> NanoBlock:
    """Settle a pending send into the account balance (Figure 3)."""
    if amount <= 0:
        raise ValidationError("receive amount must be positive")
    block = NanoBlock(
        block_type=BlockType.RECEIVE,
        account=keypair.address,
        previous=previous.block_hash,
        representative=previous.representative,
        balance=previous.balance + amount,
        link=bytes(source),
    )
    return _finish(block, keypair, work_difficulty)


def make_change(
    keypair: KeyPair,
    previous: NanoBlock,
    representative: Address,
    work_difficulty: Optional[float] = None,
) -> NanoBlock:
    """Rotate the account's representative — "when an account is created,
    it must choose a representative that can be changed over time"."""
    block = NanoBlock(
        block_type=BlockType.CHANGE,
        account=keypair.address,
        previous=previous.block_hash,
        representative=representative,
        balance=previous.balance,
        link=b"\x00" * 32,
    )
    return _finish(block, keypair, work_difficulty)
