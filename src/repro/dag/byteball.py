"""A Byteball-style witnessed DAG (paper footnote 1's second system).

Byteball's answer to ordering a DAG differs from both Nano's (per-account
chains + votes) and IOTA's (cumulative weight): units reference earlier
units, a fixed list of *witnesses* stabilizes a *main chain* (MC) through
the DAG, and every unit receives a *main chain index* (MCI) — giving the
DAG a **total order**, so conflicts resolve deterministically ("earlier
in the order wins") without elections.

This is a faithful-in-shape simplification (documented in DESIGN.md):

* ``level(u)``            = 1 + max(level of parents);
* *best parent*           = parent with the highest witnessed level,
                            ties by lowest unit hash;
* ``witnessed_level(u)``  = number of distinct witnesses seen along the
                            best-parent chain within the last
                            ``WITNESS_WINDOW`` steps;
* the *main chain*        = best-parent walk from the best tip to genesis;
* ``mci(u)``              = index of the first MC unit whose past cone
                            contains ``u``;
* *stable*                = MC units more than ``stability_depth`` behind
                            the latest MC unit authored by a witness
                            majority.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from repro.common.memo import cached
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.encoding import encode_bytes, encode_list, encode_uint
from repro.common.errors import UnknownParentError, ValidationError
from repro.common.types import Address, Hash
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair, address_of, verify_signature

#: How far back the witnessed-level walk looks.
WITNESS_WINDOW = 20


@dataclass(frozen=True)
class Unit:
    """One DAG unit: payload + references to one or more parents."""

    parents: Tuple[Hash, ...]
    payload: bytes
    timestamp: float
    public_key: bytes = b""
    signature: bytes = b""

    def _signed_body(self) -> bytes:
        return (
            encode_list([bytes(p) for p in self.parents])
            + encode_bytes(self.payload)
            + encode_uint(int(self.timestamp * 1000), 8)
        )

    @cached
    def unit_hash(self) -> Hash:
        return sha256(self._signed_body())

    @property
    def author(self) -> Address:
        return address_of(self.public_key)

    def serialize(self) -> bytes:
        return self._signed_body() + self.public_key.ljust(32, b"\x00") + (
            self.signature.ljust(64, b"\x00")
        )

    @property
    def size_bytes(self) -> int:
        return len(self.serialize())

    @property
    def is_genesis(self) -> bool:
        return not self.parents

    def verify_signature(self) -> bool:
        return verify_signature(self.public_key, bytes(self.unit_hash), self.signature)

    def signature_item(self) -> tuple:
        """Triple for :func:`repro.crypto.keys.verify_signatures_batch`."""
        return (self.public_key, bytes(self.unit_hash), self.signature)


def make_unit(
    keypair: KeyPair,
    parents: Sequence[Hash],
    payload: bytes,
    timestamp: float,
) -> Unit:
    unsigned = Unit(parents=tuple(parents), payload=payload, timestamp=timestamp)
    return Unit(
        parents=unsigned.parents,
        payload=payload,
        timestamp=timestamp,
        public_key=keypair.public_key,
        signature=keypair.sign(bytes(unsigned.unit_hash)),
    )


class ByteballDag:
    """The witnessed DAG with main-chain total ordering."""

    def __init__(self, witnesses: Sequence[Address], stability_depth: int = 3) -> None:
        if not witnesses:
            raise ValidationError("need at least one witness")
        if stability_depth < 1:
            raise ValidationError("stability depth must be positive")
        self.witnesses: Tuple[Address, ...] = tuple(witnesses)
        self.majority = len(self.witnesses) // 2 + 1
        self.stability_depth = stability_depth
        self._units: Dict[Hash, Unit] = {}
        self._children: Dict[Hash, List[Hash]] = {}
        self._level: Dict[Hash, int] = {}
        self._best_parent: Dict[Hash, Optional[Hash]] = {}
        self._witnessed_level: Dict[Hash, int] = {}
        self._tips: Set[Hash] = set()
        self.genesis_hash: Optional[Hash] = None

    # --------------------------------------------------------------- genesis

    def create_genesis(self, keypair: KeyPair) -> Unit:
        if self.genesis_hash is not None:
            raise ValidationError("dag already has a genesis")
        genesis = make_unit(keypair, (), b"genesis", 0.0)
        self._insert(genesis)
        self.genesis_hash = genesis.unit_hash
        return genesis

    def install_genesis(self, genesis: Unit) -> None:
        if self.genesis_hash is not None:
            raise ValidationError("dag already has a genesis")
        if not genesis.is_genesis or not genesis.verify_signature():
            raise ValidationError("invalid genesis unit")
        self._insert(genesis)
        self.genesis_hash = genesis.unit_hash

    # ---------------------------------------------------------------- access

    def __contains__(self, unit_hash: Hash) -> bool:
        return unit_hash in self._units

    def __len__(self) -> int:
        return len(self._units)

    def unit(self, unit_hash: Hash) -> Unit:
        return self._units[unit_hash]

    def tips(self) -> List[Hash]:
        return sorted(self._tips)

    def level(self, unit_hash: Hash) -> int:
        return self._level[unit_hash]

    def witnessed_level(self, unit_hash: Hash) -> int:
        return self._witnessed_level[unit_hash]

    def serialized_size(self) -> int:
        return sum(u.size_bytes for u in self._units.values())

    # -------------------------------------------------------------- mutation

    def attach(self, unit: Unit) -> None:
        if self.genesis_hash is None:
            raise ValidationError("create the genesis first")
        if unit.unit_hash in self._units:
            raise ValidationError(f"duplicate unit {unit.unit_hash.short()}")
        if unit.is_genesis:
            raise ValidationError("only one genesis allowed")
        for parent in unit.parents:
            if parent not in self._units:
                raise UnknownParentError(f"unknown parent {parent.short()}")
        if len(set(unit.parents)) != len(unit.parents):
            raise ValidationError("duplicate parents")
        if not unit.verify_signature():
            raise ValidationError("invalid signature")
        self._insert(unit)

    def _insert(self, unit: Unit) -> None:
        h = unit.unit_hash
        self._units[h] = unit
        self._children[h] = []
        if unit.is_genesis:
            self._level[h] = 0
            self._best_parent[h] = None
            self._witnessed_level[h] = 0
            self._tips = {h}
            return
        self._level[h] = 1 + max(self._level[p] for p in unit.parents)
        best = min(
            unit.parents,
            key=lambda p: (-self._witnessed_level[p], bytes(p)),
        )
        self._best_parent[h] = best
        self._witnessed_level[h] = self._compute_witnessed_level(h)
        for parent in unit.parents:
            self._children[parent].append(h)
            self._tips.discard(parent)
        self._tips.add(h)

    def _compute_witnessed_level(self, unit_hash: Hash) -> int:
        """Distinct witnesses on the recent best-parent chain."""
        seen: Set[Address] = set()
        current: Optional[Hash] = unit_hash
        for _ in range(WITNESS_WINDOW):
            if current is None:
                break
            author = self._units[current].author
            if author in self.witnesses:
                seen.add(author)
            current = self._best_parent[current]
        return len(seen)

    # ------------------------------------------------------------ main chain

    def best_tip(self) -> Hash:
        """Tip with the highest witnessed level (tie: lowest hash)."""
        return min(self._tips, key=lambda t: (-self._witnessed_level[t], bytes(t)))

    def main_chain(self) -> List[Hash]:
        """Best-parent walk from the best tip to genesis, genesis-first."""
        chain: List[Hash] = []
        current: Optional[Hash] = self.best_tip()
        while current is not None:
            chain.append(current)
            current = self._best_parent[current]
        chain.reverse()
        return chain

    def past_cone(self, unit_hash: Hash) -> Set[Hash]:
        seen: Set[Hash] = set()
        stack = [unit_hash]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._units[current].parents)
        return seen

    def mci_assignments(self) -> Dict[Hash, int]:
        """Main-chain index of every unit: the index of the first MC unit
        whose past cone contains it — the DAG's total-order key."""
        assignments: Dict[Hash, int] = {}
        covered: Set[Hash] = set()
        for index, mc_unit in enumerate(self.main_chain()):
            cone = self.past_cone(mc_unit)
            for unit_hash in cone - covered:
                assignments[unit_hash] = index
            covered |= cone
        return assignments

    def total_order(self) -> List[Hash]:
        """All ordered units: sorted by (MCI, unit hash).

        Units not yet reachable from the main chain (fresh side tips)
        are excluded — they get ordered once the MC advances over them.
        """
        assignments = self.mci_assignments()
        return sorted(assignments, key=lambda h: (assignments[h], bytes(h)))

    def resolve_conflict(self, a: Hash, b: Hash) -> Optional[Hash]:
        """Deterministic conflict resolution: the unit earlier in the
        total order wins; None if either is not yet ordered."""
        assignments = self.mci_assignments()
        if a not in assignments or b not in assignments:
            return None
        return min(a, b, key=lambda h: (assignments[h], bytes(h)))

    # -------------------------------------------------------------- stability

    def last_stable_mci(self) -> int:
        """MC index below which units are stable (irreversible).

        An MC unit is stable once the main chain has advanced
        ``stability_depth`` units past it *and* a witness majority has
        authored units above it.
        """
        chain = self.main_chain()
        witness_authors_above: Set[Address] = set()
        stable_cutoff = -1
        for index in range(len(chain) - 1, -1, -1):
            author = self._units[chain[index]].author
            if author in self.witnesses:
                witness_authors_above.add(author)
            if (
                len(witness_authors_above) >= self.majority
                and len(chain) - 1 - index >= self.stability_depth
            ):
                stable_cutoff = index
                break
        return stable_cutoff

    def is_stable(self, unit_hash: Hash) -> bool:
        assignments = self.mci_assignments()
        mci = assignments.get(unit_hash)
        if mci is None:
            return False
        return mci <= self.last_stable_mci()
