"""Bootstrap helpers for Nano network experiments.

Building a realistic block-lattice deployment takes several coordinated
steps — a shared genesis, voting weight delegated to online
representatives, user accounts opened on their wallets' nodes.  This
module packages those steps so experiments and examples stay readable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.types import Address
from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.protocol import protocol_nodes
from repro.sim.simulator import Simulator
from repro.trace import Tracer
from repro.dag.blocks import NanoBlock
from repro.dag.node import NanoNode
from repro.dag.params import NanoParams


@dataclass
class NanoTestbed:
    """A ready-to-run Nano deployment."""

    simulator: Simulator
    network: Network
    nodes: List[NanoNode]
    genesis_key: KeyPair
    genesis_block: NanoBlock
    representatives: List[KeyPair]
    #: user account -> node holding its key
    wallets: Dict[Address, NanoNode] = field(default_factory=dict)

    def node_for(self, account: Address) -> NanoNode:
        return self.wallets[account]

    def representative_nodes(self) -> List[NanoNode]:
        return [n for n in self.nodes if n.is_representative]


def build_nano_testbed(
    node_count: int = 8,
    representative_count: int = 4,
    supply: int = 10**15,
    params: Optional[NanoParams] = None,
    link_params: Optional[LinkParams] = None,
    seed: int = 0,
    topology: Optional[Callable[..., List[NanoNode]]] = None,
    auto_receive: bool = True,
    processing_tps: Optional[float] = None,
    tracer: Optional[Tracer] = None,
    network_factory: Optional[Callable[[Simulator], Network]] = None,
) -> NanoTestbed:
    """Stand up a Nano network with online, weighted representatives.

    The first ``representative_count`` nodes hold representative keys; the
    genesis account delegates its entire weight to the first
    representative, then the harness typically spreads balances (and thus
    weight) with :func:`fund_accounts`.

    ``tracer`` is forwarded to the :class:`Network`; untraced throughput
    sweeps pass a :class:`repro.trace.NullTracer` to skip trace-record
    construction on the gossip hot path.  ``network_factory`` swaps the
    message plane (e.g. the sharded tier) — when given, it owns tracer
    wiring and the ``tracer`` argument must be None.
    """
    if representative_count > node_count:
        raise ValueError("cannot have more representatives than nodes")
    params = params or NanoParams(work_difficulty=1)
    rng = random.Random(seed)
    simulator = Simulator(seed=seed)
    if network_factory is not None:
        if tracer is not None:
            raise ValueError("pass the tracer through network_factory")
        network = network_factory(simulator)
    else:
        network = Network(simulator, tracer=tracer)

    rep_keys = [KeyPair.generate(rng) for _ in range(representative_count)]

    def factory(node_id: str) -> NanoNode:
        index = int(node_id[1:])
        rep_key = rep_keys[index] if index < representative_count else None
        return NanoNode(
            node_id,
            params,
            representative_key=rep_key,
            auto_receive=auto_receive,
            processing_tps=processing_tps,
        )

    build = topology or complete_topology
    nodes = build(network, node_count, factory, link_params or LinkParams())
    # Filter on the stack interface; the factory fixes the node type.
    nano_nodes = protocol_nodes(nodes)

    genesis_key = KeyPair.generate(rng)
    first_rep = rep_keys[0].address if rep_keys else genesis_key.address
    genesis_block = nano_nodes[0].lattice.create_genesis(
        genesis_key, supply, representative=first_rep
    )
    nano_nodes[0].add_account(genesis_key)
    for node in nano_nodes[1:]:
        node.lattice.install_genesis(genesis_block)

    online_reps = [k.address for k in rep_keys] or [genesis_key.address]
    for node in nano_nodes:
        for rep in online_reps:
            node.lattice.reps.set_online(rep)

    return NanoTestbed(
        simulator=simulator,
        network=network,
        nodes=nano_nodes,
        genesis_key=genesis_key,
        genesis_block=genesis_block,
        representatives=rep_keys,
    )


def fund_accounts(
    testbed: NanoTestbed,
    count: int,
    amount: int,
    rng: Optional[random.Random] = None,
    settle_time: float = 5.0,
) -> List[KeyPair]:
    """Create ``count`` user accounts, each funded with ``amount``.

    Accounts are assigned round-robin to nodes (their wallets); each gets
    an open block delegating to that node's representative (or the first
    representative).  Runs the simulator long enough for sends and the
    auto-generated receives to settle.
    """
    rng = rng or random.Random(12345)
    genesis_node = testbed.nodes[0]
    genesis_account = testbed.genesis_key.address
    users: List[KeyPair] = []
    for i in range(count):
        user = KeyPair.generate(rng)
        wallet = testbed.nodes[i % len(testbed.nodes)]
        wallet.add_account(user)
        testbed.wallets[user.address] = wallet
        users.append(user)
        genesis_node.send_payment(genesis_account, user.address, amount)
        # Let each send propagate before the next spends the new head.
        testbed.simulator.run(until=testbed.simulator.now + settle_time)
    return users
