"""Nano-style block-lattice DAG (Sections II-B, III-B, IV-B, V-B, VI-B).

Every account owns its own chain; a node in the DAG holds exactly one
transaction.  Transfers take a *send* block on the sender's chain and a
matching *receive* block on the recipient's chain.  Conflicts are
resolved by weighted representative voting (Open Representative Voting),
not leader election.
"""

from repro.dag.blocks import BlockType, NanoBlock, make_change, make_open, make_receive, make_send
from repro.dag.byteball import ByteballDag, Unit, make_unit
from repro.dag.byteball_node import ByteballNode
from repro.dag.lattice import Lattice, PendingInfo
from repro.dag.node import NanoNode
from repro.dag.params import NANO, NanoParams
from repro.dag.representatives import RepresentativeLedger
from repro.dag.tangle import Tangle, TangleTransaction, issue_transaction
from repro.dag.tangle_node import TangleNode
from repro.dag.voting import Election, ElectionManager, Vote

__all__ = [
    "BlockType",
    "ByteballDag",
    "ByteballNode",
    "Election",
    "ElectionManager",
    "Lattice",
    "NANO",
    "NanoBlock",
    "NanoNode",
    "NanoParams",
    "PendingInfo",
    "RepresentativeLedger",
    "Tangle",
    "TangleNode",
    "TangleTransaction",
    "Unit",
    "Vote",
    "issue_transaction",
    "make_unit",
    "make_change",
    "make_open",
    "make_receive",
    "make_send",
]
