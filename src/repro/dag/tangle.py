"""An IOTA-style tangle (paper footnote 1: "Other DAG approaches are
IOTA and Byteball").

Where Nano gives every *account* its own chain, the tangle is one shared
DAG: each new transaction approves two previous transactions (its
*trunk* and *branch*), contributing its weight to everything it directly
or indirectly approves.  Confirmation confidence is structural — the
probability that a freshly selected tip references your transaction —
rather than voted (Nano) or depth-based (blockchain), which makes the
tangle a useful third point on the paper's Section IV comparison axis.

Implemented here: transaction issuance with per-transaction anti-spam
PoW, uniform and biased-random-walk (MCMC, parameter alpha) tip
selection, cumulative weight, and sampling-based confirmation
confidence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from repro.common.memo import cached
from typing import Dict, List, Optional, Set, Tuple

from repro.common.encoding import encode_bytes, encode_uint
from repro.common.errors import UnknownParentError, ValidationError
from repro.common.types import Hash
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair, verify_signature
from repro.crypto.pow import check_antispam, solve_antispam


@dataclass(frozen=True)
class TangleTransaction:
    """One site of the tangle: a payload approving two predecessors."""

    trunk: Hash
    branch: Hash
    payload: bytes
    timestamp: float
    public_key: bytes = b""
    signature: bytes = b""
    work: int = 0

    def _signed_body(self) -> bytes:
        return (
            bytes(self.trunk)
            + bytes(self.branch)
            + encode_bytes(self.payload)
            + encode_uint(int(self.timestamp * 1000), 8)
        )

    @cached
    def tx_hash(self) -> Hash:
        return sha256(self._signed_body())

    def serialize(self) -> bytes:
        return self._signed_body() + self.signature.ljust(64, b"\x00") + encode_uint(
            self.work, 8
        )

    @property
    def size_bytes(self) -> int:
        return len(self.serialize())

    @property
    def is_genesis(self) -> bool:
        return self.trunk.is_zero() and self.branch.is_zero()

    def verify_signature(self) -> bool:
        return verify_signature(self.public_key, bytes(self.tx_hash), self.signature)

    def signature_item(self) -> tuple:
        """Triple for :func:`repro.crypto.keys.verify_signatures_batch`."""
        return (self.public_key, bytes(self.tx_hash), self.signature)

    def verify_work(self, difficulty: float) -> bool:
        return check_antispam(bytes(self.trunk) + bytes(self.branch), self.work, difficulty)


def issue_transaction(
    keypair: KeyPair,
    trunk: Hash,
    branch: Hash,
    payload: bytes,
    timestamp: float,
    work_difficulty: Optional[float] = None,
) -> TangleTransaction:
    """Create a signed, work-stamped transaction approving two parents."""
    unsigned = TangleTransaction(
        trunk=trunk, branch=branch, payload=payload, timestamp=timestamp
    )
    signature = keypair.sign(bytes(unsigned.tx_hash))
    work = (
        solve_antispam(bytes(trunk) + bytes(branch), work_difficulty)
        if work_difficulty is not None
        else 0
    )
    return TangleTransaction(
        trunk=trunk,
        branch=branch,
        payload=payload,
        timestamp=timestamp,
        public_key=keypair.public_key,
        signature=signature,
        work=work,
    )


class Tangle:
    """The shared DAG with tip selection and confirmation confidence."""

    def __init__(self, work_difficulty: float = 1.0) -> None:
        self.work_difficulty = work_difficulty
        self._txs: Dict[Hash, TangleTransaction] = {}
        self._approvers: Dict[Hash, List[Hash]] = {}
        self._tips: Set[Hash] = set()
        self.genesis_hash: Optional[Hash] = None

    # --------------------------------------------------------------- genesis

    def create_genesis(self, keypair: KeyPair) -> TangleTransaction:
        if self.genesis_hash is not None:
            raise ValidationError("tangle already has a genesis")
        genesis = issue_transaction(
            keypair, Hash.zero(), Hash.zero(), b"genesis", 0.0, work_difficulty=None
        )
        self._txs[genesis.tx_hash] = genesis
        self._approvers[genesis.tx_hash] = []
        self._tips = {genesis.tx_hash}
        self.genesis_hash = genesis.tx_hash
        return genesis

    # ----------------------------------------------------------------- reads

    def __contains__(self, tx_hash: Hash) -> bool:
        return tx_hash in self._txs

    def __len__(self) -> int:
        return len(self._txs)

    def transaction(self, tx_hash: Hash) -> TangleTransaction:
        return self._txs[tx_hash]

    def tips(self) -> List[Hash]:
        """Transactions not yet approved by anyone."""
        return sorted(self._tips)  # sorted for determinism

    def approvers(self, tx_hash: Hash) -> List[Hash]:
        return list(self._approvers.get(tx_hash, []))

    def serialized_size(self) -> int:
        return sum(tx.size_bytes for tx in self._txs.values())

    # -------------------------------------------------------------- mutation

    def attach(self, tx: TangleTransaction) -> None:
        """Validate and insert a transaction."""
        if self.genesis_hash is None:
            raise ValidationError("create the genesis first")
        if tx.tx_hash in self._txs:
            raise ValidationError(f"duplicate transaction {tx.tx_hash.short()}")
        if tx.is_genesis:
            raise ValidationError("only one genesis allowed")
        for parent in (tx.trunk, tx.branch):
            if parent not in self._txs:
                raise UnknownParentError(
                    f"approved transaction {parent.short()} is unknown"
                )
        if not tx.verify_signature():
            raise ValidationError("invalid signature")
        if self.work_difficulty > 1 and not tx.verify_work(self.work_difficulty):
            raise ValidationError("insufficient anti-spam work")

        self._txs[tx.tx_hash] = tx
        self._approvers[tx.tx_hash] = []
        for parent in {tx.trunk, tx.branch}:
            self._approvers[parent].append(tx.tx_hash)
            self._tips.discard(parent)
        self._tips.add(tx.tx_hash)

    # --------------------------------------------------------------- weights

    def cumulative_weight(self, tx_hash: Hash) -> int:
        """Own weight plus the weight of everything approving this tx —
        the tangle's security metric (more approvers = harder to drop)."""
        if tx_hash not in self._txs:
            raise UnknownParentError(f"unknown transaction {tx_hash.short()}")
        seen: Set[Hash] = set()
        stack = [tx_hash]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._approvers[current])
        return len(seen)

    def past_cone(self, tx_hash: Hash) -> Set[Hash]:
        """Everything this transaction directly or indirectly approves."""
        seen: Set[Hash] = set()
        stack = [tx_hash]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            tx = self._txs[current]
            if not tx.is_genesis:
                stack.extend([tx.trunk, tx.branch])
        return seen

    # ----------------------------------------------------------- tip choice

    def select_tips_uniform(self, rng: random.Random) -> Tuple[Hash, Hash]:
        """Uniform random tip selection (IOTA's simplest strategy)."""
        tips = self.tips()
        return rng.choice(tips), rng.choice(tips)

    def select_tips_mcmc(
        self, rng: random.Random, alpha: float = 0.01, walkers: int = 2
    ) -> Tuple[Hash, Hash]:
        """Biased random walks from genesis toward tips.

        At each step the walk moves to an approver with probability
        proportional to ``exp(alpha * cumulative_weight)``; higher alpha
        concentrates selection on the heavy subtangle (more secure, but
        leaves honest latecomer tips behind — the trade-off the A4 bench
        measures).
        """
        import math

        assert self.genesis_hash is not None
        weights = self._all_cumulative_weights()

        def walk() -> Hash:
            current = self.genesis_hash
            while True:
                approvers = self._approvers[current]
                if not approvers:
                    return current
                if len(approvers) == 1:
                    current = approvers[0]
                    continue
                exps = [math.exp(alpha * weights[a]) for a in approvers]
                total = sum(exps)
                point = rng.random() * total
                cumulative = 0.0
                for candidate, weight in zip(approvers, exps):
                    cumulative += weight
                    if point < cumulative:
                        current = candidate
                        break

        selections = [walk() for _ in range(max(walkers, 2))]
        return selections[0], selections[1]

    def _all_cumulative_weights(self) -> Dict[Hash, int]:
        """Cumulative weight of every site in one reverse-topological pass."""
        # Future-set sizes computed by propagating approver sets is
        # O(n^2) worst case; fine at simulation scale.
        order = self._topological_order()
        future: Dict[Hash, Set[Hash]] = {h: set() for h in order}
        for tx_hash in reversed(order):
            for approver in self._approvers[tx_hash]:
                future[tx_hash].add(approver)
                future[tx_hash] |= future[approver]
        return {h: len(f) + 1 for h, f in future.items()}

    def _topological_order(self) -> List[Hash]:
        assert self.genesis_hash is not None
        in_degree: Dict[Hash, int] = {}
        for tx_hash, tx in self._txs.items():
            if tx.is_genesis:
                in_degree[tx_hash] = 0
            else:
                in_degree[tx_hash] = len({tx.trunk, tx.branch})
        ready = [h for h, d in in_degree.items() if d == 0]
        order: List[Hash] = []
        while ready:
            current = ready.pop()
            order.append(current)
            for approver in self._approvers[current]:
                tx = self._txs[approver]
                in_degree[approver] -= 1
                if in_degree[approver] == 0:
                    ready.append(approver)
        if len(order) != len(self._txs):  # pragma: no cover - acyclic by construction
            raise ValidationError("tangle contains a cycle")
        return order

    # ------------------------------------------------------------ confidence

    def confirmation_confidence(
        self, tx_hash: Hash, rng: random.Random, samples: int = 50, alpha: float = 0.01
    ) -> float:
        """Fraction of sampled tip selections whose past cone contains
        ``tx_hash`` — IOTA's confirmation confidence."""
        if tx_hash not in self._txs:
            raise UnknownParentError(f"unknown transaction {tx_hash.short()}")
        hits = 0
        for _ in range(samples):
            tip, _ = self.select_tips_mcmc(rng, alpha=alpha)
            if tx_hash in self.past_cone(tip):
                hits += 1
        return hits / samples

    def left_behind_tips(self, reference_weight: int = 3) -> List[Hash]:
        """Tips whose cumulative weight stayed at 1 while the tangle grew —
        candidates for re-attachment (the 'lazy tip' problem)."""
        weights = self._all_cumulative_weights()
        heavy = max(weights.values())
        return [
            h for h in self._tips if weights[h] == 1 and heavy >= reference_weight
        ]
