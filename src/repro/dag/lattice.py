"""The block-lattice ledger (Figure 2 of the paper).

A :class:`Lattice` is the set of all account chains plus the *pending*
table of unsettled sends.  Processing a block validates it against its
account chain, updates balances and representative weights, and detects
forks — "two transactions may claim the same predecessor causing a fork
(forks in Nano are only possible as a result of a malicious attack or bad
programming)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.errors import (
    CementedBlockError,
    ForkDetectedError,
    PrunedHistoryError,
    ValidationError,
)
from repro.common.types import Address, Hash
from repro.crypto.keys import KeyPair, address_of, prewarm_signatures
from repro.dag.blocks import BlockType, NanoBlock, make_open
from repro.dag.params import NanoParams
from repro.dag.representatives import RepresentativeLedger


@dataclass(frozen=True)
class PendingInfo:
    """An unsettled send awaiting its receive (Figure 3's 'S' half)."""

    source_hash: Hash
    source_account: Address
    destination: Address
    amount: int


@dataclass
class AccountChain:
    """One account's dedicated chain — "a dedicated blockchain, just for
    a single account"."""

    account: Address
    blocks: List[NanoBlock] = field(default_factory=list)

    @property
    def head(self) -> NanoBlock:
        return self.blocks[-1]

    @property
    def height(self) -> int:
        return len(self.blocks)

    @property
    def balance(self) -> int:
        return self.head.balance if self.blocks else 0

    @property
    def representative(self) -> Address:
        return self.head.representative

    def block_at(self, index: int) -> NanoBlock:
        return self.blocks[index]


class Lattice:
    """All account chains, the pending table, and cementing state."""

    def __init__(self, params: Optional[NanoParams] = None) -> None:
        self.params = params or NanoParams()
        self._chains: Dict[Address, AccountChain] = {}
        self._blocks: Dict[Hash, NanoBlock] = {}
        self._pending: Dict[Hash, PendingInfo] = {}
        #: destination -> {send hash -> pending info}; kept consistent with
        #: ``_pending`` on every add/settle/rollback so the receive hot
        #: path (:meth:`pending_for`) is a dict hit, not a table scan.
        self._pending_by_dest: Dict[Address, Dict[Hash, PendingInfo]] = {}
        self._settled: Dict[Hash, Hash] = {}  # send hash -> receive hash
        self._cemented: set = set()
        #: per-account count of chain blocks already cemented (a frontier
        #: index into ``AccountChain.blocks`` — cementing is monotone)
        self._cement_frontier: Dict[Address, int] = {}
        self.reps = RepresentativeLedger()
        self.genesis_account: Optional[Address] = None
        self.forks_detected = 0

    # --------------------------------------------------------------- genesis

    def create_genesis(
        self,
        keypair: KeyPair,
        supply: int,
        representative: Optional[Address] = None,
    ) -> NanoBlock:
        """Mint the initial state — "a DAG holds a genesis transaction"."""
        if self.genesis_account is not None:
            raise ValidationError("lattice already has a genesis")
        genesis = make_open(
            keypair,
            source=Hash.zero(),
            amount=supply,
            representative=representative or keypair.address,
            work_difficulty=None,
        )
        self.genesis_account = keypair.address
        self._append(genesis)
        self.cement(genesis.block_hash)
        return genesis

    def install_genesis(self, genesis: NanoBlock) -> None:
        """Adopt an externally created genesis block (replica bootstrap).

        Every replica of the ledger starts from the same hard-coded
        genesis transaction; this verifies and installs it.
        """
        if self.genesis_account is not None:
            raise ValidationError("lattice already has a genesis")
        if genesis.block_type != BlockType.OPEN or not genesis.previous.is_zero():
            raise ValidationError("genesis must be an open block with no predecessor")
        if not genesis.verify_signature():
            raise ValidationError("genesis signature is invalid")
        self.genesis_account = genesis.account
        self._append(genesis)
        self.cement(genesis.block_hash)

    def install_frontier(
        self,
        heads: List[NanoBlock],
        pending: List[PendingInfo],
    ) -> int:
        """Adopt a checkpoint: one head block per account chain plus the
        pending table, without replaying history (live fast-sync).

        This is how a joining replica syncs from a *pruned* peer whose
        old blocks are gone — ``NanoNode.bootstrap_from`` would park the
        heads forever waiting on pruned predecessors.  Installed heads
        are cemented (they come from a checkpoint, not an election).
        Returns the number of chains installed.
        """
        installed = 0
        fresh = [
            head for head in heads
            if head.account not in self._chains
            and head.block_hash not in self._blocks
        ]
        if len(fresh) > 1:
            # Burst path: verify the whole checkpoint in one batch pass so
            # the scalar per-head checks below all hit the sigcache.
            prewarm_signatures([head.signature_item() for head in fresh])
        for head in heads:
            if head.account in self._chains or head.block_hash in self._blocks:
                continue  # already have (some of) this chain: keep ours
            if not head.verify_signature():
                raise ValidationError(
                    f"checkpoint head {head.block_hash.short()} has an "
                    "invalid signature"
                )
            self._append(head)
            self.cement(head.block_hash)
            installed += 1
        for info in pending:
            if info.source_hash in self._pending or info.source_hash in self._settled:
                continue
            self._pending_add(info)
        return installed

    # ---------------------------------------------------------------- reads

    def __contains__(self, block_hash: Hash) -> bool:
        return block_hash in self._blocks

    def block(self, block_hash: Hash) -> NanoBlock:
        try:
            return self._blocks[block_hash]
        except KeyError:
            raise PrunedHistoryError(f"unknown or pruned block {block_hash.short()}") from None

    def chain(self, account: Address) -> Optional[AccountChain]:
        return self._chains.get(account)

    def balance(self, account: Address) -> int:
        chain = self._chains.get(account)
        return chain.balance if chain else 0

    def account_count(self) -> int:
        return len(self._chains)

    def accounts(self) -> Iterator[Address]:
        """Every account with a chain on this replica (snapshot: safe to
        process/rollback while iterating)."""
        return iter(list(self._chains))

    def chains(self) -> Iterator[AccountChain]:
        """Every account chain on this replica (snapshot iterator)."""
        return iter(list(self._chains.values()))

    def block_count(self) -> int:
        return len(self._blocks)

    def pending_for(self, destination: Address) -> List[PendingInfo]:
        """Unsettled sends addressed to ``destination`` (Figure 3)."""
        bucket = self._pending_by_dest.get(destination)
        return list(bucket.values()) if bucket else []

    def pending_count(self) -> int:
        return len(self._pending)

    def is_settled(self, send_hash: Hash) -> bool:
        """A send is settled once its receive is processed (Section II-B)."""
        return send_hash in self._settled

    def is_cemented(self, block_hash: Hash) -> bool:
        return block_hash in self._cemented

    def total_supply(self) -> int:
        """Balances on chain heads plus value parked in pending sends."""
        on_chains = sum(chain.balance for chain in self._chains.values())
        in_flight = sum(p.amount for p in self._pending.values())
        return on_chains + in_flight

    def serialized_size(self) -> int:
        return sum(block.size_bytes for block in self._blocks.values())

    # ---------------------------------------------------- pending upkeep

    def _pending_add(self, info: PendingInfo) -> None:
        self._pending[info.source_hash] = info
        self._pending_by_dest.setdefault(info.destination, {})[
            info.source_hash
        ] = info

    def _pending_remove(self, source_hash: Hash) -> Optional[PendingInfo]:
        info = self._pending.pop(source_hash, None)
        if info is not None:
            bucket = self._pending_by_dest.get(info.destination)
            if bucket is not None:
                bucket.pop(source_hash, None)
                if not bucket:
                    del self._pending_by_dest[info.destination]
        return info

    # -------------------------------------------------------------- process

    def process(self, block: NanoBlock, check_work: bool = True) -> None:
        """Validate and append one block to its account chain.

        Raises :class:`ForkDetectedError` when the block claims a
        predecessor that already has a successor — the condition that
        triggers representative voting (Section III-B/IV-B).
        """
        if block.block_hash in self._blocks:
            raise ValidationError(f"duplicate block {block.block_hash.short()}")
        if check_work and not block.verify_work(self.params.work_difficulty):
            raise ValidationError(
                f"block {block.block_hash.short()} fails anti-spam work"
            )
        if not block.verify_signature():
            raise ValidationError(
                f"block {block.block_hash.short()} has an invalid signature"
            )
        if address_of(block.public_key) != block.account:
            raise ValidationError("signing key does not own the account")

        if block.block_type == BlockType.OPEN:
            self._process_open(block)
        else:
            self._process_successor(block)

    def _process_open(self, block: NanoBlock) -> None:
        if block.account in self._chains:
            existing = self._chains[block.account].blocks[0]
            self.forks_detected += 1
            raise ForkDetectedError(
                f"account {block.account.short()} already opened by "
                f"{existing.block_hash.short()}"
            )
        pending = self._pending.get(block.source)
        if pending is None:
            raise ValidationError(
                f"open block references no pending send {block.source.short()}"
            )
        if pending.destination != block.account:
            raise ValidationError("pending send addressed to a different account")
        if block.balance != pending.amount:
            raise ValidationError(
                f"open balance {block.balance} != pending amount {pending.amount}"
            )
        self._pending_remove(block.source)
        self._settled[block.source] = block.block_hash
        self._append(block)

    def _process_successor(self, block: NanoBlock) -> None:
        chain = self._chains.get(block.account)
        if chain is None:
            raise ValidationError(
                f"account {block.account.short()} has no chain (missing open block)"
            )
        head = chain.head
        if block.previous != head.block_hash:
            if block.previous in self._blocks:
                # Predecessor exists but already has a successor: a fork.
                self.forks_detected += 1
                successor = self._successor_of(block.account, block.previous)
                raise ForkDetectedError(
                    f"block {block.block_hash.short()} conflicts with "
                    f"{successor.block_hash.short()} over predecessor "
                    f"{block.previous.short()}"
                )
            # Predecessor never seen: the "transaction may not have been
            # properly broadcasted" case — caller may retry later.
            raise ValidationError(
                f"unknown predecessor {block.previous.short()} "
                f"(network ignores subsequent transactions)"
            )

        if block.block_type == BlockType.SEND:
            amount = head.balance - block.balance
            if amount <= 0:
                raise ValidationError("send must strictly decrease the balance")
            self._append(block)
            self._pending_add(PendingInfo(
                source_hash=block.block_hash,
                source_account=block.account,
                destination=block.destination,
                amount=amount,
            ))
        elif block.block_type == BlockType.RECEIVE:
            pending = self._pending.get(block.source)
            if pending is None:
                raise ValidationError(
                    f"receive references no pending send {block.source.short()}"
                )
            if pending.destination != block.account:
                raise ValidationError("pending send addressed to a different account")
            if block.balance != head.balance + pending.amount:
                raise ValidationError("receive balance arithmetic is wrong")
            self._pending_remove(block.source)
            self._settled[block.source] = block.block_hash
            self._append(block)
        elif block.block_type == BlockType.CHANGE:
            if block.balance != head.balance:
                raise ValidationError("change blocks must not move value")
            self._append(block)
        else:  # pragma: no cover - enum is exhaustive
            raise ValidationError(f"unknown block type {block.block_type}")

    def _append(self, block: NanoBlock) -> None:
        chain = self._chains.setdefault(block.account, AccountChain(block.account))
        chain.blocks.append(block)
        self._blocks[block.block_hash] = block
        self.reps.set_account(block.account, block.balance, block.representative)

    def _successor_of(self, account: Address, previous: Hash) -> NanoBlock:
        chain = self._chains[account]
        for i, blk in enumerate(chain.blocks):
            if blk.block_hash == previous:
                return chain.blocks[i + 1]
        raise ValidationError("no successor found")  # pragma: no cover

    # ------------------------------------------------------------- rollback

    def rollback(self, block_hash: Hash) -> List[NanoBlock]:
        """Remove a block and everything after it on its account chain.

        Used when an election resolves *against* a previously accepted
        block.  Cemented blocks cannot be rolled back (Section IV-B).
        Returns the removed blocks, newest first.
        """
        block = self.block(block_hash)
        if block.block_hash in self._cemented:
            raise CementedBlockError(
                f"block {block_hash.short()} is cemented and final"
            )
        chain = self._chains[block.account]
        try:
            index = next(
                i for i, b in enumerate(chain.blocks) if b.block_hash == block_hash
            )
        except StopIteration:  # pragma: no cover - guarded by self.block()
            raise ValidationError("block not on its account chain") from None

        removed: List[NanoBlock] = []
        for victim in reversed(chain.blocks[index:]):
            if victim.block_hash not in self._blocks:
                continue  # already removed by a cascading rollback below
            if victim.block_hash in self._cemented:
                raise CementedBlockError(
                    f"cannot roll back past cemented {victim.block_hash.short()}"
                )
            removed.append(victim)
            del self._blocks[victim.block_hash]
            if victim.block_type == BlockType.SEND:
                settled_receive = self._settled.pop(victim.block_hash, None)
                if settled_receive is not None and settled_receive in self._blocks:
                    # The send's value already settled onto the
                    # destination chain.  Cascade so the receive (and its
                    # successors) are rolled back too — otherwise the
                    # sender's balance is restored while the recipient
                    # keeps the credit, duplicating the amount.
                    removed.extend(self.rollback(settled_receive))
                self._pending_remove(victim.block_hash)
            elif victim.block_type in (BlockType.RECEIVE, BlockType.OPEN):
                settled_receive = self._settled.get(Hash(victim.link))
                if settled_receive == victim.block_hash:
                    del self._settled[Hash(victim.link)]
                    source = self._blocks.get(Hash(victim.link))
                    if source is not None and source.block_type == BlockType.SEND:
                        prev = self._predecessor_balance(source)
                        self._pending_add(PendingInfo(
                            source_hash=source.block_hash,
                            source_account=source.account,
                            destination=source.destination,
                            amount=prev - source.balance,
                        ))
        del chain.blocks[index:]
        if chain.blocks:
            head = chain.head
            self.reps.set_account(head.account, head.balance, head.representative)
        else:
            del self._chains[block.account]
            self.reps.remove_account(block.account)
        return removed

    def _predecessor_balance(self, block: NanoBlock) -> int:
        if block.previous.is_zero():
            return 0
        return self._blocks[block.previous].balance

    # ------------------------------------------------------------- cementing

    def cement(self, block_hash: Hash) -> None:
        """Mark a block irreversible (the planned Nano feature, Section
        IV-B).  Cementing is monotone along each chain: all predecessors
        are cemented too.

        Monotonicity makes this incremental: each chain records how far
        it is cemented, so a call walks only the blocks newly cemented
        instead of rescanning from genesis (which made repeated cementing
        quadratic in chain length)."""
        if block_hash in self._cemented:
            return
        block = self.block(block_hash)
        chain = self._chains[block.account]
        # Rollback may have shortened the chain below the recorded frontier.
        start = min(self._cement_frontier.get(block.account, 0),
                    len(chain.blocks))
        cemented = self._cemented
        for index in range(start, len(chain.blocks)):
            blk = chain.blocks[index]
            cemented.add(blk.block_hash)
            if blk.block_hash == block_hash:
                self._cement_frontier[block.account] = index + 1
                return
        self._cement_frontier[block.account] = len(chain.blocks)

    def cemented_count(self) -> int:
        return len(self._cemented)
