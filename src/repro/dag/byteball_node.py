"""A networked Byteball-style participant.

Wraps :class:`repro.dag.byteball.ByteballDag` in a
:class:`~repro.protocol.node.ProtocolNode`, completing the fourth
paradigm on the shared stack: units gossip through the transport layer,
out-of-order arrivals park in the intake layer until every referenced
parent shows up, and issuance references tips from the node's *local*
view — ordering then comes from the witnessed main chain, not from the
issuer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.errors import ReproError
from repro.common.types import Address, Hash
from repro.crypto.keys import KeyPair
from repro.net.message import Message
from repro.protocol import DEFAULT_INTAKE_CAPACITY, ConsensusEngine, ProtocolNode
from repro.dag.byteball import ByteballDag, Unit, make_unit

MSG_BB_UNIT = "bb_unit"


@dataclass
class ByteballNodeStats:
    issued: int = 0
    processed: int = 0
    parked: int = 0


class ByteballConsensus(ConsensusEngine):
    """Witnessed main-chain total ordering (paper footnote 1).

    A unit referencing any not-yet-seen parent parks under the first
    missing one; when that parent integrates, the intake layer retries
    the unit (and finds the next missing parent, if another remains).
    """

    paradigm = "dag-witnessed"

    def __init__(self, node: "ByteballNode") -> None:
        self._node = node

    def artifact_key(self, unit: Unit) -> Hash:
        return unit.unit_hash

    def is_known(self, key: Hash) -> bool:
        return key in self._node.dag

    def missing_dependency(self, unit: Unit) -> Optional[Hash]:
        dag = self._node.dag
        for parent in unit.parents:
            if parent not in dag:
                return parent
        return None

    def integrate(self, unit: Unit) -> bool:
        try:
            self._node.dag.attach(unit)
        except ReproError:
            return False
        return True

    def on_applied(self, unit: Unit) -> None:
        self._node.stats.processed += 1

    def signature_items(self, unit: Unit):
        return (unit.signature_item(),)


class ByteballNode(ProtocolNode):
    """Full witnessed-DAG node: replica + gossip + local tip references."""

    def __init__(
        self,
        node_id: str,
        witnesses: Sequence[Address],
        stability_depth: int = 3,
        max_parents: int = 2,
        intake_capacity: Optional[int] = DEFAULT_INTAKE_CAPACITY,
    ) -> None:
        super().__init__(node_id, intake_capacity=intake_capacity)
        self.dag = ByteballDag(witnesses, stability_depth=stability_depth)
        self.max_parents = max_parents
        self.stats = ByteballNodeStats()
        self.consensus = ByteballConsensus(self)

    # --------------------------------------------------------------- genesis

    def seed_genesis(self, keypair: KeyPair) -> Unit:
        return self.dag.create_genesis(keypair)

    def install_genesis(self, genesis: Unit) -> None:
        """Adopt the shared genesis on a fresh replica."""
        self.dag.install_genesis(genesis)

    # -------------------------------------------------------------- issuance

    def select_parents(self) -> List[Hash]:
        """The best tip plus up to ``max_parents - 1`` further tips, so
        each new unit both advances the witnessed main chain and merges
        side branches (tips are sorted — deterministic across replicas)."""
        best = self.dag.best_tip()
        parents = [best]
        for tip in self.dag.tips():
            if len(parents) >= self.max_parents:
                break
            if tip != best:
                parents.append(tip)
        return parents

    def issue(self, keypair: KeyPair, payload: bytes) -> Unit:
        """Create a unit referencing locally selected tips."""
        if self.network is None:
            raise RuntimeError("attach the node to a network first")
        unit = make_unit(
            keypair,
            self.select_parents(),
            payload,
            timestamp=self.network.simulator.now,
        )
        self.dag.attach(unit)
        self.stats.issued += 1
        self.transport.publish(unit, self._unit_message(unit))
        return unit

    def _unit_message(self, unit: Unit) -> Message:
        return Message(
            kind=MSG_BB_UNIT,
            payload=unit,
            size_bytes=unit.size_bytes,
            dedup_key=unit.unit_hash,
        )

    # --------------------------------------------------------------- gossip

    def handle_message(self, sender_id: str, message: Message) -> None:
        if message.kind == MSG_BB_UNIT:
            self.ingest_quietly(message.payload)

    def message_signature_items(self, message: Message):
        if message.kind == MSG_BB_UNIT:
            return (message.payload.signature_item(),)
        return ()

    def on_parked(self, unit: Unit, missing: Hash) -> None:
        self.stats.parked += 1

    def retains_artifact(self, unit: Unit) -> bool:
        return unit.unit_hash in self.dag

    # --------------------------------------------------------------- queries

    def is_stable(self, unit_hash: Hash) -> bool:
        """Irreversible per the witnessed main chain (total-order depth)."""
        return self.dag.is_stable(unit_hash)
