"""Protocol constants for the DAG reference implementation (Nano)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.pow import DEFAULT_ANTISPAM_DIFFICULTY


@dataclass(frozen=True)
class NanoParams:
    """Nano deployment parameters.

    ``work_difficulty`` is the hashcash anti-spam threshold per block
    (Section III-B).  ``quorum_fraction`` is the share of online voting
    weight required to confirm a block (Section IV-B: "majority vote").
    ``cement_after_s`` models the planned block-cementing delay
    ("transactions ... prevented from being rolled back after a certain
    period of time").
    """

    name: str = "nano"
    work_difficulty: float = DEFAULT_ANTISPAM_DIFFICULTY
    quorum_fraction: float = 0.5
    vote_rebroadcast: bool = True
    cement_after_s: float = 10.0
    #: Per-node processing capacity, transactions/second — the Section
    #: VI-B point that Nano's limit "is currently determined by the
    #: quality of consumer grade hardware and network conditions".
    node_processing_tps: float = 400.0

    def __post_init__(self) -> None:
        if not 0 < self.quorum_fraction <= 1:
            raise ValueError("quorum fraction must be in (0, 1]")
        if self.work_difficulty < 1:
            raise ValueError("work difficulty must be >= 1")


#: Default preset used throughout the benches.
NANO = NanoParams()

#: Preset with negligible anti-spam work, for throughput experiments where
#: client-side work generation should not be the bottleneck.
NANO_FAST = NanoParams(name="nano-fast", work_difficulty=1)
