"""Open Representative Voting (Sections III-B and IV-B).

"Representatives vote in order to resolve conflicts.  Their votes are
weighted ... the winning transaction is the one that gained the most
votes with regards to the voters' weight."  Beyond conflicts,
"representatives vote automatically on blocks they have not seen before",
so consensus information piggybacks on normal propagation — a block is
*confirmed* once votes for it exceed the quorum share of online weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.common.memo import cached
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ValidationError
from repro.common.types import Address, Hash
from repro.crypto.keys import verify_signature
from repro.dag.representatives import RepresentativeLedger


@dataclass(frozen=True)
class Vote:
    """A representative's signed endorsement of one block.

    ``sequence`` orders a representative's votes; a later vote for a
    competing block in the same election replaces the earlier one (reps
    may switch to the emerging winner).
    """

    representative: Address
    block_hash: Hash
    sequence: int
    public_key: bytes = b""
    signature: bytes = b""

    @cached
    def _payload(self) -> bytes:
        # Votes are immutable and verified by every replica that hears
        # them; build the signed body once per object.
        return bytes(self.representative) + bytes(self.block_hash) + self.sequence.to_bytes(
            8, "big"
        )

    def signed_payload(self) -> bytes:
        return self._payload

    def signature_item(self) -> Tuple[bytes, bytes, bytes]:
        """Triple for :func:`repro.crypto.keys.verify_signatures_batch`."""
        return (self.public_key, self._payload, self.signature)

    def verify(self) -> bool:
        if not self.signature:
            return False
        return verify_signature(self.public_key, self._payload, self.signature)

    @property
    def size_bytes(self) -> int:
        return len(self.signed_payload()) + 64 + 32


@dataclass
class Election:
    """Tally for one conflict set: blocks competing for one predecessor."""

    root: Tuple[Address, Hash]  # (account, contested predecessor)
    candidates: Set[Hash] = field(default_factory=set)
    #: representative -> (block voted for, vote sequence)
    votes: Dict[Address, Tuple[Hash, int]] = field(default_factory=dict)
    winner: Optional[Hash] = None

    def add_candidate(self, block_hash: Hash) -> None:
        self.candidates.add(block_hash)

    def record(self, vote: Vote) -> bool:
        """Count a vote; returns False for stale/duplicate sequences."""
        if vote.block_hash not in self.candidates:
            raise ValidationError(
                f"vote for {vote.block_hash.short()} is not in this election"
            )
        current = self.votes.get(vote.representative)
        if current is not None and current[1] >= vote.sequence:
            return False
        self.votes[vote.representative] = (vote.block_hash, vote.sequence)
        return True

    def tally(self, reps: RepresentativeLedger) -> Dict[Hash, int]:
        """Weighted vote totals per candidate."""
        totals: Dict[Hash, int] = {h: 0 for h in self.candidates}
        for rep, (block_hash, _seq) in self.votes.items():
            totals[block_hash] += reps.weight(rep)
        return totals

    def try_conclude(
        self, reps: RepresentativeLedger, quorum_fraction: float
    ) -> Optional[Hash]:
        """Declare a winner once one candidate holds a quorum of online
        weight; returns the winning hash or None."""
        if self.winner is not None:
            return self.winner
        online = reps.online_weight()
        if online <= 0:
            return None
        threshold = online * quorum_fraction
        totals = self.tally(reps)
        best_hash, best_weight = max(totals.items(), key=lambda kv: kv[1])
        if best_weight > threshold:
            self.winner = best_hash
        return self.winner


class ElectionManager:
    """All live elections plus per-block confirmation tallies.

    Confirmation (Section IV-B): every block — conflicting or not —
    accumulates observation votes; once the voted weight passes quorum the
    block is *confirmed*.  "For a transaction with no issues, no [extra]
    voting overhead is required": the same votes that propagate the block
    double as its confirmation, which the caller models by having
    representatives vote on first sight.
    """

    def __init__(self, reps: RepresentativeLedger, quorum_fraction: float) -> None:
        self.reps = reps
        self.quorum_fraction = quorum_fraction
        self._elections: Dict[Tuple[Address, Hash], Election] = {}
        self._confirmation_votes: Dict[Hash, Dict[Address, int]] = {}
        self._confirmed: Set[Hash] = set()
        self.elections_started = 0
        self.elections_concluded = 0

    # -------------------------------------------------------------- conflict

    def open_election(
        self, account: Address, contested_previous: Hash, candidates: List[Hash]
    ) -> Election:
        """Start (or extend) the election for one contested predecessor."""
        key = (account, contested_previous)
        election = self._elections.get(key)
        if election is None:
            election = Election(root=key)
            self._elections[key] = election
            self.elections_started += 1
        for candidate in candidates:
            election.add_candidate(candidate)
        return election

    def election_for(self, account: Address, contested_previous: Hash) -> Optional[Election]:
        return self._elections.get((account, contested_previous))

    def live_elections(self) -> List[Election]:
        return [e for e in self._elections.values() if e.winner is None]

    def record_conflict_vote(
        self, account: Address, contested_previous: Hash, vote: Vote
    ) -> Optional[Hash]:
        """Route a vote to its election; returns the winner if decided."""
        election = self._elections.get((account, contested_previous))
        if election is None:
            raise ValidationError("no election for this conflict")
        election.record(vote)
        winner = election.try_conclude(self.reps, self.quorum_fraction)
        if winner is not None and election.winner == winner:
            self.elections_concluded += 1
        return winner

    # ---------------------------------------------------------- confirmation

    def record_observation_vote(self, vote: Vote) -> bool:
        """Count a first-sight vote toward a block's confirmation;
        returns True when the block just became confirmed."""
        if vote.block_hash in self._confirmed:
            return False
        per_block = self._confirmation_votes.setdefault(vote.block_hash, {})
        prev_seq = per_block.get(vote.representative)
        if prev_seq is not None and prev_seq >= vote.sequence:
            return False
        per_block[vote.representative] = vote.sequence
        if self.confirmation_weight(vote.block_hash) > (
            self.reps.online_weight() * self.quorum_fraction
        ):
            self._confirmed.add(vote.block_hash)
            return True
        return False

    def confirmation_weight(self, block_hash: Hash) -> int:
        per_block = self._confirmation_votes.get(block_hash, {})
        return sum(self.reps.weight(rep) for rep in per_block)

    def confirmation_confidence(self, block_hash: Hash) -> float:
        """Voted weight as a fraction of online weight — the DAG analogue
        of blockchain's depth-based confidence (Section IV)."""
        online = self.reps.online_weight()
        if online <= 0:
            return 0.0
        return self.confirmation_weight(block_hash) / online

    def is_confirmed(self, block_hash: Hash) -> bool:
        return block_hash in self._confirmed

    def confirmed_count(self) -> int:
        return len(self._confirmed)
