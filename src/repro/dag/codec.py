"""Wire codec for block-lattice structures (inverse of serialize())."""

from __future__ import annotations

from repro.common.encoding import Decoder
from repro.common.errors import ValidationError
from repro.common.types import Address, Hash
from repro.dag.blocks import BlockType, NanoBlock


def decode_nano_block(data: bytes) -> NanoBlock:
    """Inverse of :meth:`NanoBlock.serialize`."""
    d = Decoder(data)
    type_raw = d._take(8).rstrip(b"\x00").decode("ascii")  # noqa: SLF001
    try:
        block_type = BlockType(type_raw)
    except ValueError:
        raise ValidationError(f"unknown block type {type_raw!r}") from None
    account = Address(d._take(20))  # noqa: SLF001
    previous = Hash(d._take(32))  # noqa: SLF001
    representative = Address(d._take(20))  # noqa: SLF001
    balance = d.read_uint(16)
    link = d._take(32)  # noqa: SLF001
    public_key = d._take(32)  # noqa: SLF001 - fixed width, no padding strip
    signature = d._take(64).rstrip(b"\x00")  # noqa: SLF001
    work = d.read_uint(8)
    if not d.finished():
        raise ValidationError("trailing bytes after nano block")
    return NanoBlock(
        block_type=block_type,
        account=account,
        previous=previous,
        representative=representative,
        balance=balance,
        link=link,
        public_key=public_key,
        signature=signature,
        work=work,
    )
