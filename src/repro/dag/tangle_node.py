"""A networked tangle participant.

Wraps :class:`repro.dag.tangle.Tangle` in a
:class:`~repro.net.node.NetworkNode`: transactions gossip through the
overlay, out-of-order arrivals park in an unchecked buffer until their
approved parents show up, and issuance picks tips from the node's *local*
view — so, as in Nano, "users are obligated to order their own
transactions" and there is no leader and no protocol throughput cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ReproError
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.net.message import Message
from repro.net.node import NetworkNode
from repro.dag.tangle import Tangle, TangleTransaction, issue_transaction

MSG_TANGLE_TX = "tangle_tx"


@dataclass
class TangleNodeStats:
    issued: int = 0
    processed: int = 0
    parked: int = 0


class TangleNode(NetworkNode):
    """Full tangle node: replica + gossip + local tip selection."""

    def __init__(
        self,
        node_id: str,
        work_difficulty: float = 1.0,
        mcmc_alpha: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__(node_id)
        self.tangle = Tangle(work_difficulty=work_difficulty)
        self.mcmc_alpha = mcmc_alpha
        self.stats = TangleNodeStats()
        self._rng = random.Random(seed)
        self._unchecked: Dict[Hash, List[TangleTransaction]] = {}

    # --------------------------------------------------------------- genesis

    def seed_genesis(self, keypair: KeyPair) -> TangleTransaction:
        return self.tangle.create_genesis(keypair)

    def install_genesis(self, genesis: TangleTransaction) -> None:
        """Adopt the shared genesis on a fresh replica."""
        self.tangle._txs[genesis.tx_hash] = genesis  # noqa: SLF001
        self.tangle._approvers[genesis.tx_hash] = []  # noqa: SLF001
        self.tangle._tips = {genesis.tx_hash}  # noqa: SLF001
        self.tangle.genesis_hash = genesis.tx_hash

    # -------------------------------------------------------------- issuance

    def issue(self, keypair: KeyPair, payload: bytes) -> TangleTransaction:
        """Create a transaction approving two locally selected tips."""
        if self.network is None:
            raise RuntimeError("attach the node to a network first")
        trunk, branch = self.tangle.select_tips_mcmc(self._rng, alpha=self.mcmc_alpha)
        tx = issue_transaction(
            keypair,
            trunk,
            branch,
            payload,
            timestamp=self.network.simulator.now,
            work_difficulty=(
                self.tangle.work_difficulty if self.tangle.work_difficulty > 1 else None
            ),
        )
        self.tangle.attach(tx)
        self.stats.issued += 1
        self.broadcast(
            Message(
                kind=MSG_TANGLE_TX,
                payload=tx,
                size_bytes=tx.size_bytes,
                dedup_key=tx.tx_hash,
            )
        )
        return tx

    # --------------------------------------------------------------- gossip

    def handle_message(self, sender_id: str, message: Message) -> None:
        if message.kind == MSG_TANGLE_TX:
            self._ingest(message.payload)

    def _ingest(self, tx: TangleTransaction) -> None:
        if tx.tx_hash in self.tangle:
            return
        missing = self._missing_parent(tx)
        if missing is not None:
            self._unchecked.setdefault(missing, []).append(tx)
            self.stats.parked += 1
            return
        try:
            self.tangle.attach(tx)
        except ReproError:
            return
        self.stats.processed += 1
        for parked in self._unchecked.pop(tx.tx_hash, []):
            self._ingest(parked)

    def _missing_parent(self, tx: TangleTransaction) -> Optional[Hash]:
        for parent in (tx.trunk, tx.branch):
            if parent not in self.tangle:
                return parent
        return None
