"""A networked tangle participant.

Wraps :class:`repro.dag.tangle.Tangle` in a
:class:`~repro.protocol.node.ProtocolNode`: transactions gossip through
the transport layer, out-of-order arrivals park in the intake layer until
their approved parents show up, and issuance picks tips from the node's
*local* view — so, as in Nano, "users are obligated to order their own
transactions" and there is no leader and no protocol throughput cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ReproError
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.net.message import Message
from repro.protocol import DEFAULT_INTAKE_CAPACITY, ConsensusEngine, ProtocolNode
from repro.dag.tangle import Tangle, TangleTransaction, issue_transaction

MSG_TANGLE_TX = "tangle_tx"


@dataclass
class TangleNodeStats:
    issued: int = 0
    processed: int = 0
    parked: int = 0


class TangleConsensus(ConsensusEngine):
    """Cumulative-weight tip selection over a tangle (Section III-C).

    A transaction approves two parents; one missing parent parks it in
    the intake layer.  Known transactions short-circuit before any parent
    check — re-gossip of an attached transaction is a no-op.
    """

    paradigm = "dag-tangle"

    def __init__(self, node: "TangleNode") -> None:
        self._node = node

    def artifact_key(self, tx: TangleTransaction) -> Hash:
        return tx.tx_hash

    def is_known(self, key: Hash) -> bool:
        return key in self._node.tangle

    def missing_dependency(self, tx: TangleTransaction) -> Optional[Hash]:
        tangle = self._node.tangle
        for parent in (tx.trunk, tx.branch):
            if parent not in tangle:
                return parent
        return None

    def integrate(self, tx: TangleTransaction) -> bool:
        try:
            self._node.tangle.attach(tx)
        except ReproError:
            return False
        return True

    def on_applied(self, tx: TangleTransaction) -> None:
        self._node.stats.processed += 1

    def signature_items(self, tx: TangleTransaction):
        return (tx.signature_item(),)


class TangleNode(ProtocolNode):
    """Full tangle node: replica + gossip + local tip selection."""

    def __init__(
        self,
        node_id: str,
        work_difficulty: float = 1.0,
        mcmc_alpha: float = 0.05,
        seed: int = 0,
        intake_capacity: Optional[int] = DEFAULT_INTAKE_CAPACITY,
    ) -> None:
        super().__init__(node_id, intake_capacity=intake_capacity)
        self.tangle = Tangle(work_difficulty=work_difficulty)
        self.mcmc_alpha = mcmc_alpha
        self.stats = TangleNodeStats()
        self.consensus = TangleConsensus(self)
        self._rng = random.Random(seed)

    # --------------------------------------------------------------- genesis

    def seed_genesis(self, keypair: KeyPair) -> TangleTransaction:
        return self.tangle.create_genesis(keypair)

    def install_genesis(self, genesis: TangleTransaction) -> None:
        """Adopt the shared genesis on a fresh replica."""
        self.tangle._txs[genesis.tx_hash] = genesis  # noqa: SLF001
        self.tangle._approvers[genesis.tx_hash] = []  # noqa: SLF001
        self.tangle._tips = {genesis.tx_hash}  # noqa: SLF001
        self.tangle.genesis_hash = genesis.tx_hash

    # -------------------------------------------------------------- issuance

    def issue(self, keypair: KeyPair, payload: bytes) -> TangleTransaction:
        """Create a transaction approving two locally selected tips."""
        if self.network is None:
            raise RuntimeError("attach the node to a network first")
        trunk, branch = self.tangle.select_tips_mcmc(self._rng, alpha=self.mcmc_alpha)
        tx = issue_transaction(
            keypair,
            trunk,
            branch,
            payload,
            timestamp=self.network.simulator.now,
            work_difficulty=(
                self.tangle.work_difficulty if self.tangle.work_difficulty > 1 else None
            ),
        )
        self.tangle.attach(tx)
        self.stats.issued += 1
        self.transport.publish(
            tx,
            Message(
                kind=MSG_TANGLE_TX,
                payload=tx,
                size_bytes=tx.size_bytes,
                dedup_key=tx.tx_hash,
            ),
        )
        return tx

    # --------------------------------------------------------------- gossip

    def handle_message(self, sender_id: str, message: Message) -> None:
        if message.kind == MSG_TANGLE_TX:
            self._ingest(message.payload)

    def message_signature_items(self, message: Message):
        if message.kind == MSG_TANGLE_TX:
            return (message.payload.signature_item(),)
        return ()

    def _ingest(self, tx: TangleTransaction) -> None:
        self.ingest(tx)

    def on_parked(self, tx: TangleTransaction, missing: Hash) -> None:
        self.stats.parked += 1

    def retains_artifact(self, tx: TangleTransaction) -> bool:
        return tx.tx_hash in self.tangle
