"""Representative voting weights (Section III-B).

"A representative's weight is calculated as the sum of all balances for
accounts that chose this representative."  The ledger keeps weights
incrementally up to date as balances and delegations change.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.common.types import Address


class RepresentativeLedger:
    """Tracks per-representative delegated weight and online status."""

    def __init__(self) -> None:
        self._weights: Dict[Address, int] = {}
        self._delegations: Dict[Address, Address] = {}  # account -> rep
        self._balances: Dict[Address, int] = {}
        self._online: Set[Address] = set()
        # Maintained incrementally alongside every weight/online change:
        # online_weight() is read once per vote heard, which made the
        # O(#online) sum a hot-path cost at scale.
        self._online_weight = 0

    # -------------------------------------------------------------- updates

    def set_account(self, account: Address, balance: int, representative: Address) -> None:
        """Record an account's new balance and delegation (one per block)."""
        old_rep = self._delegations.get(account)
        old_balance = self._balances.get(account, 0)
        if old_rep is not None:
            self._weights[old_rep] = self._weights.get(old_rep, 0) - old_balance
            if self._weights[old_rep] == 0:
                del self._weights[old_rep]
            if old_rep in self._online:
                self._online_weight -= old_balance
        self._delegations[account] = representative
        self._balances[account] = balance
        self._weights[representative] = self._weights.get(representative, 0) + balance
        if representative in self._online:
            self._online_weight += balance

    def remove_account(self, account: Address) -> None:
        """Roll back an account to the never-seen state."""
        rep = self._delegations.pop(account, None)
        balance = self._balances.pop(account, 0)
        if rep is not None:
            self._weights[rep] = self._weights.get(rep, 0) - balance
            if self._weights[rep] == 0:
                del self._weights[rep]
            if rep in self._online:
                self._online_weight -= balance

    # --------------------------------------------------------------- online

    def set_online(self, representative: Address, online: bool = True) -> None:
        """Only online representatives count toward vote quorums."""
        if online:
            if representative not in self._online:
                self._online.add(representative)
                self._online_weight += self._weights.get(representative, 0)
        elif representative in self._online:
            self._online.discard(representative)
            self._online_weight -= self._weights.get(representative, 0)

    def is_online(self, representative: Address) -> bool:
        return representative in self._online

    # ---------------------------------------------------------------- reads

    def weight(self, representative: Address) -> int:
        return self._weights.get(representative, 0)

    def representative_of(self, account: Address) -> Address:
        return self._delegations[account]

    def total_weight(self) -> int:
        return sum(self._weights.values())

    def online_weight(self) -> int:
        """Total weight held by online representatives — the quorum base.
        O(1): maintained incrementally by every update above."""
        return self._online_weight

    def representatives(self) -> Dict[Address, int]:
        return dict(self._weights)
