"""A Nano network node (Sections II-B, III-B, IV-B, VI-B).

Each node keeps a full replica of the block-lattice, relays blocks and
votes, and — when it holds a representative key — votes on first sight of
every valid block and in every conflict election.  Account owners attached
to the node create their own send/receive blocks: "users are obligated to
order their own transactions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ForkDetectedError, ReproError, ValidationError
from repro.common.types import Address, Hash
from repro.crypto.keys import KeyPair
from repro.net.message import Message
from repro.protocol import ConsensusEngine, ProtocolNode
from repro.dag.blocks import (
    BlockType,
    NanoBlock,
    make_change,
    make_open,
    make_receive,
    make_send,
)
from repro.dag.lattice import Lattice
from repro.dag.params import NanoParams
from repro.dag.voting import ElectionManager, Vote

MSG_NANO_BLOCK = "nano_block"
MSG_NANO_VOTE = "nano_vote"


@dataclass(frozen=True)
class VotePayload:
    """A vote on the wire, optionally bound to a conflict election."""

    vote: Vote
    #: For conflict votes: the contested (account, previous) root.
    conflict_account: Optional[Address] = None
    conflict_previous: Optional[Hash] = None

    @property
    def is_conflict_vote(self) -> bool:
        return self.conflict_account is not None


@dataclass
class NanoNodeStats:
    blocks_processed: int = 0
    blocks_rejected: int = 0
    forks_seen: int = 0
    votes_cast: int = 0
    votes_heard: int = 0
    rollbacks: int = 0
    receives_generated: int = 0


class NanoConsensus(ConsensusEngine):
    """Open Representative Voting over a block-lattice (Section III-B).

    The intake contract: a block missing its predecessor or source send
    parks under that hash (gossip gives no ordering guarantee, so a
    receive can overtake its send).  Duplicate detection is left to
    ``Lattice.process`` so rejected-duplicate accounting matches the
    pre-stack implementation exactly.
    """

    paradigm = "dag-lattice"

    def __init__(self, node: "NanoNode") -> None:
        self._node = node

    def artifact_key(self, block: NanoBlock) -> Hash:
        return block.block_hash

    def missing_dependency(self, block: NanoBlock) -> Optional[Hash]:
        lattice = self._node.lattice
        if not block.previous.is_zero() and block.previous not in lattice:
            return block.previous
        if block.block_type in (BlockType.OPEN, BlockType.RECEIVE):
            source = block.source
            if not source.is_zero() and source not in lattice:
                return source
        return None

    def integrate(self, block: NanoBlock) -> bool:
        node = self._node
        try:
            node.lattice.process(block)
        except ForkDetectedError:
            node.stats.forks_seen += 1
            node._handle_fork(block)
            return False
        except ValidationError:
            node.stats.blocks_rejected += 1
            raise
        node.stats.blocks_processed += 1
        return True

    def on_applied(self, block: NanoBlock) -> None:
        self._node._maybe_auto_receive(block)
        self._node._maybe_vote_on_sight(block)

    def signature_items(self, block: NanoBlock):
        return ((block.public_key, bytes(block.block_hash), block.signature),)


class NanoNode(ProtocolNode):
    """Full DAG node with optional representative role."""

    def __init__(
        self,
        node_id: str,
        params: Optional[NanoParams] = None,
        representative_key: Optional[KeyPair] = None,
        auto_receive: bool = True,
        processing_tps: Optional[float] = None,
    ) -> None:
        super().__init__(node_id)
        self.params = params or NanoParams()
        self.lattice = Lattice(self.params)
        self.elections = ElectionManager(self.lattice.reps, self.params.quorum_fraction)
        self.representative_key = representative_key
        self.auto_receive = auto_receive
        self.stats = NanoNodeStats()
        self.consensus = NanoConsensus(self)
        #: Accounts whose keys this node holds (it creates their blocks).
        self.local_accounts: Dict[Address, KeyPair] = {}
        self._vote_sequence = 0
        self._conflict_buffer: Dict[Hash, NanoBlock] = {}
        #: Optional node-hardware model: service rate in blocks/second
        #: (Section VI-B — throughput "determined by the quality of
        #: consumer grade hardware").  None = infinitely fast hardware.
        self.processing_tps = processing_tps
        self._busy_until = 0.0
        #: Simulated time at which each block reached quorum here —
        #: feeds the confirmation-latency comparison (Section IV).
        self.confirmation_times: Dict[Hash, float] = {}

    # ------------------------------------------------------------- identity

    @property
    def is_representative(self) -> bool:
        return self.representative_key is not None

    @property
    def representative_address(self) -> Optional[Address]:
        return self.representative_key.address if self.representative_key else None

    def add_account(self, keypair: KeyPair) -> None:
        self.local_accounts[keypair.address] = keypair

    # ----------------------------------------------------------- user actions

    def seed_genesis(self, keypair: KeyPair, supply: int) -> NanoBlock:
        """Create the genesis transaction on this node's replica only;
        use the experiment harness to copy it to peers."""
        self.add_account(keypair)
        return self.lattice.create_genesis(keypair, supply)

    def send_payment(
        self, sender: Address, destination: Address, amount: int
    ) -> NanoBlock:
        """Create, apply and broadcast a send block (Figure 3's 'S')."""
        keypair = self._require_key(sender)
        chain = self.lattice.chain(sender)
        if chain is None:
            raise ValidationError(f"account {sender.short()} has no chain")
        block = make_send(
            keypair,
            previous=chain.head,
            destination=destination,
            amount=amount,
            work_difficulty=self.params.work_difficulty,
        )
        self._apply_and_broadcast(block)
        return block

    def change_representative(
        self, account: Address, representative: Address
    ) -> NanoBlock:
        """Rotate an account's representative (Section III-B: the choice
        "can be changed over time").  Moves the account's full weight to
        the new representative on every replica that processes it."""
        keypair = self._require_key(account)
        chain = self.lattice.chain(account)
        if chain is None:
            raise ValidationError(f"account {account.short()} has no chain")
        block = make_change(
            keypair,
            previous=chain.head,
            representative=representative,
            work_difficulty=self.params.work_difficulty,
        )
        self._apply_and_broadcast(block)
        return block

    def receive_pending(self, account: Address) -> List[NanoBlock]:
        """Settle every pending send to ``account`` (Figure 3's 'R').

        A node must be online and issue these blocks itself — "the
        downside of this approach is that a node has to be online in
        order to receive a transaction".
        """
        keypair = self._require_key(account)
        created: List[NanoBlock] = []
        for pending in self.lattice.pending_for(account):
            chain = self.lattice.chain(account)
            if chain is None:
                block = make_open(
                    keypair,
                    source=pending.source_hash,
                    amount=pending.amount,
                    representative=self._default_representative(),
                    work_difficulty=self.params.work_difficulty,
                )
            else:
                block = make_receive(
                    keypair,
                    previous=chain.head,
                    source=pending.source_hash,
                    amount=pending.amount,
                    work_difficulty=self.params.work_difficulty,
                )
            self._apply_and_broadcast(block)
            created.append(block)
            self.stats.receives_generated += 1
        return created

    def _default_representative(self) -> Address:
        if self.representative_key is not None:
            return self.representative_key.address
        if self.lattice.genesis_account is not None:
            return self.lattice.reps.representative_of(self.lattice.genesis_account)
        raise ValidationError("no representative available for new account")

    def _require_key(self, account: Address) -> KeyPair:
        keypair = self.local_accounts.get(account)
        if keypair is None:
            raise ValidationError(f"node holds no key for {account.short()}")
        return keypair

    def _apply_and_broadcast(self, block: NanoBlock) -> None:
        # The transport layer queues the message while offline and
        # republishes on reconnect (a wallet flushing its unconfirmed
        # sends) — without that, the rest of the network can never learn
        # the block and per-account heads diverge forever.
        self._ingest(block)
        self.transport.publish(block, self._block_message(block))

    def _block_message(self, block: NanoBlock) -> Message:
        return Message(
            kind=MSG_NANO_BLOCK,
            payload=block,
            size_bytes=block.size_bytes,
            dedup_key=block.block_hash,
        )

    def retains_artifact(self, block: NanoBlock) -> bool:
        return block.block_hash in self.lattice  # not rolled back since

    # --------------------------------------------------------------- gossip

    def handle_message(self, sender_id: str, message: Message) -> None:
        if message.kind == MSG_NANO_BLOCK:
            self._receive_block(message.payload)
        elif message.kind == MSG_NANO_VOTE:
            self._receive_vote(message.payload)

    def message_signature_items(self, message: Message):
        """Batch-prewarm hook: triples for a coalesced delivery burst."""
        if message.kind == MSG_NANO_BLOCK:
            block = message.payload
            return ((block.public_key, bytes(block.block_hash), block.signature),)
        if message.kind == MSG_NANO_VOTE:
            vote = message.payload.vote
            if vote.signature:
                return (vote.signature_item(),)
        return ()

    def _receive_block(self, block: NanoBlock) -> None:
        if self.processing_tps is None or self.network is None:
            self._ingest_quietly(block)
            return
        # Hardware model: blocks queue behind a fixed per-block service
        # time; a saturated node processes at its capacity, no faster.
        sim = self.network.simulator
        service = 1.0 / self.processing_tps
        start = max(sim.now, self._busy_until)
        self._busy_until = start + service
        sim.schedule(
            self._busy_until - sim.now,
            lambda: self._ingest_quietly(block),
            label=f"dag-process:{self.node_id}",
        )

    def _ingest_quietly(self, block: NanoBlock) -> None:
        self.ingest_quietly(block)

    def _ingest(self, block: NanoBlock) -> None:
        # The shared stack pipeline: duplicate check, dependency parking
        # ("not properly broadcasted", Section IV-B), integration through
        # NanoConsensus, and dependency-arrival retry of parked blocks.
        self.ingest(block)

    # ------------------------------------------------------------- bootstrap

    def bootstrap_from(self, peer: "NanoNode") -> int:
        """Pull blocks this replica is missing from a peer's ledger.

        A node that was offline misses gossip permanently (Section II-B);
        real Nano nodes catch up through bootstrapping.  Blocks are
        ingested locally (no re-gossip); cross-chain ordering is handled
        by the unchecked buffer.  Returns the number of blocks adopted.
        """
        missing = [
            block
            for chain in peer.lattice.chains()
            for block in chain.blocks
            if block.block_hash not in self.lattice
        ]
        # One batch: signatures verified in a single pass, dependents
        # retried once at the end (see ProtocolNode.ingest_batch).  The
        # skip guard re-checks membership at each block's turn, exactly
        # like the scalar loop did — an auto-receive minted mid-batch can
        # collide with the peer's identical copy.
        before = self.stats.blocks_processed
        self.ingest_batch(missing, skip=lambda b: b.block_hash in self.lattice)
        return self.stats.blocks_processed - before

    def state_sync_from(self, peer: "NanoNode") -> int:
        """Adopt the peer's chain heads + pending table as a checkpoint.

        The live analogue of a *current* node (Section V-B): instead of
        replaying every block (``bootstrap_from``, impossible against a
        pruned peer whose predecessors are gone), install one head per
        account and the unsettled sends.  Returns chains installed.
        """
        heads = [chain.head for chain in peer.lattice.chains() if chain.blocks]
        pending = [
            info for info in peer.lattice._pending.values()  # noqa: SLF001
        ]
        installed = self.lattice.install_frontier(heads, pending)
        if self.lattice.genesis_account is None:
            self.lattice.genesis_account = peer.lattice.genesis_account
        wire_bytes = sum(h.size_bytes for h in heads)
        for counters in (self.transport.counters, peer.transport.counters):
            counters.state_syncs += 1
            counters.state_sync_bytes += wire_bytes
        self.revive_intake()
        return installed

    # ---------------------------------------------------------------- forks

    def _handle_fork(self, challenger: NanoBlock) -> None:
        """Open an election between the applied successor and the
        challenger (Section III-B: representatives resolve the conflict)."""
        self._conflict_buffer[challenger.block_hash] = challenger
        if self.elections.is_confirmed(challenger.block_hash):
            # Votes outran the block: the network already reached quorum
            # on the challenger, so adopt it instead of electing.
            self._adopt_confirmed(challenger.block_hash)
            return
        incumbent = self._incumbent_for(challenger)
        candidates = [challenger.block_hash]
        if incumbent is not None:
            candidates.append(incumbent.block_hash)
            self._conflict_buffer[incumbent.block_hash] = incumbent
        self.elections.open_election(
            challenger.account, challenger.previous, candidates
        )
        # A representative votes for the version it saw first — the one
        # already on its chain.
        if self.representative_key is not None and incumbent is not None:
            vote = self._make_vote(incumbent.block_hash)
            payload = VotePayload(
                vote=vote,
                conflict_account=challenger.account,
                conflict_previous=challenger.previous,
            )
            self._record_conflict_vote(payload)
            self._broadcast_vote(payload)

    def _incumbent_for(self, challenger: NanoBlock) -> Optional[NanoBlock]:
        chain = self.lattice.chain(challenger.account)
        if chain is None:
            return None
        if challenger.previous.is_zero():
            return chain.blocks[0] if chain.blocks else None
        for i, blk in enumerate(chain.blocks):
            if blk.block_hash == challenger.previous and i + 1 < len(chain.blocks):
                return chain.blocks[i + 1]
        return None

    # ---------------------------------------------------------------- votes

    def _make_vote(self, block_hash: Hash) -> Vote:
        assert self.representative_key is not None
        self._vote_sequence += 1
        unsigned = Vote(
            representative=self.representative_key.address,
            block_hash=block_hash,
            sequence=self._vote_sequence,
            public_key=self.representative_key.public_key,
        )
        signature = self.representative_key.sign(unsigned.signed_payload())
        self.stats.votes_cast += 1
        return Vote(
            representative=unsigned.representative,
            block_hash=unsigned.block_hash,
            sequence=unsigned.sequence,
            public_key=unsigned.public_key,
            signature=signature,
        )

    def _maybe_vote_on_sight(self, block: NanoBlock) -> None:
        """"Representatives vote automatically on blocks they have not
        seen before ... the network automatically broadcasts consensus
        information while the transaction is making its way through."""
        if self.representative_key is None:
            return
        vote = self._make_vote(block.block_hash)
        payload = VotePayload(vote=vote)
        self._record_observation_vote(payload)
        self._broadcast_vote(payload)

    def _broadcast_vote(self, payload: VotePayload) -> None:
        if self.network is None:
            return
        self.broadcast(
            Message(
                kind=MSG_NANO_VOTE,
                payload=payload,
                size_bytes=payload.vote.size_bytes,
                dedup_key=None,
            )
        )

    def _receive_vote(self, payload: VotePayload) -> None:
        self.stats.votes_heard += 1
        if not payload.vote.verify():
            return
        if payload.is_conflict_vote:
            self._record_conflict_vote(payload)
        else:
            self._record_observation_vote(payload)

    def _record_observation_vote(self, payload: VotePayload) -> None:
        newly_confirmed = self.elections.record_observation_vote(payload.vote)
        if newly_confirmed:
            block_hash = payload.vote.block_hash
            if self.network is not None:
                self.confirmation_times[block_hash] = self.network.simulator.now
            if block_hash not in self.lattice:
                # Quorum confirmed a block we rejected as conflicting:
                # the network chose the other fork branch — adopt it.
                self._adopt_confirmed(block_hash)
            if block_hash in self.lattice:
                self.lattice.cement(block_hash)

    def _adopt_confirmed(self, winner: Hash) -> None:
        winning_block = self._conflict_buffer.get(winner)
        if winning_block is None:
            return
        incumbent = self._applied_successor(
            winning_block.account, winning_block.previous
        )
        if incumbent is not None:
            try:
                removed = self.lattice.rollback(incumbent.block_hash)
            except ReproError:
                return
            self.stats.rollbacks += len(removed)
        # Adopt through the normal intake path, not lattice.process
        # directly: blocks parked in the unchecked buffer waiting on the
        # winner (a recipient's receive gossiped while we still held the
        # losing branch) must be retried, and auto-receive must fire.
        self._ingest_quietly(winning_block)

    def _record_conflict_vote(self, payload: VotePayload) -> None:
        assert payload.conflict_account is not None
        assert payload.conflict_previous is not None
        election = self.elections.election_for(
            payload.conflict_account, payload.conflict_previous
        )
        if election is None:
            election = self.elections.open_election(
                payload.conflict_account,
                payload.conflict_previous,
                [payload.vote.block_hash],
            )
        election.add_candidate(payload.vote.block_hash)
        winner = self.elections.record_conflict_vote(
            payload.conflict_account, payload.conflict_previous, payload.vote
        )
        if winner is not None:
            self._settle_election(
                payload.conflict_account, payload.conflict_previous, winner
            )

    def _settle_election(
        self, account: Address, contested_previous: Hash, winner: Hash
    ) -> None:
        """Adopt the winning block, rolling back a losing one if applied."""
        if winner in self.lattice:
            return  # our chain already holds the winner
        incumbent = self._applied_successor(account, contested_previous)
        if incumbent is not None:
            try:
                removed = self.lattice.rollback(incumbent.block_hash)
            except ReproError:
                return  # cemented: this replica keeps its version
            self.stats.rollbacks += len(removed)
        winning_block = self._conflict_buffer.get(winner)
        if winning_block is not None:
            # Same intake path as gossip (see _adopt_confirmed): retries
            # unchecked dependents of the winner and settles auto-receives.
            self._ingest_quietly(winning_block)

    def _applied_successor(
        self, account: Address, contested_previous: Hash
    ) -> Optional[NanoBlock]:
        chain = self.lattice.chain(account)
        if chain is None:
            return None
        if contested_previous.is_zero():
            return chain.blocks[0] if chain.blocks else None
        for i, blk in enumerate(chain.blocks):
            if blk.block_hash == contested_previous and i + 1 < len(chain.blocks):
                return chain.blocks[i + 1]
        return None

    # ----------------------------------------------------------- auto-receive

    def _maybe_auto_receive(self, block: NanoBlock) -> None:
        """Settle an incoming send immediately when we hold the recipient
        key and auto-receive is on (an online wallet)."""
        if not self.auto_receive or block.block_type != BlockType.SEND:
            return
        destination = block.destination
        if destination in self.local_accounts:
            self.receive_pending(destination)

    # --------------------------------------------------------------- queries

    def is_confirmed(self, block_hash: Hash) -> bool:
        """Confirmed = majority representative vote (Section IV-B)."""
        return self.elections.is_confirmed(block_hash)

    def confirmation_confidence(self, block_hash: Hash) -> float:
        return self.elections.confirmation_confidence(block_hash)

    def balance(self, account: Address) -> int:
        return self.lattice.balance(account)
