"""Event queue: the heart of the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

Action = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence): two events at the same instant fire in
    scheduling order, which keeps runs deterministic.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1) lazy deletion)."""
        self.cancelled = True


class EventQueue:
    """Min-heap of events with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self.pushed = 0
        self.popped = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def push(self, time: float, action: Action, label: str = "") -> Event:
        event = Event(time=time, sequence=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        self.pushed += 1
        return event

    def pop(self) -> Optional[Event]:
        """Next live event, or ``None`` when the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self.popped += 1
                return event
        return None

    def stats(self) -> dict:
        """Lifetime counters — how much scheduling a run generated."""
        return {"pushed": self.pushed, "popped": self.popped,
                "pending": len(self)}

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
