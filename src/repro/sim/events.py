"""Event queue: the heart of the discrete-event simulator.

Optimized for throughput: the heap stores plain ``(time, sequence,
event)`` tuples so ordering is resolved by C-level tuple comparison
(never by the payload object), :class:`Event` is a ``__slots__`` class
(no per-instance dict, no dataclass comparison machinery), and the queue
keeps an O(1) live-event counter so sizing the queue never rescans the
heap.  Cancellation stays lazy — cancelled entries are skipped at pop
time — which keeps :meth:`Event.cancel` O(1) too.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

Action = Callable[[], None]


class Event:
    """A scheduled callback handle.

    Ordering lives in the heap entry (``(time, sequence)`` prefix), not
    on the object: two events at the same instant fire in scheduling
    order, which keeps runs deterministic.
    """

    __slots__ = ("time", "sequence", "action", "cancelled", "label", "_queue",
                 "coalesce_key", "payload")

    def __init__(self, time: float, sequence: int, action: Action,
                 label: str = "",
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        self.label = label
        self._queue = queue
        # Batchable events (Simulator.schedule_batchable): consecutive
        # same-(time, coalesce_key) events are drained as one dispatch at
        # pop time.  None for ordinary events.
        self.coalesce_key = None
        self.payload = None

    def cancel(self) -> None:
        """Mark the event so the loop skips it (O(1) lazy deletion)."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            # Count it once, while still queued: the live size is derived
            # as pushed - popped - cancelled, so only cancellation (rare)
            # pays for sizing — pushes and pops keep no live counter.
            queue._cancelled += 1
            self._queue = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else f"t={self.time}"
        return f"Event({self.label or self.sequence}, {state})"


class EventQueue:
    """Min-heap of events with lazy cancellation and O(1) live sizing."""

    __slots__ = ("_heap", "_sequence", "_cancelled", "popped")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._cancelled = 0
        self.popped = 0

    def __len__(self) -> int:
        """Live (non-cancelled, not yet popped) events — O(1), derived
        from the push/pop/cancel counters."""
        return self._sequence - self.popped - self._cancelled

    @property
    def pushed(self) -> int:
        """Total events ever scheduled (the sequence counter — every push
        consumes exactly one sequence number)."""
        return self._sequence

    def push(self, time: float, action: Action, label: str = "",
             _heappush: Callable = heappush, _new: Callable = Event.__new__,
             _Event: type = Event) -> Event:
        # Default-arg bindings keep the hottest lookups local, and the
        # Event is built with __new__ + attribute stores so a push costs
        # no extra Python call frame for __init__.
        sequence = self._sequence
        self._sequence = sequence + 1
        event = _new(_Event)
        event.time = time
        event.sequence = sequence
        event.action = action
        event.cancelled = False
        event.label = label
        event._queue = self
        event.coalesce_key = None
        event.payload = None
        _heappush(self._heap, (time, sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Next live event, or ``None`` when the queue is drained."""
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if not event.cancelled:
                event._queue = None
                self.popped += 1
                return event
        return None

    def pop_due(self, until: Optional[float] = None) -> Optional[Event]:
        """Fused peek+pop: the next live event with ``time <= until``.

        Returns ``None`` (leaving the event queued) when the next live
        event lies beyond ``until`` or the queue is drained.  This is the
        single heap access the simulator's run loop makes per event —
        there is no separate peek pass.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                continue
            if until is not None and entry[0] > until:
                return None
            heappop(heap)
            event._queue = None
            self.popped += 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        return heap[0][0] if heap else None

    def stats(self) -> dict:
        """Lifetime counters — how much scheduling a run generated."""
        return {"pushed": self._sequence, "popped": self.popped,
                "pending": len(self)}
