"""Discrete-event simulation substrate.

Network experiments (fork rates, confirmation latency, TPS under load)
run on a simulated clock so that a week of Bitcoin block production costs
milliseconds of wall time.  The simulator is a plain priority-queue event
loop with deterministic tie-breaking and seeded randomness.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator

__all__ = ["Event", "EventQueue", "Simulator"]
