"""Discrete-event simulation substrate.

Network experiments (fork rates, confirmation latency, TPS under load)
run on a simulated clock so that a week of Bitcoin block production costs
milliseconds of wall time.  The simulator is a plain priority-queue event
loop with deterministic tie-breaking and seeded randomness.
"""

from repro.crypto import accel  # accelerated-tier selection (REPRO_ACCEL)
from repro.sim.events import Event, EventQueue
from repro.sim.sharded import ShardedConfig, ShardedPropagation, ShardedResult
from repro.sim.simulator import Simulator

#: Whether coalesced batch dispatch is the default for network delivery
#: (resolved once at import from ``REPRO_ACCEL``; see repro.crypto.accel).
COALESCE_DEFAULT = accel.enabled()

__all__ = [
    "COALESCE_DEFAULT",
    "Event",
    "EventQueue",
    "ShardedConfig",
    "ShardedPropagation",
    "ShardedResult",
    "Simulator",
    "accel",
]
