"""Sharded large-graph propagation with epoch barriers.

The second scale track (ROADMAP open item #1b): instead of one event
loop owning all 10^4-10^6 nodes, the topology is partitioned into
contiguous shards, each shard relaxes its own first-arrival times with
vectorized numpy passes, and shards exchange cross-shard arrivals only
at epoch barriers.  Workers run on the persistent
:class:`repro.runner.pool.ShardWorkers` fan-out (``jobs > 1``) or inline
in-process (``jobs = 1``) — by construction both produce *identical*
results:

* the graph is built once from the root seed (ring + random chords),
  identically in every worker;
* each shard draws its out-edge delays in one vectorized batch from a
  ``fork_rng``-derived stream (label ``shard:<index>``), so the draws
  depend only on (seed, shard index) — never on process scheduling;
* barrier merges happen in shard order and messages are sorted by
  ``(time, dst)`` before routing, so the merge order is deterministic.

What runs here is the propagation kernel of the gossip fabric — a
single-source first-arrival computation with per-edge delays sampled
from the same law as :meth:`repro.net.link.LinkParams.delivery_delay`
(duck-typed so ``repro.sim`` stays below ``repro.net`` in the layering).
The scale bench uses it to measure how propagation times and cross-shard
traffic grow with network size.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import fork_rng, make_rng

__all__ = [
    "ShardedConfig",
    "ShardedResult",
    "ShardState",
    "ShardedPropagation",
    "build_edges",
]

#: Mirrors Message.wire_size framing (repro.net.message).
_WIRE_OVERHEAD_BYTES = 24


def _np_seed(seed: int, label: str) -> int:
    """64-bit numpy seed derived via the repo's fork_rng discipline."""
    return fork_rng(make_rng(seed), label).getrandbits(64)


@dataclass(frozen=True)
class ShardedConfig:
    """One sharded propagation run, fully determined by its fields.

    The topology is a ring (guaranteed connectivity) plus ``chords``
    random matchings per node — degree ``2 + 2 * chords`` in
    expectation, the usual unstructured-overlay shape.  Link fields
    follow :class:`repro.net.link.LinkParams` semantics.
    """

    total_nodes: int
    shards: int = 4
    chords: int = 2
    epoch_s: float = 0.5
    seed: int = 0
    latency_s: float = 0.1
    jitter_s: float = 0.05
    bandwidth_bps: float = 50_000_000.0
    loss_probability: float = 0.0
    payload_bytes: int = 256
    max_epochs: int = 100_000

    def __post_init__(self) -> None:
        if self.total_nodes < 2:
            raise ValueError("total_nodes must be >= 2")
        if not 1 <= self.shards <= self.total_nodes:
            raise ValueError("shards must be in [1, total_nodes]")
        if self.chords < 0:
            raise ValueError("chords must be non-negative")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if self.max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")

    @classmethod
    def with_link(cls, link, **kwargs) -> "ShardedConfig":
        """Build from anything exposing LinkParams' four link fields."""
        return cls(
            latency_s=link.latency_s,
            jitter_s=link.jitter_s,
            bandwidth_bps=link.bandwidth_bps,
            loss_probability=link.loss_probability,
            **kwargs,
        )


def build_edges(config: ShardedConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Directed edge arrays (heads, tails) of the overlay graph.

    Derived from the root seed alone — every shard worker rebuilds the
    identical graph, so no adjacency ever crosses a pipe.
    """
    n = config.total_nodes
    index = np.arange(n)
    heads = [index, index]
    tails = [(index + 1) % n, (index - 1) % n]
    rng = np.random.default_rng(_np_seed(config.seed, "sharded-graph"))
    for _ in range(config.chords):
        partner = rng.permutation(n)
        keep = partner != index  # no self-loops
        heads.extend([index[keep], partner[keep]])
        tails.extend([partner[keep], index[keep]])
    return np.concatenate(heads), np.concatenate(tails)


def _edge_delays(config: ShardedConfig, count: int,
                 rng: np.random.Generator) -> np.ndarray:
    """Per-edge delivery delays following the LinkParams law.

    Loss is folded in as retransmit extension (geometric failures, the
    default :class:`repro.net.network.RetransmitPolicy` backoff
    schedule) rather than rerouting — matching how the exact network's
    ownership model behaves on a lossy link.
    """
    wire = config.payload_bytes + _WIRE_OVERHEAD_BYTES
    delays = np.full(count,
                     config.latency_s + (wire * 8.0) / config.bandwidth_bps)
    if config.jitter_s:
        delays += rng.uniform(0.0, config.jitter_s, size=count)
    loss = config.loss_probability
    if loss > 0.0:
        failures = np.minimum(rng.geometric(1.0 - loss, size=count) - 1, 5)
        steps = np.minimum(0.5 * 2.0 ** np.arange(5), 30.0)
        cumulative = np.concatenate(([0.0], np.cumsum(steps)))
        delays += cumulative[failures] * rng.uniform(0.75, 1.25, size=count)
    return delays


class ShardState:
    """One shard's slice of the propagation: owned nodes + out-edges.

    Lives either inline (``jobs=1``) or inside a persistent worker
    process; its only cross-shard interface is :meth:`step` (epoch
    barrier) and :meth:`collect` (final gather), both picklable.
    """

    def __init__(self, config: ShardedConfig, index: int) -> None:
        n, shards = config.total_nodes, config.shards
        self.config = config
        self.index = index
        self.lo = index * n // shards
        self.hi = (index + 1) * n // shards
        heads, tails = build_edges(config)
        owned = (heads >= self.lo) & (heads < self.hi)
        # Deterministic edge order (head, then tail) so the shard's
        # vectorized delay draw is independent of graph-build order.
        order = np.lexsort((tails[owned], heads[owned]))
        self.heads = heads[owned][order]
        self.tails = tails[owned][order]
        rng = np.random.default_rng(_np_seed(config.seed, f"shard:{index}"))
        self.weights = _edge_delays(config, len(self.heads), rng)
        self.dist = np.full(self.hi - self.lo, np.inf)
        self.dirty = np.zeros(self.hi - self.lo, dtype=bool)
        #: best arrival already announced per cross-shard edge (dedupe)
        self.announced = np.full(len(self.heads), np.inf)
        self.external = (self.tails < self.lo) | (self.tails >= self.hi)

    def step(self, times: np.ndarray, nodes: np.ndarray,
             horizon: float) -> Tuple[np.ndarray, np.ndarray, int]:
        """Apply incoming arrivals, relax internally up to ``horizon``.

        Returns ``(out_times, out_nodes, pending)`` where the out arrays
        are cross-shard arrival candidates and ``pending`` counts owned
        nodes still awaiting relaxation beyond the horizon.
        """
        if len(nodes):
            local = np.asarray(nodes, dtype=np.int64) - self.lo
            # Scatter-min, not assignment: one barrier batch can carry
            # several candidates for the same node (one per inbound
            # cross-shard edge) and a plain fancy-index write would let
            # the last — not the best — win.
            before = self.dist[local]
            np.minimum.at(self.dist, local, np.asarray(times, dtype=float))
            self.dirty[local[self.dist[local] < before]] = True
        out_times: List[np.ndarray] = []
        out_nodes: List[np.ndarray] = []
        while True:
            active = np.flatnonzero(self.dirty & (self.dist < horizon))
            if not len(active):
                break
            self.dirty[active] = False
            edges = np.flatnonzero(np.isin(self.heads, active + self.lo))
            if not len(edges):
                continue
            candidate = self.dist[self.heads[edges] - self.lo] \
                + self.weights[edges]
            targets = self.tails[edges]
            external = self.external[edges]
            # Internal scatter-min; improved nodes go back on the front.
            internal_t = targets[~external] - self.lo
            internal_c = candidate[~external]
            if len(internal_t):
                before = self.dist[internal_t]
                np.minimum.at(self.dist, internal_t, internal_c)
                self.dirty[internal_t[self.dist[internal_t] < before]] = True
            # Cross-shard: announce only candidates that beat what this
            # edge already sent (re-announcements happen when an earlier
            # path improves retroactively).
            ext_edges = edges[external]
            ext_c = candidate[external]
            better = ext_c < self.announced[ext_edges]
            if np.any(better):
                self.announced[ext_edges[better]] = ext_c[better]
                out_times.append(ext_c[better])
                out_nodes.append(targets[external][better])
        pending = int(np.count_nonzero(self.dirty & np.isfinite(self.dist)))
        if out_times:
            return (np.concatenate(out_times), np.concatenate(out_nodes),
                    pending)
        return np.zeros(0), np.zeros(0, dtype=np.int64), pending

    def reset(self, label: str, payload_bytes: Optional[int] = None) -> int:
        """Rearm the shard for a fresh propagation labelled ``label``.

        The message plane reuses one set of (possibly worker-process)
        shards for every gossiped message; each message re-draws its
        per-edge delays from a stream derived only from
        ``(seed, label, shard index)`` — never from worker scheduling —
        so jobs=1 and jobs=N stay byte-identical per message.  A
        ``payload_bytes`` override retimes the serialization term for
        the actual message size.  Returns the owned-node count so the
        barrier ``call`` has a payload-shaped reply.
        """
        config = self.config
        if payload_bytes is not None and payload_bytes != config.payload_bytes:
            config = dataclasses.replace(config, payload_bytes=payload_bytes)
        rng = np.random.default_rng(
            _np_seed(config.seed, f"{label}:shard:{self.index}"))
        self.weights = _edge_delays(config, len(self.heads), rng)
        self.dist = np.full(self.hi - self.lo, np.inf)
        self.dirty = np.zeros(self.hi - self.lo, dtype=bool)
        self.announced = np.full(len(self.heads), np.inf)
        return self.hi - self.lo

    def collect(self) -> np.ndarray:
        """Final first-arrival times for this shard's owned nodes."""
        return self.dist


def _make_shard_state(config: ShardedConfig, index: int) -> ShardState:
    """Module-level factory — picklable for ShardWorkers."""
    return ShardState(config, index)


class _InlineShards:
    """jobs=1 stand-in for ShardWorkers: same call interface, no IPC."""

    def __init__(self, config: ShardedConfig) -> None:
        self._states = [ShardState(config, i) for i in range(config.shards)]

    def __enter__(self) -> "_InlineShards":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def call(self, method: str, payloads: Sequence[tuple]) -> List:
        return [getattr(state, method)(*payload)
                for state, payload in zip(self._states, payloads)]


@dataclass
class ShardedResult:
    """Outcome of one sharded propagation run."""

    arrivals: np.ndarray
    epochs: int
    cross_shard_messages: int
    config: ShardedConfig
    jobs: int = 1
    _fingerprint: Optional[str] = field(default=None, repr=False)

    @property
    def reached(self) -> int:
        return int(np.count_nonzero(np.isfinite(self.arrivals)))

    def percentile(self, q: float) -> float:
        finite = self.arrivals[np.isfinite(self.arrivals)]
        if not len(finite):
            return float("nan")
        return float(np.percentile(finite, q))

    def fingerprint(self) -> str:
        """Seed-stable digest of the arrival-time vector (9 decimal
        places — well above float64 noise, well below link delays)."""
        if self._fingerprint is None:
            rounded = np.round(self.arrivals, 9)
            self._fingerprint = hashlib.sha256(
                rounded.tobytes()).hexdigest()[:16]
        return self._fingerprint


class ShardedPropagation:
    """Drive one partitioned first-arrival propagation to completion."""

    def __init__(self, config: ShardedConfig) -> None:
        self.config = config

    def _owner(self, nodes: np.ndarray) -> np.ndarray:
        n, shards = self.config.total_nodes, self.config.shards
        # Must match ShardState's bounds: shard i owns [i*n//s, (i+1)*n//s).
        uppers = np.asarray([(i + 1) * n // shards for i in range(shards)])
        return np.searchsorted(uppers, nodes, side="right")

    def open(self, jobs: int = 1):
        """Shard backend for :meth:`run_with` — a context manager.

        ``jobs > 1`` spawns every shard into its own persistent worker
        process (:class:`repro.runner.pool.ShardWorkers`); ``jobs = 1``
        holds the shard states inline.  Both expose the same barrier
        ``call`` interface, so callers (and the sharded message plane,
        which keeps one backend open across many messages) never branch
        on the parallelism mode.
        """
        if jobs > 1:
            from repro.runner.pool import ShardWorkers
            return ShardWorkers(_make_shard_state, self.config,
                                self.config.shards)
        return _InlineShards(self.config)

    def run_with(self, workers, origin: int = 0, *,
                 label: Optional[str] = None,
                 payload_bytes: Optional[int] = None,
                 jobs: int = 1) -> ShardedResult:
        """One propagation from ``origin`` over an open shard backend.

        With ``label`` set, every shard first re-draws its edge delays
        from the ``(seed, label)``-derived stream (see
        :meth:`ShardState.reset`) so one backend can serve a whole
        message sequence deterministically; without it the shards run as
        constructed (the legacy single-shot path).
        """
        config = self.config
        if not 0 <= origin < config.total_nodes:
            raise ValueError("origin out of range")
        shards = config.shards
        if label is not None:
            workers.call("reset", [(label, payload_bytes)
                                   for _ in range(shards)])
        # Owner shard boundaries follow ShardState: lo = i * n // shards.
        inbox_times: List[np.ndarray] = [np.zeros(0) for _ in range(shards)]
        inbox_nodes: List[np.ndarray] = [np.zeros(0, dtype=np.int64)
                                         for _ in range(shards)]
        origin_shard = int(self._owner(np.asarray([origin]))[0])
        inbox_times[origin_shard] = np.asarray([0.0])
        inbox_nodes[origin_shard] = np.asarray([origin], dtype=np.int64)
        horizon = config.epoch_s
        epochs = 0
        cross = 0
        while True:
            if epochs >= config.max_epochs:
                raise RuntimeError(
                    f"no convergence after {epochs} epochs")
            payloads = [(inbox_times[i], inbox_nodes[i], horizon)
                        for i in range(shards)]
            replies = workers.call("step", payloads)
            epochs += 1
            horizon += config.epoch_s
            # Barrier merge, in deterministic order: shard-ordered
            # gather, then a (time, dst) sort before routing.
            all_times = np.concatenate([r[0] for r in replies])
            all_nodes = np.concatenate(
                [np.asarray(r[1], dtype=np.int64) for r in replies])
            pending = sum(int(r[2]) for r in replies)
            cross += len(all_times)
            if not len(all_times) and pending == 0:
                break
            order = np.lexsort((all_nodes, all_times))
            all_times = all_times[order]
            all_nodes = all_nodes[order]
            owners = self._owner(all_nodes)
            for i in range(shards):
                mine = owners == i
                inbox_times[i] = all_times[mine]
                inbox_nodes[i] = all_nodes[mine]
        collected = workers.call("collect", [() for _ in range(shards)])
        arrivals = np.concatenate(collected)
        return ShardedResult(arrivals=arrivals, epochs=epochs,
                             cross_shard_messages=cross, config=config,
                             jobs=jobs)

    def run(self, origin: int = 0, jobs: int = 1) -> ShardedResult:
        """Propagate from ``origin``; identical results for any ``jobs``.

        ``jobs > 1`` runs every shard in its own persistent worker
        process (:class:`repro.runner.pool.ShardWorkers`); ``jobs = 1``
        steps the shards inline.  Seed-stability across the two paths is
        pinned by the test suite.
        """
        with self.open(jobs) as workers:
            return self.run_with(workers, origin, jobs=jobs)
