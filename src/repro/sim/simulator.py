"""The discrete-event simulator."""

from __future__ import annotations

import random
from typing import Callable, Optional

from heapq import heappop, heappush

from repro.common.rng import fork_rng, make_rng
from repro.sim.events import Action, Event, EventQueue


class PeriodicTask:
    """Handle for a :meth:`Simulator.schedule_periodic` loop.

    :meth:`cancel` stops the loop: the queued tick is cancelled (O(1)
    lazy deletion) and no further ticks are scheduled.  In-loop monitors
    use this to detach once they have seen what they were watching for.
    """

    __slots__ = ("_event", "cancelled")

    def __init__(self) -> None:
        self._event: Optional[Event] = None
        self.cancelled = False

    @property
    def active(self) -> bool:
        """True while another tick is queued (or currently firing)."""
        return not self.cancelled and self._event is not None

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Simulator:
    """Deterministic event loop with a simulated clock.

    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        # Bound method cached once: schedule() is the hottest entry point.
        self._push = self._queue.push
        self._now = 0.0
        self._events_processed = 0
        self._halted = False
        self.rng = make_rng(seed)

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def fork_rng(self, label: str) -> random.Random:
        """Independent random stream for one component (see common.rng)."""
        return fork_rng(self.rng, label)

    def halt(self) -> None:
        """Stop the current :meth:`run` after the executing event returns
        (used by fault scenarios that detect a terminal condition)."""
        self._halted = True

    def queue_stats(self) -> dict:
        """Scheduling counters from the underlying event queue."""
        return self._queue.stats()

    # -------------------------------------------------------------- schedule

    def schedule(self, delay: float, action: Action, label: str = "",
                 _heappush=heappush, _new=Event.__new__, _Event=Event) -> Event:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        # EventQueue.push inlined (same package, see events.py): schedule
        # is the hottest entry point and the extra call frame is ~15% of
        # the per-event cost on the microbench.
        queue = self._queue
        time = self._now + delay
        sequence = queue._sequence
        queue._sequence = sequence + 1
        event = _new(_Event)
        event.time = time
        event.sequence = sequence
        event.action = action
        event.cancelled = False
        event.label = label
        event._queue = queue
        event.coalesce_key = None
        event.payload = None
        _heappush(queue._heap, (time, sequence, event))
        return event

    def schedule_batchable(self, delay: float, dispatch: Callable, payload,
                           key, label: str = "",
                           _heappush=heappush, _new=Event.__new__,
                           _Event=Event) -> Event:
        """Schedule a coalescible delivery: ``dispatch(payloads)``.

        Consecutive same-timestamp events sharing ``key`` (and the same
        ``dispatch`` callable) are drained from the heap as *one* batch
        at pop time, and ``dispatch`` receives the list of their payloads
        in scheduling order.  Pop-time coalescing is exactly
        order-preserving: the heap already yields true execution order,
        and anything scheduled *during* the batch carries a later
        sequence number, so it would have run after every batch member
        anyway.  Each member still counts as one processed event.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        queue = self._queue
        time = self._now + delay
        sequence = queue._sequence
        queue._sequence = sequence + 1
        event = _new(_Event)
        event.time = time
        event.sequence = sequence
        event.action = dispatch
        event.cancelled = False
        event.label = label
        event._queue = queue
        event.coalesce_key = key
        event.payload = payload
        _heappush(queue._heap, (time, sequence, event))
        return event

    def schedule_at(self, time: float, action: Action, label: str = "") -> Event:
        """Run ``action`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        return self._push(time, action, label)

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> PeriodicTask:
        """Fire ``action`` every ``interval`` seconds until ``until``.

        Returns a :class:`PeriodicTask`; cancelling it stops the loop
        (the action may cancel its own handle mid-tick to detach)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = interval if start_delay is None else start_delay
        task = PeriodicTask()

        def tick() -> None:
            task._event = None
            action()
            # Clamp the final reschedule: a tick that would land past
            # ``until`` is never scheduled, so the queue drains at the
            # bound instead of carrying a dead event beyond it.
            if not task.cancelled and (
                until is None or self._now + interval <= until
            ):
                task._event = self.schedule(interval, tick, label="periodic")

        if until is None or self._now + first <= until:
            task._event = self.schedule(first, tick, label="periodic")
        return task

    # ------------------------------------------------------------------- run

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue empties, ``until`` is reached, or
        ``max_events`` have fired.  The clock ends at ``until`` when given,
        even if the queue drained earlier."""
        processed = 0
        popped = 0
        self._halted = False
        # Hot loop: EventQueue.pop_due inlined (same package, see
        # events.py) so each event costs one heap access and zero extra
        # Python calls; heap and queue are bound to locals once and the
        # pop counter is flushed back in one write at exit.
        queue = self._queue
        heap = queue._heap
        pop = heappop
        limit = max_events if max_events is not None else float("inf")
        try:
            if until is None:
                # No horizon: every live entry fires, so pop directly —
                # no peek, no per-event bound check.
                while heap and not self._halted and processed < limit:
                    entry = pop(heap)
                    event = entry[2]
                    if event.cancelled:
                        continue
                    event._queue = None
                    popped += 1
                    self._now = entry[0]
                    key = event.coalesce_key
                    if key is None:
                        event.action()
                        processed += 1
                        continue
                    # Coalesce: drain the run of same-(time, key) events
                    # at the heap top into one dispatch (order-preserving
                    # — see schedule_batchable).
                    time = entry[0]
                    dispatch = event.action
                    batch = [event.payload]
                    while heap and processed + len(batch) < limit:
                        top = heap[0]
                        if top[0] != time:
                            break
                        nxt = top[2]
                        if nxt.cancelled:
                            pop(heap)
                            continue
                        if nxt.coalesce_key != key or nxt.action is not dispatch:
                            break
                        pop(heap)
                        nxt._queue = None
                        popped += 1
                        batch.append(nxt.payload)
                    dispatch(batch)
                    processed += len(batch)
                return
            while not self._halted and processed < limit:
                event = None
                while heap:
                    entry = heap[0]
                    candidate = entry[2]
                    if candidate.cancelled:
                        pop(heap)
                        continue
                    if entry[0] > until:
                        break
                    pop(heap)
                    candidate._queue = None
                    popped += 1
                    event = candidate
                    break
                if event is None:
                    # Queue drained (or next event past the horizon): the
                    # clock still ends at ``until`` when one was given.
                    if until > self._now:
                        self._now = until
                    break
                self._now = entry[0]
                key = event.coalesce_key
                if key is None:
                    event.action()
                    processed += 1
                    continue
                # Batch members share the popped event's timestamp, which
                # already passed the ``until`` bound — no extra check.
                time = entry[0]
                dispatch = event.action
                batch = [event.payload]
                while heap and processed + len(batch) < limit:
                    top = heap[0]
                    if top[0] != time:
                        break
                    nxt = top[2]
                    if nxt.cancelled:
                        pop(heap)
                        continue
                    if nxt.coalesce_key != key or nxt.action is not dispatch:
                        break
                    pop(heap)
                    nxt._queue = None
                    popped += 1
                    batch.append(nxt.payload)
                dispatch(batch)
                processed += len(batch)
        finally:
            queue.popped += popped
            self._events_processed += processed
