"""The discrete-event simulator."""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.common.rng import fork_rng, make_rng
from repro.sim.events import Action, Event, EventQueue


class Simulator:
    """Deterministic event loop with a simulated clock.

    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._halted = False
        self.rng = make_rng(seed)

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def fork_rng(self, label: str) -> random.Random:
        """Independent random stream for one component (see common.rng)."""
        return fork_rng(self.rng, label)

    def halt(self) -> None:
        """Stop the current :meth:`run` after the executing event returns
        (used by fault scenarios that detect a terminal condition)."""
        self._halted = True

    def queue_stats(self) -> dict:
        """Scheduling counters from the underlying event queue."""
        return self._queue.stats()

    # -------------------------------------------------------------- schedule

    def schedule(self, delay: float, action: Action, label: str = "") -> Event:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, action, label)

    def schedule_at(self, time: float, action: Action, label: str = "") -> Event:
        """Run ``action`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        return self._queue.push(time, action, label)

    def schedule_periodic(
        self,
        interval: float,
        action: Callable[[], None],
        *,
        start_delay: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Fire ``action`` every ``interval`` seconds until ``until``."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = interval if start_delay is None else start_delay

        def tick() -> None:
            if until is not None and self._now > until:
                return
            action()
            self.schedule(interval, tick, label="periodic")

        self.schedule(first, tick, label="periodic")

    # ------------------------------------------------------------------- run

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue empties, ``until`` is reached, or
        ``max_events`` have fired.  The clock ends at ``until`` when given,
        even if the queue drained earlier."""
        processed = 0
        self._halted = False
        while True:
            if self._halted:
                return
            if max_events is not None and processed >= max_events:
                return
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            assert event is not None
            self._now = event.time
            event.action()
            self._events_processed += 1
            processed += 1
        if until is not None and until > self._now:
            self._now = until
