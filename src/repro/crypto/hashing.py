"""Digest functions.

Bitcoin hashes block headers and transactions with double SHA-256;
Ethereum and Nano each use a single application of their hash function.
We use SHA-256 (from the standard library) for every role — the paper's
claims depend only on the hash being collision-resistant and uniform,
not on which particular function is used.
"""

from __future__ import annotations

import hashlib

from repro.common.types import Hash


def sha256(data: bytes) -> Hash:
    """Single SHA-256 digest."""
    return Hash(hashlib.sha256(data).digest())


def sha256d(data: bytes) -> Hash:
    """Double SHA-256 digest (Bitcoin's block/tx hash)."""
    return Hash(hashlib.sha256(hashlib.sha256(data).digest()).digest())


def hash_concat(left: Hash, right: Hash) -> Hash:
    """Digest of two child hashes — the Merkle-tree inner-node rule."""
    return sha256d(bytes(left) + bytes(right))


def hash_to_int(digest: Hash) -> int:
    """Interpret a digest as a big-endian integer (PoW target comparison)."""
    return int.from_bytes(bytes(digest), "big")
