"""Proof of Work: partial hash inversion (Section III-A1).

Bitcoin's puzzle requires ``sha256d(header ‖ nonce)`` to be numerically
below a *target*; the paper describes this as the hash "starting with at
least a predefined number of 0 bits".  The same primitive, at a much
lower difficulty and detached from leader election, is Nano's hashcash-
style anti-spam throttle (Section III-B).

Difficulty and target are related by ``difficulty = MAX_TARGET / target``:
doubling difficulty halves the share of acceptable hashes, so the expected
number of hash evaluations per solution is ``difficulty * 2^16`` with
Bitcoin's conventions; here we normalize so expected attempts equal the
difficulty exactly, which keeps the arithmetic in benchmarks transparent.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.common.types import Hash
from repro.crypto.hashing import hash_to_int, sha256d

# Hashes are 256-bit; a difficulty-1 target accepts every hash.
MAX_TARGET = 2**256 - 1


def difficulty_to_target(difficulty: float) -> int:
    """Target below which a hash wins, for a given difficulty."""
    if difficulty < 1:
        raise ValueError(f"difficulty must be >= 1, got {difficulty}")
    if float(difficulty).is_integer():
        return MAX_TARGET // int(difficulty)  # exact; avoids float rounding
    return min(MAX_TARGET, int(MAX_TARGET / difficulty))


def target_to_difficulty(target: int) -> float:
    if not 0 < target <= MAX_TARGET:
        raise ValueError(f"target out of range: {target}")
    return MAX_TARGET / target


def leading_zero_bits(target: int) -> int:
    """The paper's framing: number of leading zero bits the target implies."""
    return 256 - target.bit_length()


def pow_hash(payload: bytes, nonce: int) -> Hash:
    """The puzzle function: double-SHA256 of payload plus 8-byte nonce."""
    return sha256d(payload + struct.pack(">Q", nonce))


def check_pow(payload: bytes, nonce: int, target: int) -> bool:
    """Cheap verification — the asymmetry that makes PoW usable."""
    return hash_to_int(pow_hash(payload, nonce)) <= target


@dataclass(frozen=True)
class PowSolution:
    nonce: int
    attempts: int
    digest: Hash


def solve_pow(
    payload: bytes,
    target: int,
    start_nonce: int = 0,
    max_attempts: Optional[int] = None,
) -> Optional[PowSolution]:
    """Grind nonces until the hash meets ``target``.

    Returns ``None`` when ``max_attempts`` is exhausted — callers treat
    that as "lost the lottery this round".  This is the *real* puzzle
    (suitable at test difficulties); network-scale simulations model the
    same process as Poisson block discovery (see
    :class:`repro.blockchain.miner.SimulatedMiner`).
    """
    nonce = start_nonce
    attempts = 0
    while max_attempts is None or attempts < max_attempts:
        digest = pow_hash(payload, nonce)
        attempts += 1
        if hash_to_int(digest) <= target:
            return PowSolution(nonce=nonce, attempts=attempts, digest=digest)
        nonce += 1
    return None


def expected_attempts(difficulty: float) -> float:
    """Mean number of hash evaluations to solve at ``difficulty``."""
    return float(difficulty)


# ---------------------------------------------------------------- hashcash

#: Default anti-spam difficulty for DAG blocks: cheap for a legitimate
#: sender issuing occasional transactions, expensive for a spammer issuing
#: thousands (Section III-B: "similar to Hashcash").
DEFAULT_ANTISPAM_DIFFICULTY = 1 << 12


def solve_antispam(payload: bytes, difficulty: float = DEFAULT_ANTISPAM_DIFFICULTY) -> int:
    """Compute the ``work`` field for a DAG block; returns the nonce."""
    solution = solve_pow(payload, difficulty_to_target(difficulty))
    assert solution is not None  # unbounded search always terminates
    return solution.nonce


def check_antispam(
    payload: bytes, work: int, difficulty: float = DEFAULT_ANTISPAM_DIFFICULTY
) -> bool:
    return check_pow(payload, work, difficulty_to_target(difficulty))
