"""Bitcoin-style Merkle tree (Section II-A of the paper).

Transactions in a block are hashed pairwise up to a single *Merkle root*
stored in the block header.  The tree supports logarithmic inclusion
proofs — the mechanism that lets pruned and light nodes (Section V) verify
that a transaction belongs to a block without holding the block body.

Bitcoin's rule for an odd level is to duplicate the last element; we
follow it so the root of a single-leaf tree is well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.types import Hash
from repro.crypto.hashing import hash_concat, sha256d


@dataclass(frozen=True)
class MerkleProofStep:
    """One sibling on the leaf-to-root path."""

    sibling: Hash
    sibling_is_left: bool


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf: the sibling path up to the root."""

    leaf: Hash
    steps: List[MerkleProofStep]

    def compute_root(self) -> Hash:
        """Fold the path back to the root this proof commits to."""
        current = self.leaf
        for step in self.steps:
            if step.sibling_is_left:
                current = hash_concat(step.sibling, current)
            else:
                current = hash_concat(current, step.sibling)
        return current

    def verify(self, root: Hash) -> bool:
        return self.compute_root() == root


class MerkleTree:
    """Merkle tree over a fixed sequence of leaf hashes."""

    def __init__(self, leaves: Sequence[Hash]) -> None:
        if not leaves:
            raise ValueError("Merkle tree requires at least one leaf")
        self._levels: List[List[Hash]] = [list(leaves)]
        while len(self._levels[-1]) > 1:
            self._levels.append(_next_level(self._levels[-1]))

    @classmethod
    def from_items(cls, items: Sequence[bytes]) -> "MerkleTree":
        """Build a tree over raw serialized items (leaves are sha256d)."""
        return cls([sha256d(item) for item in items])

    @property
    def root(self) -> Hash:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._levels[0])

    @property
    def depth(self) -> int:
        """Number of hashing levels above the leaves."""
        return len(self._levels) - 1

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf index {index} out of range")
        steps: List[MerkleProofStep] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_left = False
            else:
                sibling_index = position - 1
                sibling_is_left = True
            if sibling_index >= len(level):
                sibling_index = position  # odd level: last node is duplicated
            steps.append(
                MerkleProofStep(sibling=level[sibling_index], sibling_is_left=sibling_is_left)
            )
            position //= 2
        return MerkleProof(leaf=self._levels[0][index], steps=steps)


def merkle_root(leaves: Sequence[Hash]) -> Hash:
    """Root without keeping the tree (block construction fast path)."""
    if not leaves:
        raise ValueError("Merkle root requires at least one leaf")
    level = list(leaves)
    while len(level) > 1:
        level = _next_level(level)
    return level[0]


def _next_level(level: List[Hash]) -> List[Hash]:
    if len(level) % 2 == 1:
        level = level + [level[-1]]
    return [hash_concat(level[i], level[i + 1]) for i in range(0, len(level), 2)]
