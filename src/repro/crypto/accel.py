"""Accelerated-tier selection (``REPRO_ACCEL=auto|off``).

The "accelerated" tier is still pure python — the container ships no
compiled extensions — but it is *batch-oriented*: signature verification
amortizes one registry lookup per key over a whole burst, HMAC state is
precomputed per seed (ipad/opad SHA-256 states cloned per message
instead of two ``hmac.new`` constructions), canonical encoding writes
into a shared preallocated ``bytearray``, and same-timestamp network
deliveries are coalesced into one dispatch.  Every fast path is
byte-identical to the reference implementation; the golden determinism
fingerprints in ``tests/test_sim_determinism.py`` pin that with the tier
on and off.

Selection happens once, at import, from the ``REPRO_ACCEL`` environment
variable:

* ``auto`` (default) — use the batch tier if the start-up self-test
  proves it byte-identical to :mod:`hmac` on this interpreter;
* ``off`` — force the pure-python reference paths everywhere (scalar
  verification, per-message ``hmac.new``, per-delivery dispatch).

The self-test guards exotic ``hashlib`` builds whose digest objects
cannot ``.copy()`` mid-stream: on any failure the tier degrades to
``"fallback"`` rather than crashing.  CI pins
``active_backend() == "batch"`` under ``REPRO_ACCEL=auto`` so a silent
degradation on the reference platform fails the build instead of
quietly benchmarking the slow path.
"""

from __future__ import annotations

import hashlib
import hmac
import os

ACCEL_ENV = "REPRO_ACCEL"
MODES = ("auto", "off")

_HMAC_BLOCK = 64  # SHA-256 block size: HMAC pads/truncates keys to this.


def _requested_mode() -> str:
    value = os.environ.get(ACCEL_ENV, "auto").strip().lower() or "auto"
    if value not in MODES:
        raise ValueError(
            f"{ACCEL_ENV} must be one of {'|'.join(MODES)}, got {value!r}"
        )
    return value


def _self_test() -> bool:
    """Prove the cloned-state HMAC trick is byte-identical to :mod:`hmac`."""
    try:
        seed = b"\x5a" * 32
        message = b"repro-accel-selftest"
        padded = seed.ljust(_HMAC_BLOCK, b"\x00")
        inner = hashlib.sha256(bytes(b ^ 0x36 for b in padded))
        outer = hashlib.sha256(bytes(b ^ 0x5C for b in padded))
        i = inner.copy()
        i.update(message)
        o = outer.copy()
        o.update(i.digest())
        return o.digest() == hmac.new(seed, message, hashlib.sha256).digest()
    except Exception:
        return False


#: What the environment asked for ("auto" or "off").
REQUESTED_MODE = _requested_mode()

#: What actually got selected: "batch" (accelerated tier live) or
#: "fallback" (reference paths — either forced off or self-test failed).
BACKEND = "batch" if REQUESTED_MODE == "auto" and _self_test() else "fallback"


def requested_mode() -> str:
    """The ``REPRO_ACCEL`` value this process was imported under."""
    return REQUESTED_MODE


def active_backend() -> str:
    """``"batch"`` when the accelerated tier is live, else ``"fallback"``."""
    return BACKEND


def enabled() -> bool:
    """True when the batch tier is active (hot paths take the fast lane)."""
    return BACKEND == "batch"
