"""Cryptographic primitives for both ledger paradigms.

* :mod:`repro.crypto.hashing` — SHA-256 / double-SHA-256 digests.
* :mod:`repro.crypto.merkle` — Bitcoin-style Merkle trees with inclusion
  proofs (Section II-A / V-A of the paper).
* :mod:`repro.crypto.trie` — a Merkle-Patricia trie for Ethereum's state,
  transaction and receipt roots (Section II-A / V-A).
* :mod:`repro.crypto.keys` — simulated signature scheme (see module
  docstring for the substitution rationale).
* :mod:`repro.crypto.pow` — partial hash inversion proof-of-work and
  difficulty/target arithmetic (Section III-A1), plus the hashcash-style
  anti-spam variant Nano uses (Section III-B).
"""

from repro.crypto import accel
from repro.crypto.hashing import sha256, sha256d
from repro.crypto.keys import (
    KeyPair,
    prewarm_signatures,
    sigcache_counters,
    verify_signature,
    verify_signatures_batch,
)
from repro.crypto.merkle import MerkleTree
from repro.crypto.pow import check_pow, difficulty_to_target, solve_pow, target_to_difficulty
from repro.crypto.trie import MerklePatriciaTrie

__all__ = [
    "KeyPair",
    "MerklePatriciaTrie",
    "MerkleTree",
    "accel",
    "check_pow",
    "difficulty_to_target",
    "prewarm_signatures",
    "sha256",
    "sha256d",
    "sigcache_counters",
    "solve_pow",
    "target_to_difficulty",
    "verify_signature",
    "verify_signatures_batch",
]
