"""Merkle-Patricia trie — Ethereum's authenticated key/value store.

Ethereum (Section II-A and V-A of the paper) keeps *three* authenticated
structures per block: the transaction trie, the receipt trie, and the
global *state trie* whose root changes with every state delta.  This
module implements a hex-nibble Patricia trie with the three Ethereum node
kinds (leaf, extension, branch), content-addressed node storage, and
Merkle inclusion proofs.

The state-delta bookkeeping that Ethereum's fast sync prunes (Section V-A)
falls out naturally: every ``put`` creates new nodes along one path while
old nodes remain in the node store, so the *delta* between two roots is
exactly the set of nodes reachable from one root but not the other
(:meth:`MerklePatriciaTrie.reachable_nodes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.common.encoding import encode_bytes, encode_list, encode_uint
from repro.common.types import Hash
from repro.crypto.hashing import sha256

_BRANCH_WIDTH = 16

# Node kind tags used in the canonical node encoding.
_KIND_LEAF = 0
_KIND_EXTENSION = 1
_KIND_BRANCH = 2

_EMPTY_ROOT = sha256(b"repro-empty-trie")


def _to_nibbles(key: bytes) -> Tuple[int, ...]:
    nibbles: List[int] = []
    for byte in key:
        nibbles.append(byte >> 4)
        nibbles.append(byte & 0x0F)
    return tuple(nibbles)


def _common_prefix(a: Tuple[int, ...], b: Tuple[int, ...]) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


@dataclass(frozen=True)
class _Node:
    """One trie node.  Exactly one interpretation per ``kind``:

    * leaf:       ``path`` is the remaining key suffix, ``value`` the payload.
    * extension:  ``path`` is a shared prefix, ``child`` the next node hash.
    * branch:     ``children`` is a 16-slot table, ``value`` an optional
                  payload for a key ending exactly here.
    """

    kind: int
    path: Tuple[int, ...] = ()
    value: Optional[bytes] = None
    child: Optional[Hash] = None
    children: Tuple[Optional[Hash], ...] = field(default=(None,) * _BRANCH_WIDTH)

    def encode(self) -> bytes:
        parts = [encode_uint(self.kind, 1)]
        parts.append(encode_bytes(bytes(self.path)))
        parts.append(encode_bytes(self.value if self.value is not None else b""))
        parts.append(encode_uint(1 if self.value is not None else 0, 1))
        parts.append(encode_bytes(bytes(self.child) if self.child else b""))
        child_hashes = [bytes(c) if c else b"" for c in self.children]
        parts.append(encode_list(child_hashes))
        return b"".join(parts)

    def hash(self) -> Hash:
        return sha256(self.encode())


@dataclass(frozen=True)
class TrieProof:
    """Merkle proof: the encoded nodes on the root-to-leaf path."""

    key: bytes
    value: Optional[bytes]
    nodes: Tuple[bytes, ...]


class MerklePatriciaTrie:
    """Authenticated mapping ``bytes -> bytes`` with persistent versions.

    The node store is append-only and content-addressed, so old roots stay
    valid after updates — the behaviour Ethereum relies on to roll back to
    a pre-fork state (Section V-A).  Use :meth:`checkout` to obtain a view
    of a historical root, and :meth:`prune` to discard nodes unreachable
    from a set of retained roots (the fast-sync "database pruned of the
    state deltas").
    """

    def __init__(self) -> None:
        self._nodes: Dict[Hash, _Node] = {}
        self._root: Optional[Hash] = None

    # ------------------------------------------------------------------ core

    @property
    def root_hash(self) -> Hash:
        """Digest committing to the current contents (empty ⇒ sentinel)."""
        return self._root if self._root is not None else _EMPTY_ROOT

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def get(self, key: bytes) -> Optional[bytes]:
        return self._get(self._root, _to_nibbles(key))

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def put(self, key: bytes, value: bytes) -> Hash:
        """Insert/update; returns the new root hash."""
        if not isinstance(value, bytes):
            raise TypeError("trie values must be bytes")
        self._root = self._put(self._root, _to_nibbles(key), value)
        return self.root_hash

    def delete(self, key: bytes) -> Hash:
        """Remove ``key`` if present; returns the new root hash."""
        self._root = self._delete(self._root, _to_nibbles(key))
        return self.root_hash

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """All (key, value) pairs under the current root, sorted by key."""
        yield from self._walk(self._root, ())

    # --------------------------------------------------------------- history

    def set_root(self, root: Hash) -> None:
        """Rewind/advance the *current* version to a stored root.

        Because the node store is persistent, switching roots is O(1);
        this is how account state rolls back across a chain reorg
        (Section IV-A) — Ethereum "keeps track of the deltas ... when a
        state needs to be rolled back".
        """
        if root == _EMPTY_ROOT:
            self._root = None
            return
        if root not in self._nodes:
            raise KeyError(f"unknown trie root {root.short()}")
        self._root = root

    def checkout(self, root: Hash) -> "TrieView":
        """Read-only view of a historical root."""
        return TrieView(self, None if root == _EMPTY_ROOT else root)

    def node_count(self) -> int:
        """Total nodes in the store, including historical versions."""
        return len(self._nodes)

    def store_size_bytes(self) -> int:
        """Serialized size of every stored node (Section V accounting)."""
        return sum(len(node.encode()) for node in self._nodes.values())

    def reachable_nodes(self, root: Hash) -> Set[Hash]:
        """Hashes of all nodes reachable from ``root``."""
        if root == _EMPTY_ROOT:
            return set()
        seen: Set[Hash] = set()
        stack = [root]
        while stack:
            h = stack.pop()
            if h in seen or h not in self._nodes:
                continue
            seen.add(h)
            node = self._nodes[h]
            if node.child is not None:
                stack.append(node.child)
            stack.extend(c for c in node.children if c is not None)
        return seen

    def prune(self, keep_roots: List[Hash]) -> int:
        """Discard nodes unreachable from ``keep_roots``; returns bytes freed."""
        keep: Set[Hash] = set()
        for root in keep_roots:
            keep |= self.reachable_nodes(root)
        freed = 0
        for h in list(self._nodes):
            if h not in keep:
                freed += len(self._nodes[h].encode())
                del self._nodes[h]
        return freed

    # ---------------------------------------------------------------- proofs

    def prove(self, key: bytes) -> TrieProof:
        """Inclusion (or exclusion) proof for ``key`` under the current root."""
        nodes: List[bytes] = []
        value = self._collect_proof(self._root, _to_nibbles(key), nodes)
        return TrieProof(key=key, value=value, nodes=tuple(nodes))

    @staticmethod
    def verify_proof(root: Hash, proof: TrieProof) -> bool:
        """Check a proof against a trusted root without the full trie."""
        if root == _EMPTY_ROOT:
            return proof.value is None and not proof.nodes
        # Rebuild a miniature node store from the supplied nodes and replay
        # the lookup; every referenced node must be present and hash-valid.
        store: Dict[Hash, _Node] = {}
        for raw in proof.nodes:
            node = _decode_node(raw)
            store[sha256(raw)] = node
        value = _lookup_in_store(store, root, _to_nibbles(proof.key))
        return value == proof.value

    # ------------------------------------------------------------- internals

    def _store(self, node: _Node) -> Hash:
        h = node.hash()
        self._nodes[h] = node
        return h

    def _load(self, h: Hash) -> _Node:
        try:
            return self._nodes[h]
        except KeyError:
            raise KeyError(f"trie node {h.short()} missing (pruned?)") from None

    def _get(self, root: Optional[Hash], nibbles: Tuple[int, ...]) -> Optional[bytes]:
        if root is None:
            return None
        node = self._load(root)
        if node.kind == _KIND_LEAF:
            return node.value if node.path == nibbles else None
        if node.kind == _KIND_EXTENSION:
            plen = len(node.path)
            if nibbles[:plen] == node.path:
                return self._get(node.child, nibbles[plen:])
            return None
        # branch
        if not nibbles:
            return node.value
        return self._get(node.children[nibbles[0]], nibbles[1:])

    def _put(self, root: Optional[Hash], nibbles: Tuple[int, ...], value: bytes) -> Hash:
        if root is None:
            return self._store(_Node(kind=_KIND_LEAF, path=nibbles, value=value))
        node = self._load(root)
        if node.kind == _KIND_LEAF:
            return self._put_into_leaf(node, nibbles, value)
        if node.kind == _KIND_EXTENSION:
            return self._put_into_extension(node, nibbles, value)
        return self._put_into_branch(node, nibbles, value)

    def _put_into_leaf(self, node: _Node, nibbles: Tuple[int, ...], value: bytes) -> Hash:
        if node.path == nibbles:
            return self._store(_Node(kind=_KIND_LEAF, path=nibbles, value=value))
        prefix = _common_prefix(node.path, nibbles)
        branch_children: List[Optional[Hash]] = [None] * _BRANCH_WIDTH
        branch_value: Optional[bytes] = None

        old_rest = node.path[prefix:]
        new_rest = nibbles[prefix:]
        if old_rest:
            child = self._store(_Node(kind=_KIND_LEAF, path=old_rest[1:], value=node.value))
            branch_children[old_rest[0]] = child
        else:
            branch_value = node.value
        if new_rest:
            child = self._store(_Node(kind=_KIND_LEAF, path=new_rest[1:], value=value))
            branch_children[new_rest[0]] = child
        else:
            branch_value = value

        branch = self._store(
            _Node(kind=_KIND_BRANCH, children=tuple(branch_children), value=branch_value)
        )
        if prefix:
            return self._store(
                _Node(kind=_KIND_EXTENSION, path=nibbles[:prefix], child=branch)
            )
        return branch

    def _put_into_extension(self, node: _Node, nibbles: Tuple[int, ...], value: bytes) -> Hash:
        prefix = _common_prefix(node.path, nibbles)
        if prefix == len(node.path):
            new_child = self._put(node.child, nibbles[prefix:], value)
            return self._store(
                _Node(kind=_KIND_EXTENSION, path=node.path, child=new_child)
            )
        # Split the extension at the divergence point.
        branch_children: List[Optional[Hash]] = [None] * _BRANCH_WIDTH
        branch_value: Optional[bytes] = None

        old_rest = node.path[prefix:]
        assert node.child is not None
        if len(old_rest) == 1:
            branch_children[old_rest[0]] = node.child
        else:
            sub = self._store(
                _Node(kind=_KIND_EXTENSION, path=old_rest[1:], child=node.child)
            )
            branch_children[old_rest[0]] = sub

        new_rest = nibbles[prefix:]
        if new_rest:
            leaf = self._store(_Node(kind=_KIND_LEAF, path=new_rest[1:], value=value))
            branch_children[new_rest[0]] = leaf
        else:
            branch_value = value

        branch = self._store(
            _Node(kind=_KIND_BRANCH, children=tuple(branch_children), value=branch_value)
        )
        if prefix:
            return self._store(
                _Node(kind=_KIND_EXTENSION, path=nibbles[:prefix], child=branch)
            )
        return branch

    def _put_into_branch(self, node: _Node, nibbles: Tuple[int, ...], value: bytes) -> Hash:
        if not nibbles:
            return self._store(
                _Node(kind=_KIND_BRANCH, children=node.children, value=value)
            )
        slot = nibbles[0]
        new_child = self._put(node.children[slot], nibbles[1:], value)
        children = list(node.children)
        children[slot] = new_child
        return self._store(
            _Node(kind=_KIND_BRANCH, children=tuple(children), value=node.value)
        )

    def _delete(self, root: Optional[Hash], nibbles: Tuple[int, ...]) -> Optional[Hash]:
        if root is None:
            return None
        node = self._load(root)
        if node.kind == _KIND_LEAF:
            return None if node.path == nibbles else root
        if node.kind == _KIND_EXTENSION:
            plen = len(node.path)
            if nibbles[:plen] != node.path:
                return root
            new_child = self._delete(node.child, nibbles[plen:])
            if new_child is None:
                return None
            return self._normalize_extension(node.path, new_child)
        # branch
        if not nibbles:
            if node.value is None:
                return root
            return self._normalize_branch(node.children, None)
        slot = nibbles[0]
        if node.children[slot] is None:
            return root
        new_child = self._delete(node.children[slot], nibbles[1:])
        children = list(node.children)
        children[slot] = new_child
        return self._normalize_branch(tuple(children), node.value)

    def _normalize_branch(
        self, children: Tuple[Optional[Hash], ...], value: Optional[bytes]
    ) -> Optional[Hash]:
        """Collapse degenerate branches so structure stays canonical."""
        live = [(i, c) for i, c in enumerate(children) if c is not None]
        if value is None and not live:
            return None
        if value is None and len(live) == 1:
            slot, child_hash = live[0]
            child = self._load(child_hash)
            if child.kind == _KIND_LEAF:
                return self._store(
                    _Node(kind=_KIND_LEAF, path=(slot,) + child.path, value=child.value)
                )
            if child.kind == _KIND_EXTENSION:
                return self._store(
                    _Node(
                        kind=_KIND_EXTENSION,
                        path=(slot,) + child.path,
                        child=child.child,
                    )
                )
            return self._store(_Node(kind=_KIND_EXTENSION, path=(slot,), child=child_hash))
        if value is not None and not live:
            return self._store(_Node(kind=_KIND_LEAF, path=(), value=value))
        return self._store(_Node(kind=_KIND_BRANCH, children=tuple(children), value=value))

    def _normalize_extension(self, path: Tuple[int, ...], child_hash: Hash) -> Hash:
        child = self._load(child_hash)
        if child.kind == _KIND_LEAF:
            return self._store(
                _Node(kind=_KIND_LEAF, path=path + child.path, value=child.value)
            )
        if child.kind == _KIND_EXTENSION:
            return self._store(
                _Node(kind=_KIND_EXTENSION, path=path + child.path, child=child.child)
            )
        return self._store(_Node(kind=_KIND_EXTENSION, path=path, child=child_hash))

    def _walk(
        self, root: Optional[Hash], prefix: Tuple[int, ...]
    ) -> Iterator[Tuple[bytes, bytes]]:
        if root is None:
            return
        node = self._load(root)
        if node.kind == _KIND_LEAF:
            assert node.value is not None
            yield _from_nibbles(prefix + node.path), node.value
            return
        if node.kind == _KIND_EXTENSION:
            yield from self._walk(node.child, prefix + node.path)
            return
        if node.value is not None:
            yield _from_nibbles(prefix), node.value
        for slot, child in enumerate(node.children):
            if child is not None:
                yield from self._walk(child, prefix + (slot,))

    def _collect_proof(
        self, root: Optional[Hash], nibbles: Tuple[int, ...], out: List[bytes]
    ) -> Optional[bytes]:
        if root is None:
            return None
        node = self._load(root)
        out.append(node.encode())
        if node.kind == _KIND_LEAF:
            return node.value if node.path == nibbles else None
        if node.kind == _KIND_EXTENSION:
            plen = len(node.path)
            if nibbles[:plen] != node.path:
                return None
            return self._collect_proof(node.child, nibbles[plen:], out)
        if not nibbles:
            return node.value
        return self._collect_proof(node.children[nibbles[0]], nibbles[1:], out)


class TrieView:
    """Read-only lens over a historical root of a trie's node store."""

    def __init__(self, trie: MerklePatriciaTrie, root: Optional[Hash]) -> None:
        self._trie = trie
        self._root = root

    @property
    def root_hash(self) -> Hash:
        return self._root if self._root is not None else _EMPTY_ROOT

    def get(self, key: bytes) -> Optional[bytes]:
        return self._trie._get(self._root, _to_nibbles(key))

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        yield from self._trie._walk(self._root, ())


def _from_nibbles(nibbles: Tuple[int, ...]) -> bytes:
    if len(nibbles) % 2 != 0:
        raise ValueError("cannot pack an odd nibble count into bytes")
    return bytes((nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2))


def _decode_node(raw: bytes) -> _Node:
    from repro.common.encoding import Decoder

    d = Decoder(raw)
    kind = d.read_uint(1)
    path = tuple(d.read_bytes())
    value_bytes = d.read_bytes()
    has_value = d.read_uint(1) == 1
    child_raw = d.read_bytes()
    children_raw = d.read_list()
    return _Node(
        kind=kind,
        path=path,
        value=value_bytes if has_value else None,
        child=Hash(child_raw) if child_raw else None,
        children=tuple(Hash(c) if c else None for c in children_raw),
    )


def _lookup_in_store(
    store: Dict[Hash, _Node], root: Hash, nibbles: Tuple[int, ...]
) -> Optional[bytes]:
    current: Optional[Hash] = root
    while current is not None:
        node = store.get(current)
        if node is None:
            return None  # proof incomplete
        if node.kind == _KIND_LEAF:
            return node.value if node.path == nibbles else None
        if node.kind == _KIND_EXTENSION:
            plen = len(node.path)
            if nibbles[:plen] != node.path:
                return None
            nibbles = nibbles[plen:]
            current = node.child
            continue
        if not nibbles:
            return node.value
        current = node.children[nibbles[0]]
        nibbles = nibbles[1:]
    return None


EMPTY_TRIE_ROOT = _EMPTY_ROOT
