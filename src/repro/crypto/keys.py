"""Simulated signature scheme.

**Substitution note (see DESIGN.md §2).**  The real systems use ECDSA
(Bitcoin, Ethereum) and ed25519 (Nano).  The paper's comparative claims
never depend on the algebraic structure of the signatures — only on the
contract *"holders of the private key, and nobody else, can authorize a
transaction"* and on the signature's byte size for ledger accounting.

We therefore implement a keyed-hash scheme: a signature over ``message``
is ``HMAC-SHA256(seed, message)`` extended to 64 bytes (the size of a real
ed25519 / compact-ECDSA signature).  Verification resolves the public key
to its seed through a process-local registry populated at key generation.
Within a simulation this gives exactly the needed adversary model: an
attacker node that does not hold a ``KeyPair`` object cannot produce a
signature that verifies, and tampering with a signed message makes
verification fail.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Dict, Tuple

from repro.common.types import ADDRESS_SIZE, Address, Hash

SIGNATURE_SIZE = 64
PUBLIC_KEY_SIZE = 32

# Process-local oracle mapping public keys to signing seeds. Verification
# is a pure function of (public_key, message, signature) given this table.
_KEY_REGISTRY: Dict[bytes, bytes] = {}

# Signature cache, as real node software keeps (Bitcoin Core's sigcache):
# every node revalidates the same immutable transactions, and verification
# of a (public_key, message, signature) triple is deterministic once the
# key is registered.  Unregistered keys are never cached, so late key
# generation cannot be shadowed by a stale negative entry.
_SIG_CACHE: Dict[Tuple[bytes, bytes, bytes], bool] = {}
_SIG_CACHE_MAX = 1 << 16


@dataclass(frozen=True)
class KeyPair:
    """A signing identity: private seed plus derived public key/address."""

    seed: bytes
    public_key: bytes

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyPair":
        """Create a fresh keypair from the experiment's deterministic RNG."""
        seed = rng.getrandbits(256).to_bytes(32, "big")
        return cls.from_seed(seed)

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        if len(seed) != 32:
            raise ValueError("seed must be 32 bytes")
        public_key = hashlib.sha256(b"repro-pubkey" + seed).digest()
        _KEY_REGISTRY[public_key] = seed
        return cls(seed=seed, public_key=public_key)

    @cached_property
    def address(self) -> Address:
        """20-byte address: truncated hash of the public key (computed
        once — keypairs are immutable and addresses are read constantly)."""
        return address_of(self.public_key)

    def sign(self, message: bytes) -> bytes:
        """64-byte signature over ``message``."""
        mac = hmac.new(self.seed, message, hashlib.sha256).digest()
        ext = hmac.new(self.seed, mac + message, hashlib.sha256).digest()
        return mac + ext

    def sign_hash(self, digest: Hash) -> bytes:
        return self.sign(bytes(digest))


def verify_signature(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check that ``signature`` was produced by the holder of ``public_key``."""
    if len(signature) != SIGNATURE_SIZE:
        return False
    seed = _KEY_REGISTRY.get(public_key)
    if seed is None:
        return False
    cache_key = (public_key, message, signature)
    cached = _SIG_CACHE.get(cache_key)
    if cached is not None:
        return cached
    mac = hmac.new(seed, message, hashlib.sha256).digest()
    ext = hmac.new(seed, mac + message, hashlib.sha256).digest()
    ok = hmac.compare_digest(signature, mac + ext)
    if len(_SIG_CACHE) >= _SIG_CACHE_MAX:
        _SIG_CACHE.clear()
    _SIG_CACHE[cache_key] = ok
    return ok


def verify_hash_signature(public_key: bytes, digest: Hash, signature: bytes) -> bool:
    return verify_signature(public_key, bytes(digest), signature)


@lru_cache(maxsize=65536)
def address_of(public_key: bytes) -> Address:
    """Address for a bare public key (no private seed required)."""
    digest = hashlib.sha256(b"repro-address" + public_key).digest()
    return Address(digest[:ADDRESS_SIZE])
