"""Simulated signature scheme.

**Substitution note (see DESIGN.md §2).**  The real systems use ECDSA
(Bitcoin, Ethereum) and ed25519 (Nano).  The paper's comparative claims
never depend on the algebraic structure of the signatures — only on the
contract *"holders of the private key, and nobody else, can authorize a
transaction"* and on the signature's byte size for ledger accounting.

We therefore implement a keyed-hash scheme: a signature over ``message``
is ``HMAC-SHA256(seed, message)`` extended to 64 bytes (the size of a real
ed25519 / compact-ECDSA signature).  Verification resolves the public key
to its seed through a process-local registry populated at key generation.
Within a simulation this gives exactly the needed adversary model: an
attacker node that does not hold a ``KeyPair`` object cannot produce a
signature that verifies, and tampering with a signed message makes
verification fail.

**Batch tier.**  Real node software amortizes signature checking over
bursts (Bitcoin Core's sigcache and batch-validation lineage); so do we.
:func:`verify_signatures_batch` partitions a burst into cached and
uncached triples, resolves each signer's HMAC state once per key, and
verifies the uncached set in one pass with no intermediate ``mac +
message`` joins.  Under the accelerated tier (``REPRO_ACCEL=auto``, see
:mod:`repro.crypto.accel`) both scalar and batch verification clone
precomputed ipad/opad SHA-256 states instead of constructing two
``hmac.new`` objects per message — byte-identical output, measured ≈2×
faster per signature.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from functools import lru_cache
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.memo import cached
from repro.common.types import ADDRESS_SIZE, Address, Hash
from repro.crypto import accel

SIGNATURE_SIZE = 64
PUBLIC_KEY_SIZE = 32

_sha256 = hashlib.sha256

# Process-local oracle mapping public keys to signing seeds. Verification
# is a pure function of (public_key, message, signature) given this table.
_KEY_REGISTRY: Dict[bytes, bytes] = {}

# Signature cache, as real node software keeps (Bitcoin Core's sigcache):
# every node revalidates the same immutable transactions, and verification
# of a (public_key, message, signature) triple is deterministic once the
# key is registered.  Unregistered keys are never cached, so late key
# generation cannot be shadowed by a stale negative entry.
#
# Overflow evicts a bounded oldest chunk (dict preserves insertion order)
# instead of clearing wholesale: a full clear throws away the entire hot
# set and shows up as periodic verification-latency spikes under the A8
# soak.  Evicting 1/16th keeps the recent working set warm.
_SIG_CACHE: Dict[Tuple[bytes, bytes, bytes], bool] = {}
_SIG_CACHE_MAX = 1 << 16
_SIG_CACHE_EVICT_CHUNK = _SIG_CACHE_MAX >> 4

# Hit/miss/evict accounting, surfaced through the deployment's layer
# counters (the cache is process-global, so these are too).  ``seeds``
# counts signer-side inserts (accelerated tier only, see
# :meth:`KeyPair.sign`).
_SIG_STATS = {"hits": 0, "misses": 0, "evictions": 0, "seeds": 0}

# Per-seed HMAC proto-states for the accelerated tier: SHA-256 objects
# that have already absorbed the ipad/opad-xored key block.  Cloning one
# and feeding it the message is byte-identical to ``hmac.new`` (pinned by
# the accel self-test and tests) at roughly half the cost.
_PROTO_CACHE: Dict[bytes, Tuple["hashlib._Hash", "hashlib._Hash"]] = {}
_PROTO_CACHE_MAX = 1 << 12
_HMAC_BLOCK = 64

_ACCEL = accel.enabled()


def _hmac_protos(seed: bytes):
    """(inner, outer) SHA-256 states with the keyed pads pre-absorbed."""
    protos = _PROTO_CACHE.get(seed)
    if protos is None:
        if len(_PROTO_CACHE) >= _PROTO_CACHE_MAX:
            for stale in list(islice(iter(_PROTO_CACHE), _PROTO_CACHE_MAX >> 4)):
                del _PROTO_CACHE[stale]
        padded = seed.ljust(_HMAC_BLOCK, b"\x00")
        protos = (
            _sha256(bytes(b ^ 0x36 for b in padded)),
            _sha256(bytes(b ^ 0x5C for b in padded)),
        )
        _PROTO_CACHE[seed] = protos
    return protos


if _ACCEL:

    def _hmac_pair(seed: bytes, message: bytes) -> Tuple[bytes, bytes]:
        """``(mac, ext)`` halves of a signature over ``message``."""
        inner, outer = _hmac_protos(seed)
        i = inner.copy()
        i.update(message)
        o = outer.copy()
        o.update(i.digest())
        mac = o.digest()
        # ext = HMAC(seed, mac + message) — streamed, no concatenation.
        i = inner.copy()
        i.update(mac)
        i.update(message)
        o = outer.copy()
        o.update(i.digest())
        return mac, o.digest()

else:

    def _hmac_pair(seed: bytes, message: bytes) -> Tuple[bytes, bytes]:
        """``(mac, ext)`` halves of a signature over ``message``."""
        mac = hmac.new(seed, message, _sha256).digest()
        ext = hmac.new(seed, mac + message, _sha256).digest()
        return mac, ext


def _evict_sig_cache() -> None:
    for stale in list(islice(iter(_SIG_CACHE), _SIG_CACHE_EVICT_CHUNK)):
        del _SIG_CACHE[stale]
    _SIG_STATS["evictions"] += _SIG_CACHE_EVICT_CHUNK


@dataclass(frozen=True)
class KeyPair:
    """A signing identity: private seed plus derived public key/address."""

    seed: bytes
    public_key: bytes

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyPair":
        """Create a fresh keypair from the experiment's deterministic RNG."""
        seed = rng.getrandbits(256).to_bytes(32, "big")
        return cls.from_seed(seed)

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        if len(seed) != 32:
            raise ValueError("seed must be 32 bytes")
        public_key = hashlib.sha256(b"repro-pubkey" + seed).digest()
        _KEY_REGISTRY[public_key] = seed
        return cls(seed=seed, public_key=public_key)

    @cached
    def address(self) -> Address:
        """20-byte address: truncated hash of the public key (computed
        once — keypairs are immutable and addresses are read constantly)."""
        return address_of(self.public_key)

    def sign(self, message: bytes) -> bytes:
        """64-byte signature over ``message``.

        Under the accelerated tier the signer *seeds the sigcache*: it
        just computed the only byte string that verifies over
        ``message``, so first-contact verification anywhere in this
        process partitions as a cache hit instead of recomputing the
        HMAC pair — the same "never re-verify what this process already
        validated" amortization Bitcoin Core's sigcache applies to
        mempool-validated transactions.  Behavior-neutral: the cached
        verdict is exactly what verification would compute.
        """
        mac, ext = _hmac_pair(self.seed, message)
        signature = mac + ext
        if _ACCEL:
            if len(_SIG_CACHE) >= _SIG_CACHE_MAX:
                _evict_sig_cache()
            _SIG_CACHE[(self.public_key, message, signature)] = True
            _SIG_STATS["seeds"] += 1
        return signature

    def sign_hash(self, digest: Hash) -> bytes:
        return self.sign(bytes(digest))


def verify_signature(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Check that ``signature`` was produced by the holder of ``public_key``."""
    if len(signature) != SIGNATURE_SIZE:
        return False
    seed = _KEY_REGISTRY.get(public_key)
    if seed is None:
        return False
    cache_key = (public_key, message, signature)
    cached = _SIG_CACHE.get(cache_key)
    if cached is not None:
        _SIG_STATS["hits"] += 1
        return cached
    _SIG_STATS["misses"] += 1
    mac, ext = _hmac_pair(seed, message)
    ok = hmac.compare_digest(signature, mac + ext)
    if len(_SIG_CACHE) >= _SIG_CACHE_MAX:
        _evict_sig_cache()
    _SIG_CACHE[cache_key] = ok
    return ok


def verify_signatures_batch(
    items: Sequence[Tuple[bytes, bytes, bytes]],
) -> List[bool]:
    """Per-item verdicts for a burst of ``(public_key, message, signature)``.

    Agrees with :func:`verify_signature` item-for-item (mixed valid /
    tampered / unregistered-key bursts included — property-tested), but
    amortizes the work: one cache probe per item, one registry + HMAC
    proto-state resolution per *distinct key*, and an early mac-half
    comparison that skips the second HMAC for tampered signatures.
    Verified triples are inserted into the sigcache so every later
    replica's revalidation is a hit.
    """
    n = len(items)
    verdicts: List[bool] = [False] * n
    pending: List[Tuple[int, bytes, bytes, bytes, bytes]] = []
    registry_get = _KEY_REGISTRY.get
    cache_get = _SIG_CACHE.get
    stats = _SIG_STATS
    for index in range(n):
        public_key, message, signature = items[index]
        if len(signature) != SIGNATURE_SIZE:
            continue
        seed = registry_get(public_key)
        if seed is None:
            continue
        cached = cache_get((public_key, message, signature))
        if cached is not None:
            stats["hits"] += 1
            verdicts[index] = cached
            continue
        pending.append((index, seed, public_key, message, signature))
    if not pending:
        return verdicts

    sig_cache = _SIG_CACHE
    last_seed: Optional[bytes] = None
    inner = outer = None
    for index, seed, public_key, message, signature in pending:
        cache_key = (public_key, message, signature)
        cached = cache_get(cache_key)
        if cached is not None:
            # A duplicate earlier in this same burst already verified it.
            stats["hits"] += 1
            verdicts[index] = cached
            continue
        stats["misses"] += 1
        if seed is not last_seed:
            inner, outer = _hmac_protos(seed)
            last_seed = seed
        if _ACCEL:
            i = inner.copy()
            i.update(message)
            o = outer.copy()
            o.update(i.digest())
            mac = o.digest()
            if signature[:32] != mac:
                ok = False
            else:
                i = inner.copy()
                i.update(mac)
                i.update(message)
                o = outer.copy()
                o.update(i.digest())
                ok = signature[32:] == o.digest()
        else:
            mac, ext = _hmac_pair(seed, message)
            ok = hmac.compare_digest(signature, mac + ext)
        if len(sig_cache) >= _SIG_CACHE_MAX:
            _evict_sig_cache()
        sig_cache[cache_key] = ok
        verdicts[index] = ok
    return verdicts


def prewarm_signatures(items: Iterable[Tuple[bytes, bytes, bytes]]) -> None:
    """Warm the sigcache for a burst so the scalar checks downstream hit.

    Behavior-neutral by construction: it only populates the cache that
    :func:`verify_signature` would populate anyway, so validation
    outcomes (and golden fingerprints) are byte-identical with or
    without the prewarm.
    """
    batch = items if isinstance(items, (list, tuple)) else list(items)
    if batch:
        verify_signatures_batch(batch)


def verify_hash_signature(public_key: bytes, digest: Hash, signature: bytes) -> bool:
    return verify_signature(public_key, bytes(digest), signature)


def sigcache_counters() -> Dict[str, int]:
    """Process-global sigcache accounting, layer-counter namespaced."""
    return {
        "sigcache.hits": _SIG_STATS["hits"],
        "sigcache.misses": _SIG_STATS["misses"],
        "sigcache.evictions": _SIG_STATS["evictions"],
        "sigcache.seeds": _SIG_STATS["seeds"],
        "sigcache.entries": len(_SIG_CACHE),
    }


def clear_sigcache(reset_stats: bool = True) -> None:
    """Drop cached verdicts (and optionally the counters) — test/bench aid."""
    _SIG_CACHE.clear()
    _PROTO_CACHE.clear()
    if reset_stats:
        for stat in _SIG_STATS:
            _SIG_STATS[stat] = 0


@lru_cache(maxsize=65536)
def address_of(public_key: bytes) -> Address:
    """Address for a bare public key (no private seed required)."""
    digest = hashlib.sha256(b"repro-address" + public_key).digest()
    return Address(digest[:ADDRESS_SIZE])
