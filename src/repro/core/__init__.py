"""The paper's contribution: a uniform lens over both DLT paradigms.

:mod:`repro.core.ledger` defines the paradigm-agnostic :class:`Ledger`
interface; :mod:`repro.core.adapters` implements it for a blockchain
deployment and a block-lattice deployment; :mod:`repro.core.comparison`
runs the same workload through both and produces the paper's
five-dimension comparison; :mod:`repro.core.experiment` registers every
reproduced figure/claim.
"""

from repro.core.adapters import BlockchainLedger, DagLedger
from repro.core.comparison import ComparisonReport, compare_ledgers
from repro.core.experiment import EXPERIMENTS, Experiment
from repro.core.ledger import Ledger, LedgerStats

__all__ = [
    "BlockchainLedger",
    "ComparisonReport",
    "DagLedger",
    "EXPERIMENTS",
    "Experiment",
    "Ledger",
    "LedgerStats",
    "compare_ledgers",
]
