"""Deployment invariant auditing.

A distributed ledger's whole point is a handful of global invariants —
value conservation, replica agreement, no surviving double spends.  This
module checks them against *running deployments* (networks of nodes),
returning structured violations instead of asserting, so tests, benches
and examples can audit any simulation they build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.common.types import TxId
from repro.blockchain.node import BlockchainNode
from repro.blockchain.transaction import Transaction
from repro.dag.node import NanoNode


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to debug it."""

    invariant: str
    detail: str


@dataclass
class AuditReport:
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant=invariant, detail=detail))

    def render(self) -> str:
        if self.ok:
            return "all invariants hold"
        return "\n".join(f"[{v.invariant}] {v.detail}" for v in self.violations)


# ------------------------------------------------------------- blockchain


def audit_blockchain(
    nodes: Sequence[BlockchainNode],
    expected_supply_base: int,
    agreement_depth: int = 6,
) -> AuditReport:
    """Audit a blockchain deployment.

    * supply: every UTXO replica's total value equals the genesis supply
      plus the mined rewards on its main chain;
    * agreement: all replicas share the block at ``agreement_depth``
      below the shortest chain (tips may legitimately differ);
    * no double spend: no outpoint is consumed twice on any main chain.
    """
    report = AuditReport()
    if not nodes:
        report.add("setup", "no nodes to audit")
        return report

    for node in nodes:
        if node.utxo is not None:
            expected = (
                expected_supply_base + node.params.block_reward * node.chain.height
            )
            actual = node.utxo.total_value()
            if actual != expected:
                report.add(
                    "supply",
                    f"{node.node_id}: UTXO total {actual} != expected {expected}",
                )
        elif node.state is not None:
            # Account supply grows by reward + nothing else; fees move.
            expected = (
                expected_supply_base + node.params.block_reward * node.chain.height
            )
            actual = node.state.total_supply()
            if actual != expected:
                report.add(
                    "supply",
                    f"{node.node_id}: account total {actual} != expected {expected}",
                )

    heights = [n.chain.height for n in nodes]
    if max(heights) - min(heights) > agreement_depth:
        laggards = [
            n.node_id for n in nodes if n.chain.height < max(heights) - agreement_depth
        ]
        report.add(
            "liveness",
            f"replicas {laggards} lag the best height {max(heights)} by more "
            f"than {agreement_depth} blocks",
        )
    check_height = max(min(heights) - agreement_depth, 0)
    deep_blocks = {n.chain.block_at_height(check_height).block_id for n in nodes}
    agreement_ok = len(deep_blocks) == 1
    if not agreement_ok:
        report.add(
            "agreement",
            f"replicas disagree at height {check_height}: "
            + ", ".join(h.short() for h in deep_blocks),
        )

    for node in nodes:
        spent: Set[Tuple[TxId, int]] = set()
        for block in node.chain.main_chain():
            for tx in block.transactions:
                if not isinstance(tx, Transaction) or tx.is_coinbase:
                    continue
                for tx_input in tx.inputs:
                    if tx_input.outpoint in spent:
                        report.add(
                            "double-spend",
                            f"{node.node_id}: outpoint "
                            f"{tx_input.prev_txid.short()}:{tx_input.prev_index} "
                            "spent twice on the main chain",
                        )
                    spent.add(tx_input.outpoint)
        if agreement_ok:
            # Main chains agree below the tips, so one replica's walk
            # covers them all; with divergent chains every replica's own
            # main chain must be checked for a surviving double spend.
            break

    return report


# -------------------------------------------------------------------- dag


def audit_lattice(nodes: Sequence[NanoNode], expected_supply: int) -> AuditReport:
    """Audit a block-lattice deployment.

    * supply: every replica's balances + pending sends equal the genesis
      supply;
    * agreement: all replicas hold the same chain head per account;
    * one successor: no replica has two blocks claiming one predecessor
      (structurally impossible in our lattice, checked for belt and
      braces via per-chain linkage).
    """
    report = AuditReport()
    if not nodes:
        report.add("setup", "no nodes to audit")
        return report

    for node in nodes:
        supply = node.lattice.total_supply()
        if supply != expected_supply:
            report.add(
                "supply",
                f"{node.node_id}: lattice supply {supply} != {expected_supply}",
            )

    accounts = set()
    for node in nodes:
        accounts.update(node.lattice.accounts())
    for account in accounts:
        heads = set()
        for node in nodes:
            chain = node.lattice.chain(account)
            if chain is not None and chain.blocks:
                heads.add(chain.head.block_hash)
        if len(heads) > 1:
            report.add(
                "agreement",
                f"account {account.short()}: replicas report heads "
                + ", ".join(h.short() for h in heads),
            )

    for node in nodes:
        for chain in node.lattice.chains():
            for prev, block in zip(chain.blocks, chain.blocks[1:]):
                if block.previous != prev.block_hash:
                    report.add(
                        "linkage",
                        f"{node.node_id}/{account.short()}: broken chain link at "
                        f"{block.block_hash.short()}",
                    )
    return report


# -------------------------------------------------------------------- bft


def audit_bft(
    nodes: Sequence["BftNode"],
    expected_supply: int,
    lag_blocks: int = 8,
) -> AuditReport:
    """Audit a quorum-certificate BFT deployment.

    * safety (strict at every tick): no two replicas have committed
      conflicting blocks — every pair of committed sequences must be
      prefix-consistent.  This is the f < n/3 guarantee; the
      seeded-violation profile breaks it by over-riding f.
    * supply (strict): each replica's account balances sum to the funded
      total (commit-time application conserves value by construction;
      the check catches injected corruption).
    * liveness (eventual): once traffic has flowed, every online replica
      is within ``lag_blocks`` commits of the most advanced one, which
      in turn has committed at least one block.  Transient lag during
      view changes and partitions is expected; the monitor only enforces
      this strictly at quiescence.
    """
    report = AuditReport()
    if not nodes:
        report.add("setup", "no nodes to audit")
        return report

    for node in nodes:
        total = sum(node.balances.values())
        if total != expected_supply:
            report.add(
                "supply",
                f"{node.node_id}: balances sum {total} != {expected_supply}",
            )

    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            shorter, longer = (a, b) if len(a.committed) <= len(b.committed) \
                else (b, a)
            prefix = longer.committed[: len(shorter.committed)]
            if shorter.committed != prefix:
                divergence = next(
                    (k for k, (x, y) in
                     enumerate(zip(shorter.committed, prefix)) if x != y),
                    len(shorter.committed),
                )
                report.add(
                    "safety",
                    f"{a.node_id} / {b.node_id}: committed sequences "
                    f"diverge at height {divergence} "
                    f"({shorter.committed[divergence].short()} vs "
                    f"{prefix[divergence].short()})",
                )

    online = [n for n in nodes if getattr(n, "online", True)]
    if online:
        heights = {n.node_id: n.committed_height for n in online}
        top = max(heights.values())
        if top < 1:
            report.add("liveness", "no replica has committed any block")
        laggards = [nid for nid, h in heights.items()
                    if top - h > lag_blocks]
        if laggards:
            report.add(
                "liveness",
                f"replicas {', '.join(sorted(laggards))} lag the "
                f"committed frontier (height {top}) by more than "
                f"{lag_blocks} blocks",
            )
    return report
