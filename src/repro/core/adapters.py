"""Ledger-interface adapters for the paradigms.

:class:`BlockchainLedger` stands up a PoW blockchain network (UTXO or
account model per its :class:`~repro.blockchain.params.ChainParams`);
:class:`DagLedger` stands up a Nano testbed; :class:`BftLedger` stands
up a HotStuff-style quorum-certificate roster.  All expose the uniform
:class:`~repro.core.ledger.Ledger` API so the comparison layer can drive
them with identical workloads.

Prefer constructing deployments through
:func:`repro.core.deploy.build_deployment` — the uniform factory that
also wires consensus-engine selection and Byzantine adversary mixes.
Direct adapter construction remains supported for compatibility (see
docs/architecture.md for the deprecation timeline).
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError, ValidationError
from repro.common.types import Hash, TxId
from repro.crypto.keys import KeyPair
from repro.net.link import LinkParams
from repro.net.message import Message
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.protocol import aggregate_layer_counters, protocol_nodes
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.mempool import MempoolLimits
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN, ChainParams
from repro.storage.live import (
    LivePruneStats,
    attach_chain_pruning,
    attach_lattice_pruning,
)
from repro.storage.pruning import DEFAULT_KEEP_DEPTH
from repro.blockchain.transaction import Transaction, TxOutput, build_transaction
from repro.blockchain.wallet import AccountWallet, UtxoWallet
from repro.dag.blocks import make_send
from repro.dag.bootstrap import NanoTestbed, build_nano_testbed, fund_accounts
from repro.dag.lattice import PendingInfo
from repro.dag.node import MSG_NANO_BLOCK
from repro.dag.params import NanoParams
from repro.consensus.hotstuff import BftNode, BftPayment
from repro.core.invariants import (
    AuditReport,
    audit_bft,
    audit_blockchain,
    audit_lattice,
)
from repro.core.ledger import DeploymentView, Ledger, LedgerStats
from repro.trace import BYZANTINE
from repro.workloads.generators import PaymentEvent

Outpoint = Tuple[TxId, int]

#: Outpoint/source hashes used by the deliberate supply-corruption
#: backdoor — recognizable in audit evidence.
_CORRUPT_TXID = TxId(b"\xfc" * 32)
_CORRUPT_SOURCE = Hash(b"\xfd" * 32)


class BlockchainLedger(Ledger):
    """A mining blockchain network behind the uniform interface."""

    paradigm = "blockchain"

    def __init__(
        self,
        params: ChainParams = BITCOIN,
        node_count: int = 5,
        link_params: Optional[LinkParams] = None,
        seed: int = 0,
        fee: int = 1,
        mempool_limits: Optional[MempoolLimits] = None,
        prune_interval_s: Optional[float] = None,
        prune_keep_depth: int = DEFAULT_KEEP_DEPTH,
        byzantine_nodes: int = 0,
        byzantine_behavior: str = "selfish",
        plane_factory: Optional[Callable[[Simulator], Network]] = None,
    ) -> None:
        self.name = params.name
        self.params = params
        self.node_count = node_count
        self.link_params = link_params or LinkParams()
        self.seed = seed
        self.fee = fee
        #: MessagePlane constructor (simulator -> plane); None = exact
        #: reference Network.  How the sharded tier slots in underneath
        #: an unchanged protocol stack.
        self.plane_factory = plane_factory
        self.mempool_limits = mempool_limits
        self.prune_interval_s = prune_interval_s
        self.prune_keep_depth = prune_keep_depth
        self.byzantine_nodes = byzantine_nodes
        self.byzantine_behavior = byzantine_behavior
        self.prune_stats: List[LivePruneStats] = []
        self._rng = random.Random(seed)
        self.simulator: Optional[Simulator] = None
        self.network: Optional[Network] = None
        self.nodes: List[BlockchainNode] = []
        self.keys: List[KeyPair] = []
        self._utxo_wallets: List[UtxoWallet] = []
        self._account_wallets: List[AccountWallet] = []
        self._submit_times: Dict[Hash, float] = {}
        self._stats = LedgerStats()
        self._expected_supply_base = 0

    # ----------------------------------------------------------------- setup

    def setup(self, accounts: int, initial_balance: int) -> None:
        self.keys = [KeyPair.generate(self._rng) for _ in range(accounts)]
        allocations = {kp.address: initial_balance for kp in self.keys}
        self.simulator = Simulator(seed=self.seed)
        self.network = (self.plane_factory(self.simulator)
                        if self.plane_factory is not None
                        else Network(self.simulator))

        self._expected_supply_base = accounts * initial_balance
        if self.params.uses_gas:
            # Account model: allocations live in the state trie; the
            # genesis block itself carries no transactions.
            miner_key = KeyPair.generate(self._rng)
            genesis = build_genesis_with_allocations({miner_key.address: 1})
            factory = lambda nid: BlockchainNode(  # noqa: E731
                nid, self.params, genesis, genesis_allocations=allocations,
                mempool_limits=self.mempool_limits,
            )
        else:
            genesis = build_genesis_with_allocations(allocations)
            factory = lambda nid: BlockchainNode(  # noqa: E731
                nid, self.params, genesis, mempool_limits=self.mempool_limits
            )

        nodes = complete_topology(self.network, self.node_count, factory, self.link_params)
        # Filter on the stack interface, not the concrete class: the
        # factory is the only thing that knows which paradigm runs here.
        self.nodes = protocol_nodes(nodes)
        for node in self.nodes:
            miner = KeyPair.generate(self._rng)
            node.start_pow_mining(1.0 / self.node_count, miner.address)
        for node in self.nodes[: self.byzantine_nodes]:
            # Selfish mining (the blockchain family): mined blocks are
            # withheld and released when a competing honest block shows
            # up, orphaning honest work.  Per-node fork_rng stream so
            # the adversary's hold-or-release coin never perturbs the
            # honest miners' schedules.
            node.is_byzantine = True
            node.selfish_mining = True
            node.byz_rng = self.simulator.fork_rng(
                f"byz:{self.byzantine_behavior}:{node.node_id}")
            self.network.tracer.emit(
                self.simulator.now, BYZANTINE, src=node.node_id,
                reason=self.byzantine_behavior)
        if self.prune_interval_s is not None:
            # Bounded-memory soak: every replica sheds old block bodies
            # on a periodic tick while the run continues (Section V-A).
            for node in self.nodes:
                _, stats = attach_chain_pruning(
                    node, self.prune_interval_s, keep_depth=self.prune_keep_depth
                )
                self.prune_stats.append(stats)

        if self.params.uses_gas:
            self._account_wallets = [AccountWallet(kp) for kp in self.keys]
        else:
            coinbase = genesis.transactions[0]
            self._utxo_wallets = []
            for kp in self.keys:
                wallet = UtxoWallet(kp)
                wallet.track_funding(coinbase)
                self._utxo_wallets.append(wallet)

    # ---------------------------------------------------------------- submit

    def submit(self, event: PaymentEvent) -> Optional[Hash]:
        wallet_node = self.nodes[event.sender_index % len(self.nodes)]
        try:
            if self.params.uses_gas:
                tx = self._make_account_tx(event)
            else:
                tx = self._make_utxo_tx(event)
        except ValidationError:
            return None
        if not wallet_node.submit_transaction(tx):
            return None
        self._stats.entries_created += 1
        self._submit_times[tx.txid] = self.now()
        return tx.txid

    def _make_utxo_tx(self, event: PaymentEvent) -> Transaction:
        sender_wallet = self._utxo_wallets[event.sender_index]
        recipient_wallet = self._utxo_wallets[event.recipient_index]
        tx = sender_wallet.pay(recipient_wallet.address, event.amount, fee=self.fee)
        recipient_wallet.receive_from(tx)
        return tx

    def _make_account_tx(self, event: PaymentEvent):
        return self._account_wallets[event.sender_index].pay(
            self.keys[event.recipient_index].address,
            event.amount,
            gas_price=max(self.fee, 1),
        )

    # ----------------------------------------------------------------- clock

    def advance(self, duration_s: float) -> None:
        assert self.simulator is not None
        self.simulator.run(until=self.simulator.now + duration_s)

    def now(self) -> float:
        return self.simulator.now if self.simulator else 0.0

    # ---------------------------------------------------------------- reads

    def is_confirmed(self, entry: Hash) -> bool:
        return self.nodes[0].is_confirmed(entry)

    def balance(self, account_index: int) -> int:
        return self.nodes[0].balance(self.keys[account_index].address)

    def serialized_size(self) -> int:
        node = self.nodes[0]
        size = node.chain.total_size_bytes()
        if node.state is not None:
            size += node.state.store_size_bytes()
        return size

    def stats(self) -> LedgerStats:
        observer = self.nodes[0]
        self._stats.forks_observed = observer.chain.reorg_count
        self._stats.reorgs = sum(n.stats.reorgs for n in self.nodes)
        self._stats.entries_confirmed = sum(
            1 for txid in self._submit_times if observer.is_confirmed(txid)
        )
        self._stats.confirmation_latencies_s = self._confirmation_latencies()
        self._stats.extra["blocks"] = float(observer.chain.height)
        self._stats.extra["orphaned_blocks"] = float(
            sum(n.stats.orphaned_blocks for n in self.nodes)
        )
        self._stats.extra.update(aggregate_layer_counters(self.nodes))
        return self._stats

    def _confirmation_latencies(self) -> List[float]:
        """Post-hoc: time from submission until the containing block had
        ``confirmation_depth`` blocks on top (using block timestamps)."""
        observer = self.nodes[0]
        depth = self.params.confirmation_depth
        latencies: List[float] = []
        for txid, submitted in self._submit_times.items():
            block_id = observer._tx_blocks.get(txid)  # noqa: SLF001
            if block_id is None or not observer.chain.is_on_main_chain(block_id):
                continue
            included = observer.chain.block(block_id)
            confirm_height = included.height + depth - 1
            if confirm_height > observer.chain.height:
                continue  # not yet confirmed
            confirm_block = observer.chain.block_at_height(confirm_height)
            latencies.append(max(0.0, confirm_block.header.timestamp - submitted))
        return latencies

    # ------------------------------------------- in-loop check capabilities

    def deployment(self) -> Optional[DeploymentView]:
        if self.simulator is None:
            return None
        return DeploymentView(
            simulator=self.simulator, network=self.network, nodes=self.nodes
        )

    def audit(self) -> Optional[AuditReport]:
        if not self.nodes:
            return None
        return audit_blockchain(
            self.nodes,
            expected_supply_base=self._expected_supply_base,
            agreement_depth=self.params.confirmation_depth,
        )

    def state_digest(self) -> str:
        digest = hashlib.sha256()
        for node in self.nodes:
            head = node.chain.head
            digest.update(
                f"{node.node_id}:{node.chain.height}:{head.block_id.hex}\n".encode()
            )
        for index, key in enumerate(self.keys):
            digest.update(f"{index}:{self.balance(index)}\n".encode())
        return digest.hexdigest()

    def submit_double_spend(self, event: PaymentEvent) -> List[Hash]:
        """Two transactions spending the same outpoints, fed to different
        replicas' mempools — at most one may survive on any main chain."""
        if self.params.uses_gas or not self.nodes:
            return super().submit_double_spend(event)
        sender_wallet = self._utxo_wallets[event.sender_index]
        spendable_before = sender_wallet.spendable()
        try:
            honest = sender_wallet.pay(
                self._utxo_wallets[event.recipient_index].address,
                event.amount, fee=self.fee,
            )
            decoy_recipient = self.keys[
                (event.recipient_index + 1) % len(self.keys)
            ].address
            conflicting = build_transaction(
                sender_wallet.keypair, spendable_before,
                decoy_recipient, event.amount, fee=self.fee,
            )
        except ValidationError:
            return []
        self._utxo_wallets[event.recipient_index].receive_from(honest)
        entries: List[Hash] = []
        node_a = self.nodes[event.sender_index % len(self.nodes)]
        node_b = self.nodes[(event.sender_index + 1) % len(self.nodes)]
        if node_a.submit_transaction(honest):
            self._stats.entries_created += 1
            self._submit_times[honest.txid] = self.now()
            entries.append(honest.txid)
        if node_b.submit_transaction(conflicting):
            entries.append(conflicting.txid)
        return entries

    def inject_supply_corruption(self, amount: int) -> bool:
        """Credit a phantom UTXO (or account balance) on one replica —
        the seeded violation the in-loop audit must catch."""
        if not self.nodes:
            return False
        node = self.nodes[0]
        if node.utxo is not None:
            node.utxo._add(  # noqa: SLF001 - deliberate corruption backdoor
                (_CORRUPT_TXID, 0),
                TxOutput(amount=amount, recipient=self.keys[0].address),
            )
            return True
        if node.state is not None:
            node.state.credit(self.keys[0].address, amount)
            return True
        return False


class DagLedger(Ledger):
    """A Nano block-lattice deployment behind the uniform interface."""

    paradigm = "dag"

    def __init__(
        self,
        params: Optional[NanoParams] = None,
        node_count: int = 8,
        representative_count: int = 4,
        link_params: Optional[LinkParams] = None,
        seed: int = 0,
        processing_tps: Optional[float] = None,
        prune_interval_s: Optional[float] = None,
        byzantine_nodes: int = 0,
        byzantine_behavior: str = "tip-spam",
        plane_factory: Optional[Callable[[Simulator], Network]] = None,
    ) -> None:
        self.params = params or NanoParams(work_difficulty=1)
        self.plane_factory = plane_factory
        self.name = self.params.name
        self.node_count = node_count
        self.representative_count = representative_count
        self.link_params = link_params or LinkParams()
        self.seed = seed
        self.processing_tps = processing_tps
        self.prune_interval_s = prune_interval_s
        self.byzantine_nodes = byzantine_nodes
        self.byzantine_behavior = byzantine_behavior
        self.prune_stats: List[LivePruneStats] = []
        self.testbed: Optional[NanoTestbed] = None
        self.keys: List[KeyPair] = []
        self._submit_times: Dict[Hash, float] = {}
        self._stats = LedgerStats()
        self.supply = 10**15

    def setup(self, accounts: int, initial_balance: int) -> None:
        self.testbed = build_nano_testbed(
            node_count=self.node_count,
            representative_count=self.representative_count,
            supply=self.supply,
            params=self.params,
            link_params=self.link_params,
            seed=self.seed,
            processing_tps=self.processing_tps,
            network_factory=self.plane_factory,
        )
        self.keys = fund_accounts(
            self.testbed, accounts, initial_balance, settle_time=2.0
        )
        for node in self.testbed.nodes[: self.byzantine_nodes]:
            # Conflicting-tip spam (the DAG family): marked replicas are
            # the injection points :meth:`submit_tip_spam` floods from.
            node.is_byzantine = True
            self.testbed.network.tracer.emit(
                self.testbed.simulator.now, BYZANTINE, src=node.node_id,
                reason=self.byzantine_behavior)
        if self.prune_interval_s is not None:
            # Live *current*-node pruning (Section V-B): trim every
            # replica to heads + unsettled sends on a periodic tick.
            for node in self.testbed.nodes:
                _, stats = attach_lattice_pruning(node, self.prune_interval_s)
                self.prune_stats.append(stats)

    def submit(self, event: PaymentEvent) -> Optional[Hash]:
        assert self.testbed is not None
        sender = self.keys[event.sender_index]
        wallet = self.testbed.node_for(sender.address)
        try:
            block = wallet.send_payment(
                sender.address,
                self.keys[event.recipient_index].address,
                event.amount,
            )
        except ReproError:
            return None
        self._stats.entries_created += 1
        self._submit_times[block.block_hash] = self.now()
        return block.block_hash

    def advance(self, duration_s: float) -> None:
        assert self.testbed is not None
        sim = self.testbed.simulator
        sim.run(until=sim.now + duration_s)

    def now(self) -> float:
        return self.testbed.simulator.now if self.testbed else 0.0

    def is_confirmed(self, entry: Hash) -> bool:
        assert self.testbed is not None
        return self.testbed.nodes[0].is_confirmed(entry)

    def balance(self, account_index: int) -> int:
        assert self.testbed is not None
        return self.testbed.nodes[0].balance(self.keys[account_index].address)

    def serialized_size(self) -> int:
        assert self.testbed is not None
        return self.testbed.nodes[0].lattice.serialized_size()

    def stats(self) -> LedgerStats:
        assert self.testbed is not None
        observer = self.testbed.nodes[0]
        self._stats.forks_observed = sum(
            n.stats.forks_seen for n in self.testbed.nodes
        )
        self._stats.entries_confirmed = sum(
            1 for h in self._submit_times if observer.is_confirmed(h)
        )
        latencies: List[float] = []
        for block_hash, submitted in self._submit_times.items():
            confirmed_at = observer.confirmation_times.get(block_hash)
            if confirmed_at is not None:
                latencies.append(max(0.0, confirmed_at - submitted))
        self._stats.confirmation_latencies_s = latencies
        self._stats.extra["dag_blocks"] = float(observer.lattice.block_count())
        self._stats.extra["elections"] = float(observer.elections.elections_started)
        self._stats.extra.update(aggregate_layer_counters(self.testbed.nodes))
        return self._stats

    # ------------------------------------------- in-loop check capabilities

    def deployment(self) -> Optional[DeploymentView]:
        if self.testbed is None:
            return None
        return DeploymentView(
            simulator=self.testbed.simulator,
            network=self.testbed.network,
            nodes=self.testbed.nodes,
        )

    def audit(self) -> Optional[AuditReport]:
        if self.testbed is None:
            return None
        return audit_lattice(self.testbed.nodes, expected_supply=self.supply)

    def state_digest(self) -> str:
        assert self.testbed is not None
        digest = hashlib.sha256()
        for node in self.testbed.nodes:
            lattice = node.lattice
            digest.update(
                f"{node.node_id}:{lattice.block_count()}:"
                f"{lattice.pending_count()}\n".encode()
            )
            for chain in sorted(lattice.chains(),
                                key=lambda c: bytes(c.account)):
                digest.update(
                    f"  {chain.account.hex}:{chain.balance}:"
                    f"{chain.head.block_hash.hex}\n".encode()
                )
        return digest.hexdigest()

    def submit_double_spend(self, event: PaymentEvent) -> List[Hash]:
        """Two send blocks claiming the same predecessor, delivered to
        different replicas — the fork that triggers an election; at most
        one block may survive everywhere (Section III-B/IV-B)."""
        assert self.testbed is not None
        sender = self.keys[event.sender_index]
        wallet = self.testbed.node_for(sender.address)
        chain = wallet.lattice.chain(sender.address)
        if chain is None or chain.balance < event.amount:
            return []
        head = chain.head
        decoy = self.keys[(event.recipient_index + 1) % len(self.keys)]
        honest = make_send(
            sender, previous=head,
            destination=self.keys[event.recipient_index].address,
            amount=event.amount,
            work_difficulty=self.params.work_difficulty,
        )
        conflicting = make_send(
            sender, previous=head, destination=decoy.address,
            amount=event.amount,
            work_difficulty=self.params.work_difficulty,
        )
        nodes = self.testbed.nodes
        node_a = nodes[event.sender_index % len(nodes)]
        node_b = nodes[(event.sender_index + 1) % len(nodes)]
        for node, block in ((node_a, honest), (node_b, conflicting)):
            message = Message(
                kind=MSG_NANO_BLOCK,
                payload=block,
                size_bytes=block.size_bytes,
                dedup_key=block.block_hash,
            )
            # Ingest at the victim replica, then flood from it so the
            # rest of the network (and its representatives) see the
            # conflict and an election resolves it.
            node.deliver("fuzz-adversary", message)
            node.broadcast(message)
        self._stats.entries_created += 1
        self._submit_times[honest.block_hash] = self.now()
        return [honest.block_hash, conflicting.block_hash]

    def submit_tip_spam(self, event: PaymentEvent, fanout: int = 3) -> List[Hash]:
        """Conflicting-tip spam: ``fanout`` mutually conflicting send
        blocks claiming one predecessor, each injected at a different
        replica (Byzantine-marked replicas first) and flooded from
        there.  A wider version of the double-spend fork: every pair
        conflicts, so elections must collapse ``fanout`` tips to at most
        one survivor everywhere."""
        assert self.testbed is not None
        if fanout < 2:
            return self.submit_double_spend(event)
        sender = self.keys[event.sender_index]
        wallet = self.testbed.node_for(sender.address)
        chain = wallet.lattice.chain(sender.address)
        if chain is None or chain.balance < event.amount:
            return []
        head = chain.head
        blocks = []
        for i in range(fanout):
            decoy = self.keys[(event.recipient_index + i) % len(self.keys)]
            blocks.append(make_send(
                sender, previous=head, destination=decoy.address,
                amount=event.amount,
                work_difficulty=self.params.work_difficulty,
            ))
        nodes = self.testbed.nodes
        spam_origins = [n for n in nodes if n.is_byzantine] or nodes
        for i, block in enumerate(blocks):
            node = spam_origins[(event.sender_index + i) % len(spam_origins)]
            message = Message(
                kind=MSG_NANO_BLOCK,
                payload=block,
                size_bytes=block.size_bytes,
                dedup_key=block.block_hash,
            )
            node.deliver("fuzz-adversary", message)
            node.broadcast(message)
        self._stats.entries_created += 1
        self._submit_times[blocks[0].block_hash] = self.now()
        return [b.block_hash for b in blocks]

    def inject_supply_corruption(self, amount: int) -> bool:
        """Park phantom value in one replica's pending table — the
        seeded violation the in-loop audit must catch."""
        if self.testbed is None:
            return False
        lattice = self.testbed.nodes[0].lattice
        lattice._pending_add(  # noqa: SLF001 - deliberate corruption backdoor
            PendingInfo(
                source_hash=_CORRUPT_SOURCE,
                source_account=self.keys[0].address,
                destination=self.keys[-1].address,
                amount=amount,
            )
        )
        return True


class BftLedger(Ledger):
    """A HotStuff-style quorum-certificate roster behind the uniform
    interface — deterministic finality as the third contender next to
    Nakamoto probabilistic confirmation and block-lattice elections.

    Accounts are plain indices in a replicated balance table; a payment
    is a state-machine command that commits when a block carrying it
    gains a commit certificate.  ``byzantine_nodes`` replicas (roster
    prefix) run ``byzantine_behavior`` (equivocate / withhold), each
    with its own forked rng stream; ``quorum_f_override`` widens the
    tolerated fault count past n/3 to reproduce the classical safety
    violation on demand.
    """

    paradigm = "bft"

    def __init__(
        self,
        node_count: int = 4,
        link_params: Optional[LinkParams] = None,
        seed: int = 0,
        view_timeout_s: float = 4.0,
        propose_delay_s: float = 0.25,
        max_batch: int = 16,
        byzantine_nodes: int = 0,
        byzantine_behavior: str = "equivocate",
        quorum_f_override: Optional[int] = None,
    ) -> None:
        self.name = "hotstuff"
        self.node_count = node_count
        self.link_params = link_params or LinkParams()
        self.seed = seed
        self.view_timeout_s = view_timeout_s
        self.propose_delay_s = propose_delay_s
        self.max_batch = max_batch
        self.byzantine_nodes = byzantine_nodes
        self.byzantine_behavior = byzantine_behavior
        self.quorum_f_override = quorum_f_override
        self.simulator: Optional[Simulator] = None
        self.network: Optional[Network] = None
        self.nodes: List[BftNode] = []
        self._accounts = 0
        self._expected_supply = 0
        self._payment_seq = 0
        self._submit_times: Dict[Hash, float] = {}
        self._stats = LedgerStats()

    # ----------------------------------------------------------------- setup

    def setup(self, accounts: int, initial_balance: int) -> None:
        self.simulator = Simulator(seed=self.seed)
        self.network = Network(self.simulator)
        self._accounts = accounts
        self._expected_supply = accounts * initial_balance
        byz_ids = {f"n{i}" for i in range(self.byzantine_nodes)}

        def factory(nid: str) -> BftNode:
            byzantine = nid in byz_ids
            return BftNode(
                nid,
                view_timeout_s=self.view_timeout_s,
                propose_delay_s=self.propose_delay_s,
                max_batch=self.max_batch,
                quorum_f_override=self.quorum_f_override,
                is_byzantine=byzantine,
                byzantine_behavior=(
                    self.byzantine_behavior if byzantine else None),
                byz_rng=(
                    self.simulator.fork_rng(
                        f"byz:{self.byzantine_behavior}:{nid}")
                    if byzantine else None),
            )

        nodes = complete_topology(
            self.network, self.node_count, factory, self.link_params)
        self.nodes = protocol_nodes(nodes)
        roster = [node.node_id for node in self.nodes]
        balances = {i: initial_balance for i in range(accounts)}
        for node in self.nodes:
            node.configure_validators(roster)
            node.fund(balances)
            if node.is_byzantine:
                node.colluders = tuple(
                    sorted(byz_ids - {node.node_id}))
                self.network.tracer.emit(
                    self.simulator.now, BYZANTINE, src=node.node_id,
                    reason=self.byzantine_behavior)
        for node in self.nodes:
            node.start()

    # ---------------------------------------------------------------- submit

    def submit(self, event: PaymentEvent) -> Optional[Hash]:
        assert self.nodes, "setup() first"
        self._payment_seq += 1
        payment_id = Hash(hashlib.sha256(
            f"bftpay:{self._payment_seq}:{event.sender_index}:"
            f"{event.recipient_index}:{event.amount}".encode()).digest())
        payment = BftPayment(
            payment_id=payment_id,
            sender=event.sender_index % self._accounts,
            recipient=event.recipient_index % self._accounts,
            amount=event.amount,
        )
        node = self.nodes[event.sender_index % len(self.nodes)]
        if not node.submit_payment(payment):
            return None
        self._stats.entries_created += 1
        self._submit_times[payment_id] = self.now()
        return payment_id

    # ----------------------------------------------------------------- clock

    def advance(self, duration_s: float) -> None:
        assert self.simulator is not None
        # Never run unbounded: the view pacemaker re-arms a timeout every
        # view, so a BFT deployment always has future events.
        self.simulator.run(until=self.simulator.now + duration_s)

    def now(self) -> float:
        return self.simulator.now if self.simulator else 0.0

    # ---------------------------------------------------------------- reads

    def is_confirmed(self, entry: Hash) -> bool:
        return entry in self.nodes[0].committed_payments

    def balance(self, account_index: int) -> int:
        return self.nodes[0].balances.get(account_index, 0)

    def serialized_size(self) -> int:
        return sum(b.size_bytes for b in self.nodes[0].blocks.values())

    def stats(self) -> LedgerStats:
        observer = self.nodes[0]
        self._stats.entries_confirmed = sum(
            1 for pid in self._submit_times
            if pid in observer.committed_payments
        )
        latencies: List[float] = []
        for pid, submitted in self._submit_times.items():
            committed_at = observer.committed_payments.get(pid)
            if committed_at is not None:
                latencies.append(max(0.0, committed_at - submitted))
        self._stats.confirmation_latencies_s = latencies
        self._stats.forks_observed = sum(
            n.stats.equivocations_detected for n in self.nodes)
        self._stats.extra["committed_blocks"] = float(
            observer.committed_height)
        self._stats.extra["view"] = float(
            max(n.current_view for n in self.nodes))
        self._stats.extra.update(aggregate_layer_counters(self.nodes))
        return self._stats

    # ------------------------------------------- in-loop check capabilities

    def deployment(self) -> Optional[DeploymentView]:
        if self.simulator is None:
            return None
        return DeploymentView(
            simulator=self.simulator, network=self.network, nodes=self.nodes
        )

    def audit(self) -> Optional[AuditReport]:
        if not self.nodes:
            return None
        return audit_bft(self.nodes, expected_supply=self._expected_supply)

    def state_digest(self) -> str:
        digest = hashlib.sha256()
        for node in self.nodes:
            digest.update(f"{node.node_id}:\n".encode())
            for line in node.state_lines():
                digest.update(f"  {line}\n".encode())
        return digest.hexdigest()

    def inject_supply_corruption(self, amount: int) -> bool:
        """Credit a phantom balance on one replica — the seeded
        violation the in-loop audit must catch."""
        if not self.nodes:
            return False
        balances = self.nodes[0].balances
        balances[0] = balances.get(0, 0) + amount
        return True
