"""The five-dimension comparison (the paper's Table-of-its-own).

Runs an identical payment workload through a blockchain deployment and a
DAG deployment and reports, side by side, the paper's five comparison
dimensions: data structure, consensus, confirmation, ledger size, and
scalability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.stats import summarize
from repro.metrics.tables import render_table
from repro.core.ledger import Ledger
from repro.workloads.generators import PaymentEvent


@dataclass
class ParadigmResult:
    """Measured outcomes for one ledger under the common workload."""

    name: str
    paradigm: str
    entries_submitted: int
    entries_confirmed: int
    mean_confirmation_s: Optional[float]
    ledger_bytes: int
    forks: int
    throughput_tps: float
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class ComparisonReport:
    """Side-by-side results plus the qualitative rows of the paper."""

    workload_events: int
    duration_s: float
    blockchain: ParadigmResult
    dag: ParadigmResult

    QUALITATIVE_ROWS = [
        ("data structure", "transactions bundled in chained blocks",
         "one transaction per DAG node (block-lattice)"),
        ("consensus", "leader election by lottery (PoW/PoS)",
         "owner-ordered chains + weighted representative votes"),
        ("confirmation", "depth below chain tip (6 / 5-11 blocks)",
         "majority vote of representative weight"),
        ("ledger growth", "full blocks incl. headers and all txs",
         "one balance-carrying block per transaction"),
        ("scalability cap", "block size / gas over block interval",
         "no protocol cap; node hardware and network bound"),
    ]

    def render(self) -> str:
        quant = render_table(
            ["metric", self.blockchain.name, self.dag.name],
            [
                ["entries submitted", self.blockchain.entries_submitted,
                 self.dag.entries_submitted],
                ["entries confirmed", self.blockchain.entries_confirmed,
                 self.dag.entries_confirmed],
                ["mean confirmation (s)",
                 _fmt_opt(self.blockchain.mean_confirmation_s),
                 _fmt_opt(self.dag.mean_confirmation_s)],
                ["ledger size (bytes)", self.blockchain.ledger_bytes,
                 self.dag.ledger_bytes],
                ["forks observed", self.blockchain.forks, self.dag.forks],
                ["confirmed TPS", round(self.blockchain.throughput_tps, 3),
                 round(self.dag.throughput_tps, 3)],
            ],
            title=(
                f"Blockchain vs DAG under an identical workload "
                f"({self.workload_events} payments, {self.duration_s:.0f}s simulated)"
            ),
        )
        qual = render_table(
            ["dimension", "blockchain", "dag"],
            [list(row) for row in self.QUALITATIVE_ROWS],
            title="Qualitative comparison (paper Sections II-VI)",
        )
        return quant + "\n\n" + qual


def measure_ledger(
    ledger: Ledger, events: List[PaymentEvent], settle_s: float
) -> ParadigmResult:
    """Run the workload on one ledger and collect its result row."""
    entries = ledger.run_workload(events, settle_s=settle_s)
    stats = ledger.stats()
    latencies = stats.confirmation_latencies_s
    duration = ledger.now()
    return ParadigmResult(
        name=ledger.name,
        paradigm=ledger.paradigm,
        entries_submitted=len(entries),
        entries_confirmed=stats.entries_confirmed,
        mean_confirmation_s=(summarize(latencies).mean if latencies else None),
        ledger_bytes=ledger.serialized_size(),
        forks=stats.forks_observed,
        throughput_tps=(stats.entries_confirmed / duration if duration > 0 else 0.0),
        extra=dict(stats.extra),
    )


def compare_ledgers(
    blockchain: Ledger,
    dag: Ledger,
    events: List[PaymentEvent],
    accounts: int,
    initial_balance: int,
    settle_s: float = 60.0,
) -> ComparisonReport:
    """Set up both ledgers, run the identical workload, build the report."""
    blockchain.setup(accounts, initial_balance)
    dag.setup(accounts, initial_balance)
    blockchain_result = measure_ledger(blockchain, events, settle_s)
    dag_result = measure_ledger(dag, events, settle_s)
    return ComparisonReport(
        workload_events=len(events),
        duration_s=max(blockchain.now(), dag.now()),
        blockchain=blockchain_result,
        dag=dag_result,
    )


def _fmt_opt(value: Optional[float]) -> str:
    return f"{value:.2f}" if value is not None else "n/a"
