"""Registry of every reproduced figure and quantitative claim.

Mirrors the per-experiment index in DESIGN.md so code and documentation
cannot drift apart: tests assert that every registered experiment has an
existing bench file and that every listed module imports.

The registry is also the *resolution layer* for the sweep runner
(:mod:`repro.runner`): each entry carries ``default_params`` (the
single-point parameter grid a bare run uses) and knows how to load its
bench module's uniform ``run(params, seed)`` callable via
:meth:`Experiment.load_runner` — no path string munging anywhere else.
"""

from __future__ import annotations

import importlib
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Tuple


def bench_dir() -> Path:
    """Directory holding the ``bench_*.py`` modules.

    Defaults to the repository's ``benchmarks/`` directory next to
    ``src/``; override with the ``REPRO_BENCH_DIR`` environment variable
    (e.g. for installed-package deployments or test fixtures).
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks"


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper."""

    experiment_id: str
    paper_ref: str
    claim: str
    modules: Tuple[str, ...]
    bench: str
    default_params: Mapping[str, Any] = field(default_factory=dict, hash=False)

    @property
    def bench_module(self) -> str:
        """Importable module name of the bench file."""
        name = self.bench
        return name[:-3] if name.endswith(".py") else name

    def load_module(self):
        """Import the bench module (adding the bench dir to ``sys.path``)."""
        directory = str(bench_dir())
        if directory not in sys.path:
            sys.path.insert(0, directory)
        return importlib.import_module(self.bench_module)

    def load_runner(self) -> Callable[[Dict[str, Any], int], Dict[str, Any]]:
        """The bench's uniform ``run(params, seed) -> result`` callable."""
        module = self.load_module()
        run = getattr(module, "run", None)
        if not callable(run):
            raise AttributeError(
                f"{self.bench_module} does not expose run(params, seed)"
            )
        return run


EXPERIMENTS: Dict[str, Experiment] = {
    e.experiment_id: e
    for e in [
        Experiment(
            "F1", "Fig. 1, §II-A",
            "Blockchain: hash-linked blocks of transactions with Merkle roots",
            ("repro.blockchain.block", "repro.blockchain.chain", "repro.crypto.merkle"),
            "bench_f1_blockchain_structure.py",
            default_params={"blocks": 50, "txs_per_block": 10},
        ),
        Experiment(
            "F2", "Fig. 2, §II-B",
            "Block-lattice: per-account chains, one transaction per node",
            ("repro.dag.lattice", "repro.dag.blocks"),
            "bench_f2_block_lattice.py",
            default_params={"accounts": 10, "transfers_per_account": 5},
        ),
        Experiment(
            "F3", "Fig. 3, §II-B",
            "Send/receive pairs; funds pending until receive; offline receivers",
            ("repro.dag.lattice", "repro.dag.node"),
            "bench_f3_send_receive.py",
            default_params={"node_count": 6, "representative_count": 3,
                            "amount": 777},
        ),
        Experiment(
            "F4", "Fig. 4, §IV-A",
            "Soft forks form under delay and resolve to the longest chain",
            ("repro.blockchain.chain", "repro.net.network", "repro.sim"),
            "bench_f4_soft_forks.py",
            default_params={"interval_s": 60.0, "latency_s": 6.0,
                            "duration_s": 1500.0},
        ),
        Experiment(
            "E1", "§III-A1",
            "PoW lottery: win rate tracks hash power; difficulty keeps interval fixed",
            ("repro.crypto.pow", "repro.blockchain.difficulty", "repro.blockchain.miner"),
            "bench_e1_pow_lottery.py",
            default_params={"rounds": 20_000, "growth_factor": 10.0,
                            "pow_difficulty": 512},
        ),
        Experiment(
            "E2", "§III-A2",
            "PoS: selection tracks stake; misbehaviour burns stake; energy gap",
            ("repro.blockchain.pos",),
            "bench_e2_pos.py",
            default_params={"rounds": 20_000},
        ),
        Experiment(
            "E3", "§III-B",
            "ORV: weighted votes resolve conflicts; anti-spam PoW throttles spam",
            ("repro.dag.voting", "repro.dag.representatives", "repro.workloads.attacks"),
            "bench_e3_orv.py",
            default_params={"spam_txs": 500_000, "node_count": 5},
        ),
        Experiment(
            "E4", "§IV-A",
            "Reversal probability falls with depth; 6 (Bitcoin) / 5-11 (Ethereum)",
            ("repro.confirmation.nakamoto",),
            "bench_e4_confirmation_depth.py",
            default_params={"attacker_share": 0.1, "depth": 6, "risk": 0.001},
        ),
        Experiment(
            "E5", "§IV-B",
            "DAG confirmation = one vote round, not k block intervals",
            ("repro.dag.voting", "repro.confirmation.dag_confirmation"),
            "bench_e5_dag_confirmation.py",
            default_params={"transfers": 8, "node_count": 8,
                            "representative_count": 4},
        ),
        Experiment(
            "E6", "§V",
            "Ledger sizes grow linearly; Bitcoin >> Ethereum >> Nano ordering",
            ("repro.storage.sizing", "repro.storage.growth"),
            "bench_e6_ledger_growth.py",
            default_params={"txs": 300},
        ),
        Experiment(
            "E7", "§V-A",
            "Bitcoin pruning and Ethereum fast sync shrink replicas",
            ("repro.storage.pruning", "repro.storage.fast_sync"),
            "bench_e7_blockchain_pruning.py",
            default_params={"blocks": 300, "txs_per_block": 8,
                            "keep_depth": 50, "pivot_window": 64},
        ),
        Experiment(
            "E8", "§V-B",
            "Nano pruning to heads; historical/current/light footprints",
            ("repro.storage.dag_pruning",),
            "bench_e8_dag_pruning.py",
            default_params={"accounts": 20, "transfers": 200},
        ),
        Experiment(
            "E9", "§VI-A",
            "Bitcoin 3-7 TPS, Ethereum 7-15 TPS, PoS ~4s blocks, Visa 56k",
            ("repro.scaling.throughput", "repro.blockchain.params"),
            "bench_e9_blockchain_tps.py",
            default_params={"offered_tps": 20.0, "duration_s": 600.0},
        ),
        Experiment(
            "E10", "§VI-A",
            "Bigger blocks: linear TPS gain, linear node-load growth (Segwit2x)",
            ("repro.scaling.blocksize", "repro.confirmation.orphan"),
            "bench_e10_blocksize.py",
            default_params={"block_size_mb": 2.0},
        ),
        Experiment(
            "E11", "§VI-A",
            "Channels: 2 on-chain txs buy unbounded off-chain volume",
            ("repro.scaling.channels",),
            "bench_e11_channels.py",
            default_params={"clients": 8, "payments_per_client": 500},
        ),
        Experiment(
            "E12", "§VI-A",
            "Plasma: root chain stores commitments only; fraud proofs slash",
            ("repro.scaling.plasma",),
            "bench_e12_plasma.py",
            default_params={"users": 20, "blocks": 25, "txs_per_block": 40},
        ),
        Experiment(
            "E13", "§VI-A",
            "Sharding: ~K-fold throughput, eroded by cross-shard traffic",
            ("repro.scaling.sharding",),
            "bench_e13_sharding.py",
            default_params={"shard_count": 8, "transfers": 2000,
                            "accounts": 200},
        ),
        Experiment(
            "E14", "§VI-B",
            "Nano TPS uncapped by protocol; bounded by node hardware; peak >> avg",
            ("repro.dag.node", "repro.scaling.throughput"),
            "bench_e14_dag_tps.py",
            default_params={"offered_tps": 60.0, "processing_tps": 0.0,
                            "duration_s": 20.0},
        ),
        Experiment(
            "E15", "§IV-A",
            "Double-spend success vs attacker share and depth (Monte Carlo)",
            ("repro.workloads.attacks", "repro.confirmation.nakamoto"),
            "bench_e15_double_spend.py",
            default_params={"attacker_share": 0.25, "depth": 6,
                            "trials": 2000},
        ),
        Experiment(
            "A1", "§IV-A (ablation)",
            "Overlay topology drives flood latency and the soft-fork rate",
            ("repro.net.topology", "repro.sim.simulator"),
            "bench_a1_topology_ablation.py",
            default_params={"topology": "small-world", "nodes": 24,
                            "measure_forks": 0, "fork_duration_s": 1500.0},
        ),
        Experiment(
            "A2", "§III-B (ablation)",
            "ORV quorum fraction trades confirmation speed against liveness",
            ("repro.dag.bootstrap", "repro.dag.voting"),
            "bench_a2_quorum_ablation.py",
            default_params={"quorum": 0.5, "offline_reps": 0},
        ),
        Experiment(
            "A3", "§IV-A (ablation)",
            "Block interval trades orphan rate against confirmation wait",
            ("repro.confirmation.orphan", "repro.confirmation.nakamoto"),
            "bench_a3_interval_ablation.py",
            default_params={"interval_s": 60.0, "propagation_delay_s": 5.0,
                            "attacker_share": 0.15, "risk": 0.001},
        ),
        Experiment(
            "A4", "footnote 1 (extension)",
            "Tangle confirmation confidence grows with cumulative weight",
            ("repro.dag.tangle",),
            "bench_a4_tangle_extension.py",
            default_params={"tx_count": 60, "alpha": 0.05, "samples": 40},
        ),
        Experiment(
            "A5", "§VI-A (ablation)",
            "Live difficulty retargeting absorbs a hashrate shock in-run",
            ("repro.blockchain.retarget",),
            "bench_a5_live_retarget.py",
            default_params={"shock_at_s": 600.0, "horizon_s": 2400.0,
                            "shock_factor": 8.0},
        ),
        Experiment(
            "A6", "footnote 1 (extension)",
            "Witnessed DAG (Byteball): deterministic total order, no election",
            ("repro.dag.byteball",),
            "bench_a6_byteball_extension.py",
            default_params={"units": 40, "witnesses": 5},
        ),
        Experiment(
            "A7", "§IV, §VI-B",
            "Gossip recovers to full delivery after partitions/churn; "
            "trace accounts for every drop",
            ("repro.faults", "repro.trace", "repro.net.network"),
            "bench_a7_fault_tolerance.py",
            default_params={"nodes": 12, "duration_s": 120.0,
                            "partition_at_s": 30.0, "heal_after_s": 30.0,
                            "rate_tps": 0.5, "churn_nodes": 2,
                            "capture_trace": 0},
        ),
        Experiment(
            "A8", "§IV, §V, §VI (extension)",
            "Sustained service: p50/p99 confirmation latency vs offered "
            "load with a saturation knee per paradigm; periodic pruning "
            "bounds ledger size where the unpruned control grows",
            ("repro.workloads.open_loop", "repro.metrics.slo",
             "repro.storage.live"),
            "bench_a8_sustained_load.py",
            default_params={"accounts": 12, "duration_s": 240.0,
                            "settle_s": 120.0,
                            "blockchain_loads": (0.25, 0.5, 1.0, 2.0),
                            "dag_loads": (2.0, 8.0, 24.0),
                            "dag_processing_tps": 12.0,
                            "soak_duration_s": 600.0,
                            "soak_rate_tps": 1.0,
                            "soak_prune_interval_s": 60.0,
                            "soak_keep_depth": 8,
                            "topology_scales": (100, 1_000, 10_000,
                                                100_000),
                            "scale_duration_s": 90.0,
                            "scale_settle_s": 90.0,
                            "scale_blockchain_tps": 1.0,
                            "scale_dag_tps": 8.0},
        ),
        Experiment(
            "A9", "§III, §IV (extension)",
            "Quorum-certificate BFT: deterministic finality, view change "
            "restores liveness, equivocation contained below n/3",
            ("repro.consensus.hotstuff", "repro.core.deploy"),
            "bench_a9_bft.py",
            default_params={"node_count": 4, "payments": 10,
                            "crash_downtime_s": 12.0},
        ),
        Experiment(
            "A10", "§VI (scale tier)",
            "Scale tier: mean-field clusters, sharded floods and full "
            "protocol traffic on the sharded message plane extend the "
            "TPS/propagation curves to 10^4-10^6 nodes",
            ("repro.net.aggregate", "repro.net.sharded_plane",
             "repro.sim.sharded", "repro.core.deploy"),
            "bench_a10_scale.py",
            default_params={"scales": (100, 1_000, 10_000),
                            "duration_s": 120.0,
                            "blockchain_tps": 2.0, "dag_tps": 8.0,
                            "sharded_nodes": 10_000, "sharded_shards": 8,
                            "jobs": 1, "total_nodes": 0,
                            "traffic_nodes": 2_000,
                            "traffic_duration_s": 30.0},
        ),
    ]
}
