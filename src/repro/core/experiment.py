"""Registry of every reproduced figure and quantitative claim.

Mirrors the per-experiment index in DESIGN.md so code and documentation
cannot drift apart: tests assert that every registered experiment has an
existing bench file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper."""

    experiment_id: str
    paper_ref: str
    claim: str
    modules: Tuple[str, ...]
    bench: str


EXPERIMENTS: Dict[str, Experiment] = {
    e.experiment_id: e
    for e in [
        Experiment(
            "F1", "Fig. 1, §II-A",
            "Blockchain: hash-linked blocks of transactions with Merkle roots",
            ("repro.blockchain.block", "repro.blockchain.chain", "repro.crypto.merkle"),
            "bench_f1_blockchain_structure.py",
        ),
        Experiment(
            "F2", "Fig. 2, §II-B",
            "Block-lattice: per-account chains, one transaction per node",
            ("repro.dag.lattice", "repro.dag.blocks"),
            "bench_f2_block_lattice.py",
        ),
        Experiment(
            "F3", "Fig. 3, §II-B",
            "Send/receive pairs; funds pending until receive; offline receivers",
            ("repro.dag.lattice", "repro.dag.node"),
            "bench_f3_send_receive.py",
        ),
        Experiment(
            "F4", "Fig. 4, §IV-A",
            "Soft forks form under delay and resolve to the longest chain",
            ("repro.blockchain.chain", "repro.net.network", "repro.sim"),
            "bench_f4_soft_forks.py",
        ),
        Experiment(
            "E1", "§III-A1",
            "PoW lottery: win rate tracks hash power; difficulty keeps interval fixed",
            ("repro.crypto.pow", "repro.blockchain.difficulty", "repro.blockchain.miner"),
            "bench_e1_pow_lottery.py",
        ),
        Experiment(
            "E2", "§III-A2",
            "PoS: selection tracks stake; misbehaviour burns stake; energy gap",
            ("repro.blockchain.pos",),
            "bench_e2_pos.py",
        ),
        Experiment(
            "E3", "§III-B",
            "ORV: weighted votes resolve conflicts; anti-spam PoW throttles spam",
            ("repro.dag.voting", "repro.dag.representatives", "repro.workloads.attacks"),
            "bench_e3_orv.py",
        ),
        Experiment(
            "E4", "§IV-A",
            "Reversal probability falls with depth; 6 (Bitcoin) / 5-11 (Ethereum)",
            ("repro.confirmation.nakamoto",),
            "bench_e4_confirmation_depth.py",
        ),
        Experiment(
            "E5", "§IV-B",
            "DAG confirmation = one vote round, not k block intervals",
            ("repro.dag.voting", "repro.confirmation.dag_confirmation"),
            "bench_e5_dag_confirmation.py",
        ),
        Experiment(
            "E6", "§V",
            "Ledger sizes grow linearly; Bitcoin >> Ethereum >> Nano ordering",
            ("repro.storage.sizing", "repro.storage.growth"),
            "bench_e6_ledger_growth.py",
        ),
        Experiment(
            "E7", "§V-A",
            "Bitcoin pruning and Ethereum fast sync shrink replicas",
            ("repro.storage.pruning", "repro.storage.fast_sync"),
            "bench_e7_blockchain_pruning.py",
        ),
        Experiment(
            "E8", "§V-B",
            "Nano pruning to heads; historical/current/light footprints",
            ("repro.storage.dag_pruning",),
            "bench_e8_dag_pruning.py",
        ),
        Experiment(
            "E9", "§VI-A",
            "Bitcoin 3-7 TPS, Ethereum 7-15 TPS, PoS ~4s blocks, Visa 56k",
            ("repro.scaling.throughput", "repro.blockchain.params"),
            "bench_e9_blockchain_tps.py",
        ),
        Experiment(
            "E10", "§VI-A",
            "Bigger blocks: linear TPS gain, linear node-load growth (Segwit2x)",
            ("repro.scaling.blocksize", "repro.confirmation.orphan"),
            "bench_e10_blocksize.py",
        ),
        Experiment(
            "E11", "§VI-A",
            "Channels: 2 on-chain txs buy unbounded off-chain volume",
            ("repro.scaling.channels",),
            "bench_e11_channels.py",
        ),
        Experiment(
            "E12", "§VI-A",
            "Plasma: root chain stores commitments only; fraud proofs slash",
            ("repro.scaling.plasma",),
            "bench_e12_plasma.py",
        ),
        Experiment(
            "E13", "§VI-A",
            "Sharding: ~K-fold throughput, eroded by cross-shard traffic",
            ("repro.scaling.sharding",),
            "bench_e13_sharding.py",
        ),
        Experiment(
            "E14", "§VI-B",
            "Nano TPS uncapped by protocol; bounded by node hardware; peak >> avg",
            ("repro.dag.node", "repro.scaling.throughput"),
            "bench_e14_dag_tps.py",
        ),
        Experiment(
            "E15", "§IV-A",
            "Double-spend success vs attacker share and depth (Monte Carlo)",
            ("repro.workloads.attacks", "repro.confirmation.nakamoto"),
            "bench_e15_double_spend.py",
        ),
        Experiment(
            "A7", "§IV, §VI-B",
            "Gossip recovers to full delivery after partitions/churn; "
            "trace accounts for every drop",
            ("repro.faults", "repro.trace", "repro.net.network"),
            "bench_a7_fault_tolerance.py",
        ),
    ]
}
