"""Uniform deployment construction: one factory for every paradigm.

Before this module each paradigm had its own ad-hoc constructor
signature (``BlockchainLedger(params=..., fee=...)``,
``DagLedger(representative_count=...)``), which left no clean slot for
selecting a consensus engine or an adversary mix when the BFT paradigm
joined the matrix.  :func:`build_deployment` is the single entry point:
pick a paradigm, optionally an engine and a
:class:`~repro.faults.ByzantineSpec`, and get back a uniform
:class:`Deployment` handle exposing the ledger, the simulator/network
machinery and the aggregated per-layer counters.

The old constructors remain importable (every released bench and test
keeps passing) but are deprecated for direct use — see
docs/architecture.md for the migration note and timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.blockchain.mempool import MempoolLimits
from repro.blockchain.params import BITCOIN, ChainParams
from repro.core.adapters import BftLedger, BlockchainLedger, DagLedger
from repro.core.ledger import Ledger
from repro.dag.params import NanoParams
from repro.faults import ByzantineSpec, FaultInjector
from repro.net.aggregate import TopologyScale, attach_clusters
from repro.net.link import LinkParams
from repro.protocol import aggregate_layer_counters
from repro.storage.pruning import DEFAULT_KEEP_DEPTH

#: Paradigms the factory can stand up (the cross-paradigm matrix).
PARADIGMS = ("blockchain", "dag", "bft")

#: Consensus engines per paradigm; the first entry is the default.
PARADIGM_ENGINES: Dict[str, tuple] = {
    "blockchain": ("pow",),
    "dag": ("orv",),       # open representative voting (Nano elections)
    "bft": ("hotstuff",),  # quorum-certificate two-phase commit
}

#: Default node counts mirror the legacy adapter defaults.
_DEFAULT_NODE_COUNT = {"blockchain": 5, "dag": 8, "bft": 4}

#: Byzantine behaviours each paradigm knows how to wire.
_PARADIGM_BEHAVIORS = {
    "blockchain": ("selfish",),
    "dag": ("tip-spam",),
    "bft": ("equivocate", "withhold"),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """An open-loop traffic description for :meth:`Deployment.start_workload`."""

    rate_tps: float
    duration_s: float
    zipf_alpha: float = 0.8


@dataclass
class Deployment:
    """A constructed deployment: the ledger plus uniform accessors.

    The handle is valid before ``setup`` (the ledger is constructed
    lazily-networked); simulator/network/node accessors return live
    objects only once :meth:`setup` has run.
    """

    ledger: Ledger
    paradigm: str
    engine: str
    byzantine: Optional[ByzantineSpec] = None
    workload: Optional[WorkloadSpec] = None
    topology_scale: Optional[TopologyScale] = None
    #: Mean-field clusters attached at setup when ``topology_scale`` asks
    #: for more nodes than the fully-simulated boundary provides.
    clusters: List = field(default_factory=list)

    def setup(self, accounts: int, initial_balance: int) -> "Deployment":
        self.ledger.setup(accounts, initial_balance)
        if (self.topology_scale is not None
                and self.topology_scale.plane == "aggregate"):
            # The sharded plane carries the whole population itself;
            # clusters only serve the aggregate plane (and zero-surplus
            # scales attach none — see attach_clusters).
            self.clusters = attach_clusters(self.network,
                                            self.topology_scale)
        return self

    # ------------------------------------------------------------ accessors

    @property
    def simulator(self):
        view = self.ledger.deployment()
        return None if view is None else view.simulator

    @property
    def network(self):
        view = self.ledger.deployment()
        return None if view is None else view.network

    @property
    def nodes(self) -> List:
        view = self.ledger.deployment()
        return [] if view is None else list(view.nodes)

    def fault_injector(self) -> FaultInjector:
        network = self.network
        if network is None:
            raise RuntimeError("setup() the deployment before injecting faults")
        return FaultInjector(network)

    def layer_counters(self) -> Dict[str, float]:
        """Deployment-wide ``transport.* / intake.* / consensus.*`` totals."""
        return aggregate_layer_counters(self.nodes)

    def scale_stats(self) -> Dict[str, float]:
        """Scaled-tier totals: modeled population and propagation.

        Always returns the full key set.  ``scaled`` is 1.0 when a
        scaled plane actually carries population (aggregate clusters or
        a sharded crowd) and 0.0 for unscaled deployments *and* for a
        ``topology_scale`` whose ``total_nodes`` equals the boundary —
        the explicit empty report for the zero-surplus case.
        """
        stats = {
            "scaled": 0.0,
            "boundary_nodes": float(len(self.nodes)),
            "modeled_nodes": 0.0,
            "modeled_deliveries": 0.0,
            "messages_modeled": 0.0,
            "propagation_max_s": 0.0,
        }
        network = self.network
        if network is not None and hasattr(network, "plane_stats"):
            stats.update(network.plane_stats())
            stats["scaled"] = 1.0 if stats["modeled_nodes"] else 0.0
            return stats
        if self.clusters:
            stats["scaled"] = 1.0
            stats["modeled_nodes"] = float(
                sum(c.size for c in self.clusters))
            stats["modeled_deliveries"] = float(
                sum(c.modeled_deliveries for c in self.clusters))
            stats["messages_modeled"] = float(
                sum(c.messages_modeled for c in self.clusters))
            times = [t for c in self.clusters for t in c.propagation_times]
            stats["propagation_max_s"] = max(times) if times else 0.0
        return stats

    def close(self) -> None:
        """Release plane resources (sharded worker processes); no-op on
        the exact and aggregate planes."""
        network = self.network
        if network is not None and hasattr(network, "close"):
            network.close()

    def start_workload(self, accounts: int,
                       spec: Optional[WorkloadSpec] = None):
        """Arm the open-loop injector described by ``spec`` (or the
        spec captured at build time) on the running deployment."""
        from repro.workloads.open_loop import OpenLoopInjector

        spec = spec or self.workload
        if spec is None:
            raise ValueError("no WorkloadSpec given or captured at build time")
        injector = OpenLoopInjector.from_sim_stream(
            self.ledger, accounts=accounts, rate_tps=spec.rate_tps,
            duration_s=spec.duration_s, zipf_alpha=spec.zipf_alpha,
        )
        injector.start()
        return injector


def build_deployment(
    paradigm: str,
    *,
    engine: Optional[str] = None,
    faults: Optional[ByzantineSpec] = None,
    mempool_limits: Optional[MempoolLimits] = None,
    workload: Optional[WorkloadSpec] = None,
    node_count: Optional[int] = None,
    seed: int = 0,
    link_params: Optional[LinkParams] = None,
    topology_scale: Optional[Union[int, TopologyScale]] = None,
    # paradigm-specific knobs (validated against the paradigm)
    chain_params: Optional[ChainParams] = None,
    block_interval_s: Optional[float] = None,
    confirmation_depth: Optional[int] = None,
    fee: Optional[int] = None,
    dag_params: Optional[NanoParams] = None,
    representative_count: Optional[int] = None,
    processing_tps: Optional[float] = None,
    prune_interval_s: Optional[float] = None,
    prune_keep_depth: Optional[int] = None,
    view_timeout_s: Optional[float] = None,
    propose_delay_s: Optional[float] = None,
    max_batch: Optional[int] = None,
) -> Deployment:
    """Construct a deployment of ``paradigm`` behind a uniform signature.

    ``engine`` selects the consensus engine (each paradigm's native
    engine by default — see :data:`PARADIGM_ENGINES`).  ``faults`` wires
    a Byzantine adversary mix: the spec's ``count`` marks the roster
    prefix, ``behavior`` must belong to the paradigm's family set, and
    ``f_override`` (BFT only) adjusts the quorum threshold ``n - f``.
    ``topology_scale`` (an int total-node count or a
    :class:`~repro.net.aggregate.TopologyScale`) grows the deployment to
    that population: on the default ``plane="aggregate"`` the
    ``node_count`` fully-simulated nodes become the boundary and the
    surplus is modeled by mean-field
    :class:`~repro.net.aggregate.AggregateCluster` leaves (nested
    cluster-of-clusters at 10^5+); ``plane="sharded"`` instead runs the
    deployment's full protocol traffic over a
    :class:`~repro.net.sharded_plane.ShardedMessagePlane` crowd
    (blockchain/dag only).
    Unused paradigm-specific knobs raise rather than silently ignore,
    so call sites stay honest about what they configure.
    """
    if paradigm not in PARADIGMS:
        raise ValueError(f"unknown paradigm {paradigm!r} "
                         f"(choose from {', '.join(PARADIGMS)})")
    engines = PARADIGM_ENGINES[paradigm]
    engine = engine or engines[0]
    if engine not in engines:
        raise ValueError(
            f"paradigm {paradigm!r} has no engine {engine!r} "
            f"(choose from {', '.join(engines)})")
    behavior = None
    if faults is not None and faults.count > 0:
        behavior = faults.behavior
        if behavior not in _PARADIGM_BEHAVIORS[paradigm]:
            raise ValueError(
                f"Byzantine behavior {behavior!r} is not wired for "
                f"paradigm {paradigm!r} (choose from "
                f"{', '.join(_PARADIGM_BEHAVIORS[paradigm])})")
    count = node_count or _DEFAULT_NODE_COUNT[paradigm]
    if isinstance(topology_scale, int):
        topology_scale = TopologyScale(total_nodes=topology_scale)
    if topology_scale is not None and topology_scale.total_nodes < count:
        raise ValueError(
            f"topology_scale.total_nodes ({topology_scale.total_nodes}) "
            f"is below the fully-simulated node count ({count})")
    plane_factory = None
    if topology_scale is not None and topology_scale.plane == "sharded":
        if paradigm == "bft":
            raise ValueError(
                "the sharded plane carries gossip paradigms only "
                "(blockchain/dag); BFT quorum traffic is point-to-point")
        from repro.net.sharded_plane import ShardedMessagePlane

        scale = topology_scale

        def plane_factory(simulator):
            return ShardedMessagePlane(
                simulator,
                total_nodes=scale.total_nodes,
                shards=scale.shards,
                chords=scale.chords,
                link=scale.cluster_link,
                jobs=scale.jobs,
            )

    def reject_unused(**knobs) -> None:
        stray = [name for name, value in knobs.items() if value is not None]
        if stray:
            raise ValueError(
                f"knobs {', '.join(stray)} do not apply to "
                f"paradigm {paradigm!r}")

    if paradigm == "blockchain":
        reject_unused(dag_params=dag_params,
                      representative_count=representative_count,
                      processing_tps=processing_tps,
                      view_timeout_s=view_timeout_s,
                      propose_delay_s=propose_delay_s, max_batch=max_batch,
                      f_override=faults.f_override if faults else None)
        params = chain_params or BITCOIN
        overrides = {}
        if block_interval_s is not None:
            overrides["target_block_interval_s"] = block_interval_s
        if confirmation_depth is not None:
            overrides["confirmation_depth"] = confirmation_depth
        if overrides:
            params = replace(params, **overrides)
        ledger: Ledger = BlockchainLedger(
            params=params,
            node_count=count,
            link_params=link_params,
            seed=seed,
            fee=fee if fee is not None else 1,
            mempool_limits=mempool_limits,
            prune_interval_s=prune_interval_s,
            prune_keep_depth=(prune_keep_depth if prune_keep_depth is not None
                              else DEFAULT_KEEP_DEPTH),
            byzantine_nodes=faults.count if behavior else 0,
            byzantine_behavior=behavior or "selfish",
            plane_factory=plane_factory,
        )
    elif paradigm == "dag":
        reject_unused(chain_params=chain_params,
                      block_interval_s=block_interval_s,
                      confirmation_depth=confirmation_depth, fee=fee,
                      mempool_limits=mempool_limits,
                      prune_keep_depth=prune_keep_depth,
                      view_timeout_s=view_timeout_s,
                      propose_delay_s=propose_delay_s, max_batch=max_batch,
                      f_override=faults.f_override if faults else None)
        ledger = DagLedger(
            params=dag_params or NanoParams(work_difficulty=1),
            node_count=count,
            representative_count=(representative_count
                                  if representative_count is not None
                                  else max(2, count // 2)),
            link_params=link_params,
            seed=seed,
            processing_tps=processing_tps,
            prune_interval_s=prune_interval_s,
            byzantine_nodes=faults.count if behavior else 0,
            byzantine_behavior=behavior or "tip-spam",
            plane_factory=plane_factory,
        )
    else:  # bft
        reject_unused(chain_params=chain_params,
                      block_interval_s=block_interval_s,
                      confirmation_depth=confirmation_depth, fee=fee,
                      mempool_limits=mempool_limits, dag_params=dag_params,
                      representative_count=representative_count,
                      processing_tps=processing_tps,
                      prune_interval_s=prune_interval_s,
                      prune_keep_depth=prune_keep_depth)
        ledger = BftLedger(
            node_count=count,
            link_params=link_params,
            seed=seed,
            view_timeout_s=view_timeout_s if view_timeout_s is not None else 4.0,
            propose_delay_s=(propose_delay_s if propose_delay_s is not None
                             else 0.25),
            max_batch=max_batch if max_batch is not None else 16,
            byzantine_nodes=faults.count if behavior else 0,
            byzantine_behavior=behavior or "equivocate",
            quorum_f_override=faults.f_override if faults else None,
        )

    return Deployment(ledger=ledger, paradigm=paradigm, engine=engine,
                      byzantine=faults, workload=workload,
                      topology_scale=topology_scale)
