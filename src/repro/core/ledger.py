"""The paradigm-agnostic ledger interface.

Both paradigms are "transaction-based state machines" (Section II); this
interface captures the operations the paper compares them on, so the
comparison layer, workloads and size accounting treat a blockchain and a
block-lattice uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.common.types import Hash
from repro.workloads.generators import PaymentEvent

if TYPE_CHECKING:  # pragma: no cover - capability types only
    from repro.core.invariants import AuditReport
    from repro.net.network import Network
    from repro.sim.simulator import Simulator


@dataclass
class LedgerStats:
    """Run statistics every adapter reports."""

    entries_created: int = 0
    entries_confirmed: int = 0
    forks_observed: int = 0
    reorgs: int = 0
    confirmation_latencies_s: List[float] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class DeploymentView:
    """The running machinery behind an adapter, for in-loop tooling.

    Exposed by :meth:`Ledger.deployment` so paradigm-agnostic layers (the
    invariant monitor, fault injection, the fuzzer) can hook the
    simulator and network without knowing which adapter they drive.
    """

    simulator: "Simulator"
    network: Optional["Network"]
    nodes: Sequence[object]


class Ledger(abc.ABC):
    """A running DLT deployment processing a payment workload.

    Lifecycle: construct → :meth:`setup` (fund accounts) → interleave
    :meth:`submit` / :meth:`advance` → read balances, confirmation state
    and sizes.
    """

    name: str = "ledger"
    paradigm: str = "abstract"

    @abc.abstractmethod
    def setup(self, accounts: int, initial_balance: int) -> None:
        """Create and fund ``accounts`` user accounts."""

    @abc.abstractmethod
    def submit(self, event: PaymentEvent) -> Optional[Hash]:
        """Inject one payment; returns the ledger entry's id (or None if
        the adapter had to drop it, e.g. sender underfunded)."""

    @abc.abstractmethod
    def advance(self, duration_s: float) -> None:
        """Run the deployment forward by simulated time."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current simulated time."""

    @abc.abstractmethod
    def is_confirmed(self, entry: Hash) -> bool:
        """Confirmed under the implementation's own convention
        (depth for blockchain, vote quorum for DAG — Section IV)."""

    @abc.abstractmethod
    def balance(self, account_index: int) -> int:
        """Balance of the i-th workload account."""

    @abc.abstractmethod
    def serialized_size(self) -> int:
        """Ledger bytes a full (historical) replica stores (Section V)."""

    @abc.abstractmethod
    def stats(self) -> LedgerStats:
        """Aggregate run statistics."""

    # Optional capabilities (in-loop checking) ---------------------------
    #
    # Adapters that stand up a real simulated deployment override these;
    # the defaults make every capability safely absent so the checking
    # layer degrades gracefully on exotic adapters.

    def deployment(self) -> Optional[DeploymentView]:
        """The simulator/network/nodes behind this ledger, if simulated."""
        return None

    def audit(self) -> Optional["AuditReport"]:
        """Run the paradigm's global-invariant audit right now."""
        return None

    def state_digest(self) -> str:
        """Deterministic digest of observable replica state (balances,
        heads, sizes) — one input to the fuzzer's run fingerprint.
        Empty string = no digest capability."""
        return ""

    def submit_double_spend(self, event: PaymentEvent) -> List[Hash]:
        """Inject two conflicting entries spending the same funds at
        different replicas (Section IV's adversary).  Adapters without a
        conflict path fall back to a single honest submission."""
        entry = self.submit(event)
        return [entry] if entry is not None else []

    def inject_supply_corruption(self, amount: int) -> bool:
        """Deliberately corrupt one replica's materialized state by
        ``amount`` value units (a test-oracle backdoor: the audit must
        flag the supply violation).  Returns False when unsupported."""
        return False

    def submit_tip_spam(self, event: PaymentEvent, fanout: int = 3) -> List[Hash]:
        """Conflicting-tip spam: ``fanout`` mutually conflicting entries
        injected at distinct replicas (the DAG SoKs' tip-flooding
        adversary).  Paradigms without a tip structure degrade to the
        two-way conflict of :meth:`submit_double_spend`."""
        return self.submit_double_spend(event)

    # Convenience shared by adapters -------------------------------------

    def run_workload(
        self, events: List[PaymentEvent], settle_s: float = 30.0
    ) -> List[Hash]:
        """Feed timed events at their timestamps, then let things settle."""
        entries: List[Hash] = []
        for event in sorted(events, key=lambda e: e.time_s):
            if event.time_s > self.now():
                self.advance(event.time_s - self.now())
            entry = self.submit(event)
            if entry is not None:
                entries.append(entry)
        self.advance(settle_s)
        return entries
