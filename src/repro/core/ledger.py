"""The paradigm-agnostic ledger interface.

Both paradigms are "transaction-based state machines" (Section II); this
interface captures the operations the paper compares them on, so the
comparison layer, workloads and size accounting treat a blockchain and a
block-lattice uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import Hash
from repro.workloads.generators import PaymentEvent


@dataclass
class LedgerStats:
    """Run statistics every adapter reports."""

    entries_created: int = 0
    entries_confirmed: int = 0
    forks_observed: int = 0
    reorgs: int = 0
    confirmation_latencies_s: List[float] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)


class Ledger(abc.ABC):
    """A running DLT deployment processing a payment workload.

    Lifecycle: construct → :meth:`setup` (fund accounts) → interleave
    :meth:`submit` / :meth:`advance` → read balances, confirmation state
    and sizes.
    """

    name: str = "ledger"
    paradigm: str = "abstract"

    @abc.abstractmethod
    def setup(self, accounts: int, initial_balance: int) -> None:
        """Create and fund ``accounts`` user accounts."""

    @abc.abstractmethod
    def submit(self, event: PaymentEvent) -> Optional[Hash]:
        """Inject one payment; returns the ledger entry's id (or None if
        the adapter had to drop it, e.g. sender underfunded)."""

    @abc.abstractmethod
    def advance(self, duration_s: float) -> None:
        """Run the deployment forward by simulated time."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current simulated time."""

    @abc.abstractmethod
    def is_confirmed(self, entry: Hash) -> bool:
        """Confirmed under the implementation's own convention
        (depth for blockchain, vote quorum for DAG — Section IV)."""

    @abc.abstractmethod
    def balance(self, account_index: int) -> int:
        """Balance of the i-th workload account."""

    @abc.abstractmethod
    def serialized_size(self) -> int:
        """Ledger bytes a full (historical) replica stores (Section V)."""

    @abc.abstractmethod
    def stats(self) -> LedgerStats:
        """Aggregate run statistics."""

    # Convenience shared by adapters -------------------------------------

    def run_workload(
        self, events: List[PaymentEvent], settle_s: float = 30.0
    ) -> List[Hash]:
        """Feed timed events at their timestamps, then let things settle."""
        entries: List[Hash] = []
        for event in sorted(events, key=lambda e: e.time_s):
            if event.time_s > self.now():
                self.advance(event.time_s - self.now())
            entry = self.submit(event)
            if entry is not None:
                entries.append(entry)
        self.advance(settle_s)
        return entries
