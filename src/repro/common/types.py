"""Typed identifiers shared across the blockchain and DAG subsystems.

The paper compares two ledger paradigms that both identify entries by
cryptographic hash and owners by address.  Using small frozen wrapper
classes (instead of raw ``bytes``) makes APIs self-documenting, prevents
mixing a transaction id with an address, and gives every id a stable
hex rendering for logs and tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

HASH_SIZE = 32
ADDRESS_SIZE = 20

_ZERO_HASH_BYTES = b"\x00" * HASH_SIZE
_ZERO_ADDRESS_BYTES = b"\x00" * ADDRESS_SIZE


@dataclass(frozen=True, order=True)
class Hash:
    """A 32-byte cryptographic digest identifying a block, node or tx.

    Hashes key the hottest dicts and sets in both ledgers (block index,
    pending table, cemented set), so ``__hash__``/``__eq__`` are hand
    written to delegate straight to the wrapped bytes instead of the
    tuple-building dataclass-generated versions.
    """

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != HASH_SIZE:
            raise ValueError(f"Hash must be {HASH_SIZE} bytes, got {self.value!r}")

    def __hash__(self) -> int:
        return hash(self.value)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Hash:
            return self.value == other.value  # type: ignore[attr-defined]
        return NotImplemented

    @classmethod
    def zero(cls) -> "Hash":
        """The all-zero hash, used as the genesis predecessor reference."""
        return _ZERO_HASH

    @classmethod
    def from_hex(cls, text: str) -> "Hash":
        return cls(bytes.fromhex(text))

    @property
    def hex(self) -> str:
        return self.value.hex()

    def short(self, n: int = 8) -> str:
        """First ``n`` hex chars — convenient for log lines and diagrams."""
        return self.value.hex()[:n]

    def is_zero(self) -> bool:
        return self.value == _ZERO_HASH_BYTES

    def __bytes__(self) -> bytes:
        return self.value

    def __repr__(self) -> str:
        return f"Hash({self.short()}…)"


_ZERO_HASH = Hash(_ZERO_HASH_BYTES)


# A transaction id is a hash; the alias documents intent at call sites.
TxId = Hash
BlockId = Hash


@dataclass(frozen=True, order=True)
class Address:
    """A 20-byte account address derived from a public key."""

    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, bytes) or len(self.value) != ADDRESS_SIZE:
            raise ValueError(f"Address must be {ADDRESS_SIZE} bytes, got {self.value!r}")

    def __hash__(self) -> int:
        return hash(self.value)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Address:
            return self.value == other.value  # type: ignore[attr-defined]
        return NotImplemented

    @classmethod
    def from_hex(cls, text: str) -> "Address":
        return cls(bytes.fromhex(text))

    @classmethod
    def zero(cls) -> "Address":
        return _ZERO_ADDRESS

    @property
    def hex(self) -> str:
        return self.value.hex()

    def short(self, n: int = 8) -> str:
        return self.value.hex()[:n]

    def __bytes__(self) -> bytes:
        return self.value

    def __repr__(self) -> str:
        return f"Address({self.short()}…)"


_ZERO_ADDRESS = Address(_ZERO_ADDRESS_BYTES)

HashLike = Union[Hash, bytes]


def as_hash(value: HashLike) -> Hash:
    """Coerce raw bytes to :class:`Hash`, passing existing hashes through."""
    if isinstance(value, Hash):
        return value
    return Hash(value)
