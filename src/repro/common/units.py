"""Byte / time / token unit helpers used in reports and parameter presets."""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KIB = 1_024
MIB = 1_024 * 1_024
GIB = 1_024 * 1_024 * 1_024

SECOND = 1.0
MINUTE = 60.0
HOUR = 3_600.0
DAY = 86_400.0
YEAR = 365.0 * DAY

# Smallest token units of the three reference implementations.
SATOSHI_PER_BTC = 100_000_000
WEI_PER_ETHER = 10**18
RAW_PER_NANO = 10**30


def format_bytes(n: float) -> str:
    """Human-readable byte count: ``format_bytes(1_500_000) == '1.50 MB'``."""
    if n < 0:
        return "-" + format_bytes(-n)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def format_duration(seconds: float) -> str:
    """Human-readable duration: ``format_duration(600) == '10.0 min'``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds >= DAY:
        return f"{seconds / DAY:.1f} d"
    if seconds >= HOUR:
        return f"{seconds / HOUR:.1f} h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.1f} min"
    if seconds >= 1:
        return f"{seconds:.1f} s"
    return f"{seconds * 1000:.1f} ms"


def format_tps(tps: float) -> str:
    if tps >= 1000:
        return f"{tps / 1000:.1f}k TPS"
    return f"{tps:.2f} TPS"
