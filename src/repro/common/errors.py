"""Exception hierarchy for the whole framework.

Every error raised by the library derives from :class:`ReproError` so
callers can catch framework failures with a single ``except`` clause while
still distinguishing the common failure modes that the paper discusses
(double spends, forks, invalid proofs-of-work, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError):
    """An entry (block, transaction, vote ...) failed validation rules."""


class DoubleSpendError(ValidationError):
    """A transaction attempts to spend an already-spent input or balance."""


class InsufficientFundsError(ValidationError):
    """A transaction spends more value than the sender controls."""


class ForkDetectedError(ReproError):
    """Two entries claim the same predecessor (Section IV of the paper)."""


class UnknownParentError(ReproError):
    """A block/node references a predecessor that is not in the ledger."""


class InvalidProofOfWorkError(ValidationError):
    """A proof-of-work solution does not meet the required target."""


class InvalidSignatureError(ValidationError):
    """A signature does not verify against the claimed public key."""


class PrunedHistoryError(ReproError):
    """Requested historical data was discarded by pruning (Section V)."""


class ChannelError(ReproError):
    """Payment-channel protocol violation (Section VI, Lightning/Raiden)."""


class FraudProofError(ReproError):
    """A Plasma fraud proof was rejected or malformed (Section VI)."""


class ShardingError(ReproError):
    """Cross-shard routing or shard-assignment failure (Section VI)."""


class CementedBlockError(ReproError):
    """An operation attempted to roll back a cemented (final) block."""
