"""Lock-free memoizing descriptor for immutable value objects.

``functools.cached_property`` acquires an RLock around every *first*
access on Python 3.11 (the lock was only removed in 3.12).  The
simulator is single-threaded and the dataclasses using it are frozen,
so the lock is pure overhead — and it sits on the hottest construction
paths in the codebase (every transaction, block, unit, and vote caches
its canonical bytes and digest exactly once).  This descriptor performs
the same instance-``__dict__`` fill without the lock: after the first
access the attribute resolves from the instance dict and the descriptor
is never entered again.

Semantics match ``cached_property`` for our usage: the owning class must
not define ``__slots__``, and frozen dataclasses work because the write
goes directly into ``__dict__`` (bypassing the frozen ``__setattr__``).
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Optional, Type, TypeVar

T = TypeVar("T")


class cached(Generic[T]):
    """Compute once per instance, then read from the instance dict."""

    def __init__(self, fn: Callable[[Any], T]) -> None:
        self._fn = fn
        self._name = fn.__name__
        self.__doc__ = fn.__doc__

    def __set_name__(self, owner: type, name: str) -> None:
        self._name = name

    def __get__(self, obj: Any, objtype: Optional[Type[Any]] = None) -> T:
        if obj is None:
            return self  # type: ignore[return-value]
        value = self._fn(obj)
        obj.__dict__[self._name] = value
        return value
