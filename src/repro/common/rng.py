"""Deterministic randomness helpers.

Every stochastic component (mining, network latency, workloads, voting
timers) draws from a ``random.Random`` seeded at experiment start, so any
run is exactly reproducible from its seed.  ``fork_rng`` derives
independent child streams so that adding a new consumer does not perturb
the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


#: Attribute carrying the identity bytes child streams are derived from.
_FORK_IDENTITY_ATTR = "fork_identity"


def make_rng(seed: int) -> random.Random:
    """A fresh deterministic generator for the given integer seed.

    The generator carries a ``fork_identity`` attribute so that
    :func:`fork_rng` can derive child streams from (root seed, label)
    alone, without consuming parent state.
    """
    rng = random.Random(seed)
    setattr(rng, _FORK_IDENTITY_ATTR,
            hashlib.sha256(repr(seed).encode("utf-8")).digest())
    return rng


def fork_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child stream, stable under unrelated changes.

    The child seed is a hash of (parent identity, label): it does not
    consume parent state, so the order in which consumers fork — and the
    addition of new consumers — does not perturb the draws seen by
    existing ones.  Two forks with different labels are independent even
    if forked from the same parent; forking the same label twice from
    the same parent yields identical streams.

    Back-compat: a parent not created via :func:`make_rng` (a plain
    ``random.Random``) has no stable identity, so the legacy path draws
    64 bits from it — that path is fork-order dependent.
    """
    identity = getattr(parent, _FORK_IDENTITY_ATTR, None)
    if identity is None:
        identity = parent.getrandbits(64).to_bytes(8, "big")
    digest = hashlib.sha256(identity + b"/" + label.encode("utf-8")).digest()
    child = random.Random(int.from_bytes(digest[:8], "big"))
    setattr(child, _FORK_IDENTITY_ATTR, digest)
    return child


def exponential(rng: random.Random, rate: float) -> float:
    """Exponential inter-arrival sample; ``rate`` is events per unit time."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return rng.expovariate(rate)


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight.

    This is the primitive behind both the PoW lottery (weight = hash power)
    and the PoS lottery (weight = stake) of Section III.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        if weight < 0:
            raise ValueError("weights must be non-negative")
        cumulative += weight
        if point < cumulative:
            return item
    return items[-1]


def zipf_weights(n: int, alpha: float) -> list:
    """Zipf popularity weights for ``n`` ranks (alpha=0 ⇒ uniform)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / (rank**alpha) for rank in range(1, n + 1)]


def poisson_process(rng: random.Random, rate: float, until: float) -> Iterator[float]:
    """Yield event times of a Poisson process on [0, until)."""
    t = 0.0
    while True:
        t += exponential(rng, rate)
        if t >= until:
            return
        yield t
