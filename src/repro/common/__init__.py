"""Shared primitives used by every subsystem.

This package holds the small, dependency-free building blocks: typed
identifiers (:mod:`repro.common.types`), the exception hierarchy
(:mod:`repro.common.errors`), canonical binary encoding used both for
hashing and for byte-accurate ledger-size accounting
(:mod:`repro.common.encoding`), unit helpers (:mod:`repro.common.units`)
and deterministic randomness helpers (:mod:`repro.common.rng`).
"""

from repro.common.errors import (
    DoubleSpendError,
    ForkDetectedError,
    InsufficientFundsError,
    ReproError,
    ValidationError,
)
from repro.common.types import Address, Hash, TxId

__all__ = [
    "Address",
    "DoubleSpendError",
    "ForkDetectedError",
    "Hash",
    "InsufficientFundsError",
    "ReproError",
    "TxId",
    "ValidationError",
]
