"""Canonical binary encoding.

Ledger entries are hashed over — and size-accounted by — a canonical byte
encoding.  The scheme is deliberately simple (fixed-width integers and
length-prefixed byte strings, all big-endian) but it is *injective* for a
fixed schema: two distinct field tuples never encode to the same bytes,
which is the property hashing requires; and every structure's
``serialize()`` output has a well-defined length, which is the property
Section V's ledger-size accounting requires.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple


def encode_uint(value: int, width: int = 8) -> bytes:
    """Encode a non-negative integer big-endian in ``width`` bytes."""
    if value < 0:
        raise ValueError(f"cannot encode negative integer {value}")
    try:
        return value.to_bytes(width, "big")
    except OverflowError as exc:
        raise ValueError(f"{value} does not fit in {width} bytes") from exc


def decode_uint(data: bytes) -> int:
    return int.from_bytes(data, "big")


def encode_uint32(value: int) -> bytes:
    return encode_uint(value, 4)


def encode_uint64(value: int) -> bytes:
    return encode_uint(value, 8)


def encode_uint128(value: int) -> bytes:
    """Nano balances are 128-bit raw amounts."""
    return encode_uint(value, 16)


def encode_bytes(data: bytes) -> bytes:
    """Length-prefixed byte string (4-byte big-endian length)."""
    return struct.pack(">I", len(data)) + data


def encode_str(text: str) -> bytes:
    return encode_bytes(text.encode("utf-8"))


def encode_bool(flag: bool) -> bytes:
    return b"\x01" if flag else b"\x00"


def encode_list(items: Iterable[bytes]) -> bytes:
    """Length-prefixed list of pre-encoded items."""
    materialized = list(items)
    out = [struct.pack(">I", len(materialized))]
    out.extend(encode_bytes(item) for item in materialized)
    return b"".join(out)


class Encoder:
    """Append-only builder over one ``bytearray``.

    Hot serialization paths (transaction/block/header bodies) build their
    canonical form through this instead of concatenating per-field
    ``bytes`` objects: each field is appended in place with
    ``int.to_bytes`` — no ``struct.pack``, no intermediate allocations —
    and :meth:`getvalue` materializes the final ``bytes`` once.  The
    encoding produced is identical to composing the module-level
    ``encode_*`` helpers.

    >>> e = Encoder()
    >>> e.uint(7).bytes(b"ab").getvalue() == encode_uint64(7) + encode_bytes(b"ab")
    True
    """

    __slots__ = ("_buf", "_shared")

    #: Process-wide scratch buffer for :meth:`shared` — grown once, then
    #: reused by every top-level serialization instead of allocating a
    #: fresh ``bytearray`` per call (the accelerated tier's zero-copy
    #: canonical-encoding path).
    _SCRATCH = bytearray()
    _SCRATCH_BUSY = False

    def __init__(self, buffer: "bytearray | None" = None) -> None:
        self._buf = bytearray() if buffer is None else buffer
        self._shared = False

    @classmethod
    def shared(cls) -> "Encoder":
        """An encoder over the process-wide scratch buffer.

        The scratch is handed out to one encoder at a time; nested or
        concurrent use (a ``serialize()`` that recursively serializes
        sub-structures) transparently falls back to a private buffer, so
        callers never need to care which one they got.  The buffer is
        released — and its storage kept for reuse — by :meth:`getvalue`.
        """
        if cls._SCRATCH_BUSY:
            return cls()
        cls._SCRATCH_BUSY = True
        scratch = cls._SCRATCH
        del scratch[:]
        encoder = cls(scratch)
        encoder._shared = True
        return encoder

    def raw(self, data: bytes) -> "Encoder":
        """Append pre-encoded bytes verbatim."""
        self._buf += data
        return self

    def uint(self, value: int, width: int = 8) -> "Encoder":
        if value < 0:
            raise ValueError(f"cannot encode negative integer {value}")
        try:
            self._buf += value.to_bytes(width, "big")
        except OverflowError as exc:
            raise ValueError(f"{value} does not fit in {width} bytes") from exc
        return self

    def bytes(self, data: bytes) -> "Encoder":
        """Length-prefixed byte string (4-byte big-endian length)."""
        buf = self._buf
        buf += len(data).to_bytes(4, "big")
        buf += data
        return self

    def str(self, text: str) -> "Encoder":
        return self.bytes(text.encode("utf-8"))

    def bool(self, flag: bool) -> "Encoder":
        self._buf += b"\x01" if flag else b"\x00"
        return self

    def list(self, items: Iterable[bytes]) -> "Encoder":
        """Length-prefixed list of pre-encoded items."""
        materialized = list(items)
        buf = self._buf
        buf += len(materialized).to_bytes(4, "big")
        for item in materialized:
            buf += len(item).to_bytes(4, "big")
            buf += item
        return self

    def __len__(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        value = bytes(self._buf)
        if self._shared:
            self._shared = False
            Encoder._SCRATCH_BUSY = False
        return value


class Decoder:
    """Sequential reader over a canonical encoding.

    >>> data = encode_uint64(7) + encode_bytes(b"ab")
    >>> d = Decoder(data)
    >>> d.read_uint(8), d.read_bytes()
    (7, b'ab')
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, n: int) -> bytes:
        if self.remaining < n:
            raise ValueError(f"decoder underrun: need {n} bytes, have {self.remaining}")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def read_uint(self, width: int = 8) -> int:
        return decode_uint(self._take(width))

    def read_bytes(self) -> bytes:
        length = self.read_uint(4)
        return self._take(length)

    def read_str(self) -> str:
        return self.read_bytes().decode("utf-8")

    def read_bool(self) -> bool:
        return self._take(1) == b"\x01"

    def read_list(self) -> List[bytes]:
        count = self.read_uint(4)
        return [self.read_bytes() for _ in range(count)]

    def finished(self) -> bool:
        return self.remaining == 0


def encoded_size(*parts: bytes) -> int:
    """Total byte length of already-encoded parts (size-accounting helper)."""
    return sum(len(part) for part in parts)


def split_pairs(items: Sequence[bytes]) -> List[Tuple[bytes, bytes]]:
    """Group a flat even-length sequence into (left, right) pairs."""
    if len(items) % 2 != 0:
        raise ValueError("expected an even number of items")
    return [(items[i], items[i + 1]) for i in range(0, len(items), 2)]
