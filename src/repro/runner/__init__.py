"""repro.runner — parallel experiment sweeps over the uniform bench API.

The subsystem the reproduction sweeps run on:

* :mod:`repro.runner.spec`   — :class:`ExperimentSpec` (id + grid +
  seeds) → independent :class:`Trial`\\ s; the shared result envelope.
* :mod:`repro.runner.pool`   — fan-out across worker processes with
  per-trial timeouts, crashed-worker retry, deterministic seeding.
* :mod:`repro.runner.cache`  — content-addressed result cache keyed on
  experiment id + canonical params/seed + code fingerprint.
* :mod:`repro.runner.report` — mean/CI aggregation into
  ``BENCH_<id>.json`` artifacts.

Quick start::

    from repro.runner import build_spec, run_trials, write_bench_json

    spec = build_spec("E15", {"attacker_share": [0.1, 0.25, 0.4]},
                      seeds=range(8))
    outcomes = run_trials(spec.expand(), jobs=4, timeout_s=300)
    write_bench_json(spec, outcomes, "results/")
"""

from repro.runner.cache import ResultCache, code_fingerprint, trial_cache_key
from repro.runner.pool import TrialOutcome, run_trials
from repro.runner.report import (
    aggregate_outcomes,
    build_report,
    render_summary,
    write_bench_json,
)
from repro.runner.spec import (
    ExperimentSpec,
    Trial,
    build_spec,
    canonical_json,
    make_result,
    param_key,
    validate_result,
)

__all__ = [
    "ExperimentSpec",
    "ResultCache",
    "Trial",
    "TrialOutcome",
    "aggregate_outcomes",
    "build_report",
    "build_spec",
    "canonical_json",
    "code_fingerprint",
    "make_result",
    "param_key",
    "render_summary",
    "run_trials",
    "trial_cache_key",
    "validate_result",
    "write_bench_json",
]
