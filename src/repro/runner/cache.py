"""Content-addressed result cache for experiment trials.

A trial's cache key commits to everything that could change its result:

* the experiment id,
* the canonical JSON of its parameter point,
* its root seed,
* a *code fingerprint* — a digest of the bench module's source plus the
  source of every module the registry lists for that experiment.

Re-running a sweep therefore only executes trials whose inputs or code
actually changed; everything else is served from disk.  Layout::

    <root>/<experiment_id>/<key[:2]>/<key>.json

Each entry is the full result envelope wrapped with the key material, so
a cache directory is self-describing and can be inspected with ``jq``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.runner.spec import Trial, canonical_json, canonicalize_params

CACHE_VERSION = 1


def _module_source_bytes(module_name: str) -> bytes:
    spec = importlib.util.find_spec(module_name)
    if spec is None or spec.origin is None or not Path(spec.origin).is_file():
        return f"<missing:{module_name}>".encode()
    return Path(spec.origin).read_bytes()


def code_fingerprint(experiment_id: str) -> str:
    """Digest of the code a trial's result depends on.

    Hashes the bench file and the registry-listed modules under test, so
    editing any of them invalidates exactly that experiment's entries.
    """
    from repro.core.experiment import EXPERIMENTS, bench_dir

    experiment = EXPERIMENTS[experiment_id]
    digest = hashlib.sha256(f"cache-v{CACHE_VERSION}".encode())
    bench_path = bench_dir() / experiment.bench
    digest.update(bench_path.read_bytes() if bench_path.is_file() else b"<no-bench>")
    for module_name in sorted(experiment.modules):
        digest.update(module_name.encode())
        digest.update(_module_source_bytes(module_name))
    return digest.hexdigest()


def trial_cache_key(trial: Trial, fingerprint: str) -> str:
    material = canonical_json({
        "experiment_id": trial.experiment_id,
        "params": canonicalize_params(trial.params),
        "seed": trial.seed,
        "code": fingerprint,
    })
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """Read-through/write-through store of finished trial envelopes."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, experiment_id: str, key: str) -> Path:
        return self.root / experiment_id / key[:2] / f"{key}.json"

    def get(self, trial: Trial, fingerprint: str) -> Optional[Dict[str, Any]]:
        path = self._path(trial.experiment_id, trial_cache_key(trial, fingerprint))
        try:
            entry = json.loads(path.read_text())
            result = entry["result"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, trial: Trial, fingerprint: str, result: Dict[str, Any]) -> Path:
        key = trial_cache_key(trial, fingerprint)
        path = self._path(trial.experiment_id, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_version": CACHE_VERSION,
            "key": key,
            "code_fingerprint": fingerprint,
            "result": result,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1))
        tmp.replace(path)  # atomic: concurrent sweeps never see half a file
        return path

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
