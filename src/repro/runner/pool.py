"""Parallel trial execution across worker processes.

Each trial runs in its *own* child process (bounded to ``jobs`` live
children) rather than a long-lived executor pool: that is what makes
per-trial timeouts enforceable (a hung trial is terminated without
poisoning a shared worker) and crash recovery trivial (a dead child is
just retried; there is no broken pool to rebuild).

The parent resolves each trial's bench module through the experiment
registry, so workers only ever ``importlib.import_module`` a name they
were handed — no string munging of file paths in the hot path.  Results
come back over a per-child pipe as the uniform envelope and are
validated at the boundary.

Determinism: a trial's randomness is fully determined by
``Trial.derived_seed`` (root seed forked with the experiment/param
label), so the number of jobs, scheduling order, retries and cache hits
cannot change any metric — only wall-clock.
"""

from __future__ import annotations

import importlib
import multiprocessing
import multiprocessing.connection
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.runner.cache import ResultCache, code_fingerprint
from repro.runner.spec import TRACE_KEY, Trial, validate_result

#: Outcome statuses.
OK = "ok"
ERROR = "error"      # the bench raised — deterministic, not retried
CRASH = "crash"      # the worker died without reporting — retried
TIMEOUT = "timeout"  # the per-trial deadline passed — terminated

_POLL_INTERVAL_S = 0.05


@dataclass
class TrialOutcome:
    """What happened to one trial, successful or not."""

    trial: Trial
    status: str
    result: Optional[Dict[str, Any]] = None
    attempts: int = 1
    cached: bool = False
    elapsed_s: float = 0.0
    error: Optional[str] = None
    trace_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == OK


def _trial_worker(conn, bench_path: str, module_name: str,
                  params: Dict[str, Any], seed: int) -> None:
    """Child-process entry point: import the bench, run one trial."""
    status: str = ERROR
    payload: Any = None
    try:
        if bench_path and bench_path not in sys.path:
            sys.path.insert(0, bench_path)
        module = importlib.import_module(module_name)
        run = getattr(module, "run", None)
        if not callable(run):
            raise TypeError(f"{module_name} does not expose run(params, seed)")
        result = run(dict(params), seed)
        validate_result(result)
        status, payload = OK, result
    except BaseException as error:  # report *everything*; the parent decides
        payload = f"{type(error).__name__}: {error}"
    try:
        conn.send((status, payload))
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class _Active:
    process: Any
    conn: Any
    trial: Trial
    index: int
    attempt: int
    started: float
    deadline: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)


def run_trials(
    trials: Sequence[Trial],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    cache: Optional[ResultCache] = None,
    trace_dir: Optional[str] = None,
    progress: Optional[Callable[[TrialOutcome, int, int], None]] = None,
) -> List[TrialOutcome]:
    """Execute ``trials`` across up to ``jobs`` worker processes.

    * ``timeout_s`` — per-trial wall-clock budget; exceeding it kills the
      worker and records a ``timeout`` outcome (not retried: a hung
      trial would hang again).
    * ``retries`` — how many times a *crashed* worker (died without
      reporting) is re-launched before recording a ``crash`` outcome.
    * ``cache`` — read-through/write-through :class:`ResultCache`;
      hits skip execution entirely.
    * ``progress`` — called as ``progress(outcome, done, total)`` after
      every finished trial (cached ones included).

    Outcomes are returned in the order of ``trials`` regardless of
    completion order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    if retries < 0:
        raise ValueError("retries must be >= 0")

    from repro.core.experiment import EXPERIMENTS, bench_dir

    bench_path = str(bench_dir())
    outcomes: List[Optional[TrialOutcome]] = [None] * len(trials)
    done = 0
    total = len(trials)
    fingerprints: Dict[str, str] = {}

    def fingerprint_for(experiment_id: str) -> str:
        if experiment_id not in fingerprints:
            fingerprints[experiment_id] = code_fingerprint(experiment_id)
        return fingerprints[experiment_id]

    def finish(index: int, outcome: TrialOutcome) -> None:
        nonlocal done
        outcomes[index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    # Serve cache hits up front; queue the rest as (index, trial, attempt).
    pending: List[tuple] = []
    for index, trial in enumerate(trials):
        if trial.experiment_id not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {trial.experiment_id!r}")
        if cache is not None:
            hit = cache.get(trial, fingerprint_for(trial.experiment_id))
            if hit is not None:
                finish(index, TrialOutcome(trial, OK, result=hit, cached=True))
                continue
        pending.append((index, trial, 1))
    pending.reverse()  # pop() keeps submission order

    ctx = _mp_context()
    active: List[_Active] = []

    def launch(index: int, trial: Trial, attempt: int) -> None:
        experiment = EXPERIMENTS[trial.experiment_id]
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_trial_worker,
            args=(send_conn, bench_path, experiment.bench_module,
                  dict(trial.params), trial.derived_seed),
        )
        now = time.monotonic()
        process.start()
        send_conn.close()  # the child holds the write end now
        active.append(_Active(
            process, recv_conn, trial, index, attempt, now,
            deadline=(now + timeout_s) if timeout_s is not None else None,
        ))

    def settle(entry: _Active) -> None:
        """The child finished or died: read its report and record it."""
        elapsed = time.monotonic() - entry.started
        status: str = CRASH
        payload: Any = None
        if entry.conn.poll():
            try:
                status, payload = entry.conn.recv()
            except (EOFError, OSError):
                status, payload = CRASH, None
        entry.process.join()
        entry.conn.close()
        if status == OK:
            outcome = TrialOutcome(entry.trial, OK, result=payload,
                                   attempts=entry.attempt, elapsed_s=elapsed)
            _handle_trace(outcome, trace_dir)
            if cache is not None:
                cache.put(entry.trial,
                          fingerprint_for(entry.trial.experiment_id),
                          outcome.result)
            finish(entry.index, outcome)
        elif status == ERROR:
            finish(entry.index, TrialOutcome(
                entry.trial, ERROR, attempts=entry.attempt,
                elapsed_s=elapsed, error=str(payload)))
        else:  # the worker died without reporting
            exitcode = entry.process.exitcode
            if entry.attempt <= retries:
                pending.append((entry.index, entry.trial, entry.attempt + 1))
            else:
                finish(entry.index, TrialOutcome(
                    entry.trial, CRASH, attempts=entry.attempt,
                    elapsed_s=elapsed,
                    error=f"worker died (exit code {exitcode})"))

    def reap(entry: _Active) -> None:
        """Deadline exceeded: kill the worker, record a timeout."""
        entry.process.terminate()
        entry.process.join(1.0)
        if entry.process.is_alive():  # pragma: no cover - stubborn child
            entry.process.kill()
            entry.process.join()
        entry.conn.close()
        finish(entry.index, TrialOutcome(
            entry.trial, TIMEOUT, attempts=entry.attempt,
            elapsed_s=time.monotonic() - entry.started,
            error=f"exceeded {timeout_s:.1f}s timeout"))

    try:
        while pending or active:
            while pending and len(active) < jobs:
                launch(*pending.pop())
            if not active:
                continue
            multiprocessing.connection.wait(
                [entry.conn for entry in active], timeout=_POLL_INTERVAL_S
            )
            now = time.monotonic()
            still_running: List[_Active] = []
            for entry in active:
                if entry.conn.poll() or not entry.process.is_alive():
                    settle(entry)
                elif entry.deadline is not None and now > entry.deadline:
                    reap(entry)
                else:
                    still_running.append(entry)
            active = still_running
    finally:
        for entry in active:  # interrupted: leave no orphan workers
            entry.process.terminate()
            entry.process.join(1.0)
            entry.conn.close()

    return [outcome for outcome in outcomes if outcome is not None]


def _shard_worker(conn, factory, config, shard_index: int) -> None:
    """Child entry point for one persistent shard worker.

    Unlike :func:`_trial_worker` (one shot per process), a shard worker
    holds mutable state across epoch barriers: it builds its state once
    via ``factory(config, shard_index)`` and then serves ``step``
    commands until told to stop.  Any exception is reported and ends the
    worker — the parent surfaces it instead of deadlocking the barrier.
    """
    try:
        state = factory(config, shard_index)
        conn.send((OK, None))
    except BaseException as error:
        try:
            conn.send((ERROR, f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        return
    try:
        while True:
            command, payload = conn.recv()
            if command == "stop":
                break
            try:
                result = getattr(state, command)(*payload)
                conn.send((OK, result))
            except BaseException as error:
                conn.send((ERROR, f"{type(error).__name__}: {error}"))
                break
    except (EOFError, OSError):
        pass
    finally:
        conn.close()


class ShardWorkers:
    """Persistent worker processes for epoch-barrier sharded simulation.

    ``factory(config, index)`` is a picklable callable building shard
    ``index``'s state in its worker; :meth:`call` then invokes a method
    on every shard's state and blocks until *all* replies are in — the
    epoch barrier.  Replies are returned in shard order regardless of
    which worker answered first, so downstream merges see a
    deterministic order no matter how the OS schedules the processes.

    Use as a context manager; workers are terminated on exit.
    """

    def __init__(self, factory, config, count: int) -> None:
        if count < 1:
            raise ValueError("need at least one shard worker")
        ctx = _mp_context()
        self._workers: List[tuple] = []
        try:
            for index in range(count):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, factory, config, index),
                )
                process.start()
                child_conn.close()
                self._workers.append((process, parent_conn))
            for index, (_, conn) in enumerate(self._workers):
                status, payload = conn.recv()
                if status != OK:
                    raise RuntimeError(
                        f"shard {index} failed to initialize: {payload}")
        except BaseException:
            self.close()
            raise

    def __enter__(self) -> "ShardWorkers":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def call(self, method: str, payloads: Sequence[tuple]) -> List[Any]:
        """Invoke ``method(*payloads[i])`` on every shard state; barrier."""
        if len(payloads) != len(self._workers):
            raise ValueError("one payload per shard required")
        for (_, conn), payload in zip(self._workers, payloads):
            conn.send((method, tuple(payload)))
        results: List[Any] = []
        for index, (_, conn) in enumerate(self._workers):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError) as error:
                raise RuntimeError(f"shard {index} died mid-epoch") from error
            if status != OK:
                raise RuntimeError(f"shard {index} failed: {payload}")
            results.append(payload)
        return results

    def close(self) -> None:
        for process, conn in self._workers:
            try:
                conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process, conn in self._workers:
            process.join(2.0)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.terminate()
                process.join()
            conn.close()
        self._workers = []


def _handle_trace(outcome: TrialOutcome, trace_dir: Optional[str]) -> None:
    """Write the optional per-trial trace JSONL and strip it from the
    envelope (traces are large and never belong in the cache)."""
    import json
    from pathlib import Path

    result = outcome.result
    if not result or TRACE_KEY not in result:
        return
    records = result.pop(TRACE_KEY)
    if trace_dir is None:
        return
    path = Path(trace_dir) / outcome.trial.experiment_id
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{outcome.trial.key}.jsonl"
    with open(target, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    outcome.trace_path = str(target)
