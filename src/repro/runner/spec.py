"""Experiment sweep specifications and the uniform bench result schema.

An :class:`ExperimentSpec` names one registered experiment, a parameter
grid (param name → list of values) and a seed list; :meth:`expand` turns
it into the cross product of independent :class:`Trial`\\ s the pool can
fan out.  Everything here is deliberately *canonical*: params are hashed
over sorted-key compact JSON so the same logical trial always produces
the same key, regardless of dict insertion order or which process built
it — that key is what the result cache and the aggregator group by.

The uniform bench contract lives here too: every ``benchmarks/bench_*``
module exposes ``run(params: dict, seed: int) -> dict`` returning the
envelope built by :func:`make_result`::

    {"experiment_id": ..., "seed": ..., "params": {...},
     "metrics": {name: number, ...}, "elapsed_s": ...}

:func:`validate_result` enforces the schema at the pool boundary so a
bench that drifts from the contract fails loudly, not during
aggregation.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.rng import fork_rng, make_rng

#: Keys every bench result dict must carry.
RESULT_KEYS = ("experiment_id", "seed", "params", "metrics", "elapsed_s")

#: Reserved optional key: a list of JSON-serializable trace records the
#: pool writes out as a per-trial JSONL file (and strips before caching).
TRACE_KEY = "trace"


def canonical_json(value: Any) -> str:
    """Compact, sorted-key JSON — the hashing/grouping representation."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def canonicalize_params(params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Round-trip params through JSON so tuples become lists etc."""
    if not params:
        return {}
    return json.loads(canonical_json(dict(params)))


def param_key(params: Mapping[str, Any]) -> str:
    """Short stable digest identifying one point of the parameter grid."""
    digest = hashlib.sha256(canonical_json(canonicalize_params(params)).encode())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class Trial:
    """One independent unit of work: (experiment, param point, seed)."""

    experiment_id: str
    params: Mapping[str, Any]
    seed: int

    @property
    def key(self) -> str:
        return f"{param_key(self.params)}-s{self.seed}"

    @property
    def derived_seed(self) -> int:
        """The integer seed actually handed to the bench's ``run``.

        Derived by forking the root seed's stream with a label built
        from the experiment id and the param point, so the same seed
        index used at two different grid points yields *independent*
        randomness, while re-running the same trial is bit-identical.
        """
        label = f"{self.experiment_id}/{param_key(self.params)}"
        return fork_rng(make_rng(self.seed), label).getrandbits(63)

    def describe(self) -> str:
        params = canonicalize_params(self.params)
        rendered = " ".join(f"{k}={params[k]}" for k in sorted(params))
        return f"{self.experiment_id} seed={self.seed} {rendered}".rstrip()


@dataclass(frozen=True)
class ExperimentSpec:
    """An experiment id, a parameter grid, and the seeds to run it at."""

    experiment_id: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("an ExperimentSpec needs at least one seed")
        for name, values in self.grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise ValueError(
                    f"grid values for {name!r} must be a sequence, got {values!r}"
                )
            if len(values) == 0:
                raise ValueError(f"grid axis {name!r} is empty")

    def points(self) -> List[Dict[str, Any]]:
        """The parameter grid expanded to its cross product, in a
        deterministic (sorted-axis) order."""
        names = sorted(self.grid)
        if not names:
            return [{}]
        combos = itertools.product(*(list(self.grid[name]) for name in names))
        return [dict(zip(names, combo)) for combo in combos]

    def expand(self) -> List[Trial]:
        return [
            Trial(self.experiment_id, point, seed)
            for point in self.points()
            for seed in self.seeds
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "grid": {k: list(v) for k, v in sorted(self.grid.items())},
            "seeds": list(self.seeds),
        }


def build_spec(
    experiment_id: str,
    overrides: Optional[Mapping[str, Sequence[Any]]] = None,
    seeds: Sequence[int] = (0,),
) -> ExperimentSpec:
    """Spec for a registered experiment: its ``default_params`` become
    single-value grid axes, with ``overrides`` replacing/adding axes."""
    from repro.core.experiment import EXPERIMENTS

    if experiment_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r} (known: {known})")
    grid: Dict[str, Sequence[Any]] = {
        name: [value]
        for name, value in EXPERIMENTS[experiment_id].default_params.items()
    }
    for name, values in (overrides or {}).items():
        grid[name] = list(values)
    return ExperimentSpec(experiment_id, grid, tuple(seeds))


def make_result(
    experiment_id: str,
    params: Mapping[str, Any],
    seed: int,
    metrics: Mapping[str, Any],
    started: Optional[float] = None,
    elapsed_s: Optional[float] = None,
    trace: Optional[Sequence[Mapping[str, Any]]] = None,
) -> Dict[str, Any]:
    """Assemble the uniform bench result envelope.

    Benches call this at the end of ``run``; pass either ``started``
    (a ``time.perf_counter()`` stamp taken on entry) or an explicit
    ``elapsed_s``.
    """
    import time

    if elapsed_s is None:
        elapsed_s = 0.0 if started is None else time.perf_counter() - started
    result: Dict[str, Any] = {
        "experiment_id": experiment_id,
        "seed": seed,
        "params": canonicalize_params(params),
        "metrics": {name: _coerce_metric(name, value)
                    for name, value in metrics.items()},
        "elapsed_s": float(elapsed_s),
    }
    if trace is not None:
        result[TRACE_KEY] = [dict(record) for record in trace]
    return result


def _coerce_metric(name: str, value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    raise TypeError(f"metric {name!r} must be numeric, got {value!r}")


def validate_result(result: Any) -> Dict[str, Any]:
    """Check a bench return value against the shared schema.

    Returns the result on success; raises ``ValueError`` otherwise.
    """
    if not isinstance(result, dict):
        raise ValueError(f"bench run() must return a dict, got {type(result).__name__}")
    missing = [key for key in RESULT_KEYS if key not in result]
    if missing:
        raise ValueError(f"bench result missing keys: {missing}")
    if not isinstance(result["experiment_id"], str):
        raise ValueError("experiment_id must be a string")
    if not isinstance(result["seed"], int) or isinstance(result["seed"], bool):
        raise ValueError("seed must be an int")
    if not isinstance(result["params"], dict):
        raise ValueError("params must be a dict")
    if not isinstance(result["metrics"], dict) or not result["metrics"]:
        raise ValueError("metrics must be a non-empty dict")
    for name, value in result["metrics"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"metric {name!r} must be numeric, got {value!r}")
    if not isinstance(result["elapsed_s"], (int, float)):
        raise ValueError("elapsed_s must be a number")
    try:
        canonical_json({k: v for k, v in result.items() if k != TRACE_KEY})
    except (TypeError, ValueError) as error:
        raise ValueError(f"bench result is not JSON-serializable: {error}")
    return result
