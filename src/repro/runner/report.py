"""Aggregation of trial outcomes into ``BENCH_<id>.json`` artifacts.

Aggregates are grouped by parameter point and computed over the seeds
that succeeded, using the summary statistics in
:mod:`repro.metrics.stats` (mean, 95% CI, stdev, extrema).  The
aggregate block is *timing-free* and ordered canonically (sorted param
key, then seed), so two sweeps of the same spec at any ``--jobs`` level
serialize to byte-identical aggregates — the property the determinism
tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.metrics.stats import aggregate_samples
from repro.metrics.tables import render_table
from repro.runner.pool import TrialOutcome
from repro.runner.spec import ExperimentSpec, canonical_json, param_key

SCHEMA = "repro.runner/bench.v1"


def aggregate_outcomes(
    spec: ExperimentSpec, outcomes: Sequence[TrialOutcome]
) -> List[Dict[str, Any]]:
    """Per-param-point aggregates over successful seeds (deterministic)."""
    groups: Dict[str, Dict[str, Any]] = {}
    for outcome in outcomes:
        if not outcome.ok or outcome.result is None:
            continue
        params = outcome.result["params"]
        key = param_key(params)
        group = groups.setdefault(key, {"params": params, "by_seed": {}})
        group["by_seed"][outcome.trial.seed] = outcome.result["metrics"]

    aggregates: List[Dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: canonical_json(groups[k]["params"])):
        group = groups[key]
        seeds = sorted(group["by_seed"])
        metric_names = sorted({
            name for metrics in group["by_seed"].values() for name in metrics
        })
        metrics: Dict[str, Any] = {}
        for name in metric_names:
            samples = [
                group["by_seed"][seed][name]
                for seed in seeds
                if name in group["by_seed"][seed]
            ]
            metrics[name] = aggregate_samples(samples)
        aggregates.append({
            "param_key": key,
            "params": group["params"],
            "seeds": seeds,
            "metrics": metrics,
        })
    return aggregates


def build_report(
    spec: ExperimentSpec,
    outcomes: Sequence[TrialOutcome],
    cache_stats: Dict[str, int] = None,
) -> Dict[str, Any]:
    """The full ``BENCH_<id>.json`` document."""
    from repro.core.experiment import EXPERIMENTS

    experiment = EXPERIMENTS.get(spec.experiment_id)
    trials = sorted(
        outcomes,
        key=lambda o: (canonical_json(dict(o.trial.params)), o.trial.seed),
    )
    trial_records = []
    for outcome in trials:
        record: Dict[str, Any] = {
            "params": dict(outcome.trial.params),
            "seed": outcome.trial.seed,
            "derived_seed": outcome.trial.derived_seed,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "cached": outcome.cached,
            "elapsed_s": round(outcome.elapsed_s, 6),
        }
        if outcome.ok and outcome.result is not None:
            record["metrics"] = outcome.result["metrics"]
            record["bench_elapsed_s"] = outcome.result["elapsed_s"]
        if outcome.error:
            record["error"] = outcome.error
        if outcome.trace_path:
            record["trace_path"] = outcome.trace_path
        trial_records.append(record)

    document: Dict[str, Any] = {
        "schema": SCHEMA,
        "experiment_id": spec.experiment_id,
        "spec": spec.to_dict(),
        "counts": {
            "trials": len(outcomes),
            "ok": sum(1 for o in outcomes if o.ok),
            "failed": sum(1 for o in outcomes if not o.ok),
            "cached": sum(1 for o in outcomes if o.cached),
        },
        "aggregates": aggregate_outcomes(spec, outcomes),
        "trials": trial_records,
    }
    if experiment is not None:
        document["paper_ref"] = experiment.paper_ref
        document["claim"] = experiment.claim
    if cache_stats:
        document["cache"] = dict(cache_stats)
    return document


def write_bench_json(
    spec: ExperimentSpec,
    outcomes: Sequence[TrialOutcome],
    out_dir: Path,
    cache_stats: Dict[str, int] = None,
) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{spec.experiment_id}.json"
    document = build_report(spec, outcomes, cache_stats=cache_stats)
    path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
    return path


def render_summary(spec: ExperimentSpec, outcomes: Sequence[TrialOutcome]) -> str:
    """Aggregate table for terminal output: one row per (point, metric)."""
    rows: List[List[Any]] = []
    for aggregate in aggregate_outcomes(spec, outcomes):
        point = " ".join(
            f"{name}={aggregate['params'][name]}"
            for name in sorted(aggregate["params"])
        ) or "(defaults)"
        for name, stats in aggregate["metrics"].items():
            rows.append([
                point, name, f"{stats['mean']:.4g}",
                f"[{stats['ci95_lo']:.4g}, {stats['ci95_hi']:.4g}]",
                stats["n"],
            ])
            point = ""  # only label the first metric row of each point
    failures = [o for o in outcomes if not o.ok]
    table = render_table(
        ["params", "metric", "mean", "95% CI", "n"], rows,
        title=f"{spec.experiment_id}: {len(outcomes)} trials, "
              f"{len(outcomes) - len(failures)} ok, {len(failures)} failed",
    )
    if failures:
        failure_rows = [
            [o.trial.describe(), o.status, o.error or ""] for o in failures
        ]
        table += "\n\n" + render_table(["trial", "status", "error"], failure_rows)
    return table
