"""DAG confirmation confidence (Section IV-B).

A Nano transaction "is only confirmed when it receives a majority vote"
of representative weight.  Confidence is therefore a *weight fraction*,
not a depth, and the time to reach it is one round of vote propagation —
not k block intervals.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def vote_confidence(voted_weight: int, online_weight: int) -> float:
    """Fraction of online weight endorsing a block."""
    if online_weight <= 0:
        raise ValueError("online weight must be positive")
    if voted_weight < 0:
        raise ValueError("voted weight cannot be negative")
    return min(1.0, voted_weight / online_weight)


def is_confirmed(voted_weight: int, online_weight: int, quorum_fraction: float) -> bool:
    return vote_confidence(voted_weight, online_weight) > quorum_fraction


def expected_confirmation_latency(
    vote_propagation_delay_s: float,
    weight_distribution: Sequence[float],
    quorum_fraction: float,
) -> float:
    """Time until quorum, assuming representatives vote on first sight.

    Representative i's vote lands after one propagation delay; with all
    reps at roughly the same distance, confirmation needs only *enough
    weight* to have voted, so latency ≈ one propagation delay once the
    cumulative weight of the fastest responders crosses quorum.  With a
    uniform delay this is simply the propagation delay itself — the model
    the E5 bench compares against blockchain's k·interval.
    """
    if not weight_distribution:
        raise ValueError("need at least one representative")
    total = sum(weight_distribution)
    if total <= 0:
        raise ValueError("total weight must be positive")
    cumulative = 0.0
    for share in sorted(weight_distribution, reverse=True):
        cumulative += share
        if cumulative / total > quorum_fraction:
            return vote_propagation_delay_s
    return float("inf")  # quorum unreachable (too much offline weight)


def blockchain_vs_dag_latency(
    block_interval_s: float,
    confirmation_depth: int,
    vote_propagation_delay_s: float,
) -> Tuple[float, float]:
    """(blockchain latency, DAG latency) for the headline E5 comparison."""
    return (block_interval_s * confirmation_depth, vote_propagation_delay_s)
