"""Honest soft-fork / orphan-rate model (Section IV-A, Figure 4).

A soft fork happens "when two different blocks are created at roughly the
same time" — i.e. when a second block is found before the first finishes
propagating.  With Poisson block production at rate 1/interval and a
propagation delay D, the probability a given block gets a same-height
competitor is ``1 - exp(-D / interval)``.  This is why Bitcoin tolerates
a 10-minute interval and why shrinking the interval (or growing blocks,
which grows D) raises the stale rate.
"""

from __future__ import annotations

import math
from typing import List, Tuple


def expected_orphan_rate(propagation_delay_s: float, block_interval_s: float) -> float:
    """Fraction of blocks expected to end up in a soft fork."""
    if propagation_delay_s < 0:
        raise ValueError("delay must be non-negative")
    if block_interval_s <= 0:
        raise ValueError("interval must be positive")
    return 1.0 - math.exp(-propagation_delay_s / block_interval_s)


def orphan_rate_curve(
    propagation_delay_s: float, intervals: List[float]
) -> List[Tuple[float, float]]:
    """(interval, orphan rate) series for the F4/E10 benches."""
    return [
        (interval, expected_orphan_rate(propagation_delay_s, interval))
        for interval in intervals
    ]


def propagation_delay_for_block(
    block_size_bytes: int,
    bandwidth_bps: float,
    base_latency_s: float,
    hops: int = 3,
) -> float:
    """Crude store-and-forward model: each hop pays latency plus
    transmission time.  Bigger blocks propagate slower — the mechanism
    behind Section VI-A's centralization warning for block-size scaling."""
    if block_size_bytes < 0 or bandwidth_bps <= 0 or hops < 1:
        raise ValueError("invalid propagation parameters")
    per_hop = base_latency_s + (block_size_bytes * 8) / bandwidth_bps
    return per_hop * hops
