"""Transaction-confirmation confidence models (Section IV).

Blockchain: the probability that an attacker rewrites history falls
geometrically with confirmation depth (:mod:`repro.confirmation.nakamoto`),
and honest soft forks orphan recent blocks at a rate set by propagation
delay vs. block interval (:mod:`repro.confirmation.orphan`).  DAG:
confidence is the voted share of representative weight
(:mod:`repro.confirmation.dag_confirmation`).
"""

from repro.confirmation.nakamoto import (
    attacker_success_probability,
    confirmations_for_confidence,
)
from repro.confirmation.orphan import expected_orphan_rate
from repro.confirmation.dag_confirmation import vote_confidence

__all__ = [
    "attacker_success_probability",
    "confirmations_for_confidence",
    "expected_orphan_rate",
    "vote_confidence",
]
