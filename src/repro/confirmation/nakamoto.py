"""Nakamoto's double-spend analysis (Section IV-A).

"As the chain increases in length over the referent block, the
probability of the block being discarded decreases" — quantitatively,
an attacker holding fraction ``q`` of the hash power who is ``z`` blocks
behind catches up with probability ``(q/p)^z``; accounting for the
attacker's progress while the honest chain mined those ``z`` blocks gives
Nakamoto's Poisson-weighted sum (Bitcoin whitepaper, section 11).

These closed forms justify the depth conventions the paper cites: six
confirmations for Bitcoin, five to eleven for Ethereum.
"""

from __future__ import annotations

import math
from typing import List


def catch_up_probability(attacker_share: float, deficit: int) -> float:
    """Probability a ``q``-share attacker ever closes a ``deficit``-block gap.

    The gambler's-ruin result: 1 if q >= 1/2, else (q/p)^deficit.
    """
    _check_share(attacker_share)
    if deficit < 0:
        raise ValueError("deficit must be non-negative")
    q = attacker_share
    p = 1.0 - q
    if q >= 0.5:
        return 1.0
    if deficit == 0:
        return 1.0
    return (q / p) ** deficit


def attacker_success_probability(attacker_share: float, confirmations: int) -> float:
    """Nakamoto's formula: probability a double spend succeeds after the
    merchant waits ``confirmations`` blocks.

    Sums over the attacker's hidden-chain progress k ~ Poisson(lambda),
    lambda = z * q/p, times the catch-up probability from z - k behind.
    """
    _check_share(attacker_share)
    if confirmations < 0:
        raise ValueError("confirmations must be non-negative")
    q = attacker_share
    p = 1.0 - q
    if q >= 0.5:
        return 1.0
    z = confirmations
    if z == 0:
        return 1.0
    lam = z * (q / p)
    # Log-space Poisson: lam**k / k! overflows floats near z ~ 140,
    # which is exactly the deep-confirmation regime a near-1/2 attacker
    # forces (negligible terms underflow to 0.0 instead of raising).
    log_lam = math.log(lam)
    log_ratio = math.log(q / p)
    total = 0.0
    for k in range(z + 1):
        log_poisson = -lam + k * log_lam - math.lgamma(k + 1)
        catch_up = -math.expm1((z - k) * log_ratio)  # 1 - (q/p)^(z-k)
        total += math.exp(log_poisson) * catch_up
    return max(0.0, min(1.0, 1.0 - total))


def rosenfeld_success_probability(attacker_share: float, confirmations: int) -> float:
    """Exact double-spend success probability (Rosenfeld 2014).

    Nakamoto approximates the attacker's progress during the z honest
    confirmations as Poisson; the exact law is negative binomial (k
    attacker blocks before the z-th honest block).  The difference is
    visible for strong attackers at shallow depth — Monte-Carlo races
    converge to *this* form.
    """
    _check_share(attacker_share)
    if confirmations < 0:
        raise ValueError("confirmations must be non-negative")
    q = attacker_share
    p = 1.0 - q
    if q >= 0.5:
        return 1.0
    z = confirmations
    if z == 0:
        return 1.0
    total = 0.0
    for k in range(z + 1):
        pmf = math.comb(k + z - 1, k) * (p**z) * (q**k)
        total += pmf * (1.0 - (q / p) ** (z - k))
    return max(0.0, min(1.0, 1.0 - total))


def confirmations_for_confidence(
    attacker_share: float, max_risk: float, limit: int = 1000
) -> int:
    """Smallest depth at which the attack succeeds with probability
    below ``max_risk`` — the generator of the "6 blocks" rule."""
    _check_share(attacker_share)
    if not 0 < max_risk < 1:
        raise ValueError("max_risk must be in (0, 1)")
    if attacker_share >= 0.5:
        raise ValueError(
            "no depth is safe against a majority attacker (supermajority "
            "assumption of Section III-A violated)"
        )
    for z in range(limit + 1):
        if attacker_success_probability(attacker_share, z) < max_risk:
            return z
    raise ValueError(f"no depth under {limit} reaches risk {max_risk}")


def success_curve(attacker_share: float, max_depth: int) -> List[float]:
    """Success probability for every depth 0..max_depth (bench E4 series)."""
    return [
        attacker_success_probability(attacker_share, z) for z in range(max_depth + 1)
    ]


def _check_share(attacker_share: float) -> None:
    if not 0.0 <= attacker_share < 1.0:
        raise ValueError(f"attacker share must be in [0, 1), got {attacker_share}")
