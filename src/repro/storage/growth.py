"""Ledger growth projection (Section V).

The paper's 2018 snapshot: "Bitcoin is estimated to be 145.95 GB ...
Ethereum 39.62 GB ... Nano's ledger size is 3.42 GB with around 6,700,078
blocks."  The E6 bench grows all three ledgers under equivalent payment
workloads and checks that the *ordering and rough ratios* of the snapshot
emerge from the protocols' per-transaction footprints and throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.units import GB


@dataclass(frozen=True)
class LedgerSnapshot:
    """One system's observed size at the paper's measurement date."""

    name: str
    size_bytes: float
    date: str
    block_count: int = 0


#: The paper's Section V reference points.
LEDGER_SNAPSHOT_2018: Dict[str, LedgerSnapshot] = {
    "bitcoin": LedgerSnapshot("bitcoin", 145.95 * GB, "2018-01-02"),
    "ethereum": LedgerSnapshot("ethereum", 39.62 * GB, "2018-01-02"),
    "nano": LedgerSnapshot("nano", 3.42 * GB, "2018-02-25", block_count=6_700_078),
}


@dataclass(frozen=True)
class GrowthModel:
    """Linear ledger growth: size(t) = genesis + rate · per_entry · t.

    ``entries_per_second`` is the system's realized (not peak) entry rate;
    ``bytes_per_entry`` is measured from our serialized structures.
    """

    name: str
    entries_per_second: float
    bytes_per_entry: float
    genesis_bytes: float = 0.0

    def size_at(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time must be non-negative")
        return self.genesis_bytes + self.entries_per_second * self.bytes_per_entry * seconds

    def growth_per_year(self) -> float:
        return self.entries_per_second * self.bytes_per_entry * 365 * 86_400

    def series(self, horizon_s: float, points: int = 20) -> List[Tuple[float, float]]:
        """(t, size) samples for plotting/reporting."""
        if points < 2:
            raise ValueError("need at least two points")
        step = horizon_s / (points - 1)
        return [(i * step, self.size_at(i * step)) for i in range(points)]


def snapshot_ratios() -> Dict[str, float]:
    """Size of each ledger relative to Nano's, from the paper's snapshot."""
    nano = LEDGER_SNAPSHOT_2018["nano"].size_bytes
    return {
        name: snap.size_bytes / nano for name, snap in LEDGER_SNAPSHOT_2018.items()
    }


def ordering_matches_snapshot(measured: Dict[str, float]) -> bool:
    """True when measured sizes preserve Bitcoin > Ethereum > Nano."""
    try:
        return measured["bitcoin"] > measured["ethereum"] > measured["nano"]
    except KeyError as exc:
        raise ValueError(f"measured dict missing {exc}") from exc
