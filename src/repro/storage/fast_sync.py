"""Ethereum fast sync (Section V-A).

"Instead of processing the entire blockchain one link at a time and
replaying all transactions that ever happened in history, fast syncing
downloads the transaction receipts along the blocks, and pulls an entire
recent state" at the *pivot point* (head − 1024 blocks), then resumes
normal operation.  "The result of the mechanism is a database pruned of
the state deltas."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.blockchain.chain import ChainStore
from repro.blockchain.receipts import Receipt
from repro.blockchain.state import AccountState
from repro.blockchain.transaction import AccountTransaction

#: Geth's pivot offset: state is fetched at head − 1024.
DEFAULT_PIVOT_OFFSET = 1024


@dataclass
class FastSyncResult:
    """Cost comparison between full sync and fast sync for one replica."""

    pivot_height: int
    head_height: int
    # Full sync: every block body is downloaded and re-executed.
    full_sync_bytes: int
    full_sync_txs_replayed: int
    # Fast sync: headers + receipts + one state snapshot + recent bodies.
    fast_sync_bytes: int
    fast_sync_txs_replayed: int
    state_snapshot_bytes: int

    @property
    def bytes_saved(self) -> int:
        return self.full_sync_bytes - self.fast_sync_bytes

    @property
    def replay_saved(self) -> int:
        return self.full_sync_txs_replayed - self.fast_sync_txs_replayed


def fast_sync(
    chain: ChainStore,
    state: AccountState,
    receipts_by_block: List[List[Receipt]],
    pivot_offset: int = DEFAULT_PIVOT_OFFSET,
) -> FastSyncResult:
    """Compute what a fresh node downloads/executes under each strategy.

    ``receipts_by_block[h]`` are the receipts of the main-chain block at
    height ``h``.  The state snapshot cost is the *live* trie size at the
    current root (fast sync never fetches historical deltas).
    """
    head = chain.height
    pivot = max(head - pivot_offset, 0)
    blocks = chain.main_chain()

    full_bytes = sum(b.size_bytes for b in blocks)
    full_replayed = sum(len(b.transactions) for b in blocks)

    header_bytes = sum(b.header.size_bytes for b in blocks)
    # Receipts ride along with *every* header, not just the pre-pivot
    # range — geth downloads them for the whole chain before pivoting.
    receipt_bytes = sum(
        r.size_bytes for height in range(len(receipts_by_block))
        for r in receipts_by_block[height]
    )
    snapshot_bytes = state.live_size_bytes()
    recent_body_bytes = sum(b.body_size_bytes for b in blocks[pivot + 1 :])
    recent_replayed = sum(len(b.transactions) for b in blocks[pivot + 1 :])

    return FastSyncResult(
        pivot_height=pivot,
        head_height=head,
        full_sync_bytes=full_bytes,
        full_sync_txs_replayed=full_replayed,
        fast_sync_bytes=header_bytes + receipt_bytes + snapshot_bytes + recent_body_bytes,
        fast_sync_txs_replayed=recent_replayed,
        state_snapshot_bytes=snapshot_bytes,
    )


def prune_state_deltas(state: AccountState) -> int:
    """Drop all historical state versions, keeping only the current root —
    the end state of a fast-synced database.  Returns bytes freed."""
    return state.prune_history()


def collect_account_txs(chain: ChainStore) -> List[AccountTransaction]:
    """All account transactions on the main chain (helper for benches)."""
    out: List[AccountTransaction] = []
    for block in chain.main_chain():
        out.extend(
            tx for tx in block.transactions if isinstance(tx, AccountTransaction)
        )
    return out
