"""Byte-accurate ledger size reports (Section V).

Sizes are measured from real serialized structures — every number in a
report is ``len(serialize())`` of something, never an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.units import format_bytes
from repro.blockchain.chain import ChainStore
from repro.blockchain.state import AccountState
from repro.dag.lattice import Lattice


@dataclass
class LedgerSizeReport:
    """Component-wise byte breakdown of one ledger replica."""

    ledger_name: str
    components: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())

    def add(self, component: str, size_bytes: int) -> None:
        self.components[component] = self.components.get(component, 0) + size_bytes

    def render(self) -> str:
        lines = [f"{self.ledger_name}: {format_bytes(self.total_bytes)}"]
        for name, size in sorted(self.components.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<20} {format_bytes(size)}")
        return "\n".join(lines)


def blockchain_size_report(
    chain: ChainStore,
    state: Optional[AccountState] = None,
    name: str = "blockchain",
) -> LedgerSizeReport:
    """Measure a blockchain replica: headers, bodies, and (when present)
    the state trie with all its historical deltas."""
    report = LedgerSizeReport(ledger_name=name)
    for block in chain.headers():
        report.add("headers", block.header.size_bytes)
        report.add("tx_bodies", block.body_size_bytes)
    if state is not None:
        report.add("state_trie", state.store_size_bytes())
    return report


def dag_size_report(lattice: Lattice, name: str = "nano") -> LedgerSizeReport:
    """Measure a block-lattice replica.

    Every DAG node is one transaction, so there is no header/body split;
    the per-block signature + work overhead is reported separately to
    show where Nano's bytes go.
    """
    report = LedgerSizeReport(ledger_name=name)
    from repro.dag.blocks import NanoBlock

    per_block_overhead = NanoBlock.AUTH_OVERHEAD_BYTES
    for account_chain in [lattice.chain(a) for a in _accounts(lattice)]:
        assert account_chain is not None
        for block in account_chain.blocks:
            report.add("blocks", block.size_bytes - per_block_overhead)
            report.add("signatures_and_work", per_block_overhead)
    return report


def _accounts(lattice: Lattice):
    return list(lattice._chains.keys())  # noqa: SLF001 - read-only introspection


def per_transaction_bytes(report: LedgerSizeReport, tx_count: int) -> float:
    """Average ledger bytes per transaction — the growth-rate driver."""
    if tx_count <= 0:
        raise ValueError("tx count must be positive")
    return report.total_bytes / tx_count
