"""Ledger size accounting and pruning (Section V).

"As every ledger contains all information since its genesis, its size is
constantly increasing."  This package measures real serialized sizes of
our ledgers and implements each reference implementation's remedy:
Bitcoin's block-file pruning, Ethereum's fast sync over state deltas, and
Nano's balance-based pruning with historical/current/light node types.
"""

from repro.storage.sizing import LedgerSizeReport, blockchain_size_report, dag_size_report
from repro.storage.pruning import PruneResult, prune_chain
from repro.storage.fast_sync import FastSyncResult, fast_sync
from repro.storage.dag_pruning import DagNodeType, dag_footprint, prune_lattice
from repro.storage.growth import GrowthModel, LEDGER_SNAPSHOT_2018
from repro.storage.live import (
    LivePruneStats,
    attach_chain_pruning,
    attach_lattice_pruning,
)

__all__ = [
    "DagNodeType",
    "FastSyncResult",
    "GrowthModel",
    "LEDGER_SNAPSHOT_2018",
    "LedgerSizeReport",
    "LivePruneStats",
    "PruneResult",
    "attach_chain_pruning",
    "attach_lattice_pruning",
    "blockchain_size_report",
    "dag_footprint",
    "dag_size_report",
    "fast_sync",
    "prune_chain",
    "prune_lattice",
]
