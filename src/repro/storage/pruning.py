"""Bitcoin-style block-file pruning (Section V-A).

"Bitcoin clients offer a pruning mode, allowing users to delete raw block
data after the entire ledger has been downloaded and validated, keeping
only a small subset of the data ... to be able to relay recent blocks to
peers and handle soft forks.  The downside is that other nodes are no
longer able to download the entire history of a pruned node."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import PrunedHistoryError
from repro.common.types import Hash
from repro.blockchain.chain import ChainStore

#: Bitcoin Core keeps at least 288 blocks (~2 days) when pruning.
DEFAULT_KEEP_DEPTH = 288


@dataclass
class PruneResult:
    """Outcome of one pruning pass."""

    blocks_pruned: int
    bytes_freed: int
    keep_depth: int
    size_before: int
    size_after: int

    @property
    def fraction_freed(self) -> float:
        return self.bytes_freed / self.size_before if self.size_before else 0.0


class PrunedChainView:
    """A chain replica that pruned its history.

    Serves headers for everything but raises :class:`PrunedHistoryError`
    for pruned bodies — modelling the "cannot serve full history" cost.
    """

    def __init__(self, chain: ChainStore, pruned_ids: List[Hash]) -> None:
        self._chain = chain
        self._pruned = set(pruned_ids)

    def get_block_body(self, block_id: Hash):
        if block_id in self._pruned:
            raise PrunedHistoryError(
                f"block {block_id.short()} body was pruned; only the header remains"
            )
        return self._chain.block(block_id).transactions

    def can_serve_full_history(self) -> bool:
        return not self._pruned


def prune_chain(chain: ChainStore, keep_depth: int = DEFAULT_KEEP_DEPTH) -> PruneResult:
    """Discard transaction bodies of main-chain blocks deeper than
    ``keep_depth`` below the head; headers always remain (they carry the
    PoW chain and Merkle commitments needed to validate new blocks)."""
    if keep_depth < 1:
        raise ValueError("must keep at least the most recent block")
    size_before = chain.total_size_bytes()
    cutoff_height = chain.height - keep_depth
    freed = 0
    pruned = 0
    pruned_ids: List[Hash] = []
    for height in range(0, max(cutoff_height + 1, 0)):
        block = chain.block_at_height(height)
        if not block.transactions:
            continue  # already pruned
        freed += chain.drop_body(block.block_id)
        pruned += 1
        pruned_ids.append(block.block_id)
    return PruneResult(
        blocks_pruned=pruned,
        bytes_freed=freed,
        keep_depth=keep_depth,
        size_before=size_before,
        size_after=chain.total_size_bytes(),
    )


def pruned_view(chain: ChainStore, result: PruneResult) -> PrunedChainView:
    """Convenience wrapper exposing the serving limitation after a prune."""
    pruned_ids = [
        chain.block_at_height(h).block_id
        for h in range(0, max(chain.height - result.keep_depth + 1, 0))
        if not chain.block_at_height(h).transactions
    ]
    return PrunedChainView(chain, pruned_ids)
