"""Nano ledger pruning and node types (Section V-B).

"Nano distinguishes between three types of nodes: *historical* which keep
record of all transactions, *current* which keep only the head of
account-chains, and *light* that do not hold any ledger data."  And:
"since the accounts keep record of account balances instead of unspent
transaction inputs, all other historical data can be discarded."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.common.types import Address
from repro.dag.blocks import NanoBlock
from repro.dag.lattice import Lattice


class DagNodeType(enum.Enum):
    HISTORICAL = "historical"  # full transaction record
    CURRENT = "current"  # account-chain heads only
    LIGHT = "light"  # no ledger data


@dataclass
class DagPruneResult:
    """Outcome of pruning a lattice replica down to chain heads."""

    blocks_before: int
    blocks_after: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_freed(self) -> int:
        return self.bytes_before - self.bytes_after

    @property
    def fraction_freed(self) -> float:
        return self.bytes_freed / self.bytes_before if self.bytes_before else 0.0


def head_blocks(lattice: Lattice) -> Dict[Address, NanoBlock]:
    """The minimal state a *current* node keeps: one head per account.

    The head alone carries the balance and representative — sufficient to
    validate future blocks, which is exactly why balance-carrying blocks
    make history discardable.
    """
    heads: Dict[Address, NanoBlock] = {}
    for chain in lattice.chains():
        heads[chain.account] = chain.head
    return heads


def prune_lattice(lattice: Lattice) -> DagPruneResult:
    """Discard all non-head blocks from every account chain in place.

    Pending (unsettled) sends are *not* prunable: their receive has not
    been generated, so the send block must stay available.
    """
    bytes_before = lattice.serialized_size()
    blocks_before = lattice.block_count()
    keep = set()
    for account, head in head_blocks(lattice).items():
        keep.add(head.block_hash)
    # Unsettled sends must survive pruning.
    for pending in list(lattice._pending.values()):  # noqa: SLF001
        keep.add(pending.source_hash)

    for chain in lattice.chains():
        kept_blocks = [b for b in chain.blocks if b.block_hash in keep]
        for block in chain.blocks:
            if block.block_hash not in keep:
                del lattice._blocks[block.block_hash]  # noqa: SLF001
        if len(kept_blocks) != len(chain.blocks):
            chain.blocks = kept_blocks
            # The incremental cementing frontier indexes into the (now
            # shorter) block list; a stale frontier would skip blocks
            # appended after a live prune.  Re-walking is idempotent.
            lattice._cement_frontier[chain.account] = 0  # noqa: SLF001

    return DagPruneResult(
        blocks_before=blocks_before,
        blocks_after=lattice.block_count(),
        bytes_before=bytes_before,
        bytes_after=lattice.serialized_size(),
    )


def dag_footprint(lattice: Lattice, node_type: DagNodeType) -> int:
    """Ledger bytes a node of the given type stores."""
    if node_type == DagNodeType.LIGHT:
        return 0
    if node_type == DagNodeType.HISTORICAL:
        return lattice.serialized_size()
    # CURRENT: heads plus unsettled sends.
    keep_hashes = {b.block_hash for b in head_blocks(lattice).values()}
    for pending in lattice._pending.values():  # noqa: SLF001
        keep_hashes.add(pending.source_hash)
    return sum(lattice.block(h).size_bytes for h in keep_hashes)


def footprint_by_type(lattice: Lattice) -> Dict[str, int]:
    """Bytes per node type — the E8 bench's table."""
    return {t.value: dag_footprint(lattice, t) for t in DagNodeType}
