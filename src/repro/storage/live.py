"""Live, in-simulation pruning (Section V applied to running nodes).

The static pruning helpers (:mod:`repro.storage.pruning`,
:mod:`repro.storage.dag_pruning`) operate on a ledger *after* a run.
Here they are attached to live nodes on a periodic tick, which is what
bounds a replica's memory during a sustained-service soak: block bodies
older than ``keep_depth`` are discarded while the run continues, and the
lattice is trimmed to heads + unsettled sends.

Undo data and headers are never touched, so consensus, reorgs, and the
in-loop invariant audits behave exactly as on an unpruned node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.storage.dag_pruning import prune_lattice
from repro.storage.pruning import DEFAULT_KEEP_DEPTH, prune_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.blockchain.node import BlockchainNode
    from repro.dag.node import NanoNode
    from repro.sim.simulator import PeriodicTask


@dataclass
class LivePruneStats:
    """Accounting for one node's periodic pruning."""

    ticks: int = 0
    blocks_pruned: int = 0
    bytes_freed: int = 0
    #: (sim time, ledger bytes after pruning) per tick — the soak series
    size_series: List[Tuple[float, int]] = field(default_factory=list)


def attach_chain_pruning(
    node: "BlockchainNode",
    interval_s: float,
    keep_depth: int = DEFAULT_KEEP_DEPTH,
    until: Optional[float] = None,
) -> Tuple["PeriodicTask", LivePruneStats]:
    """Prune ``node``'s block bodies below head − ``keep_depth`` every
    ``interval_s`` simulated seconds."""
    if node.network is None:
        raise RuntimeError("attach the node to a network before pruning")
    simulator = node.network.simulator
    stats = LivePruneStats()

    def tick() -> None:
        result = prune_chain(node.chain, keep_depth=keep_depth)
        stats.ticks += 1
        stats.blocks_pruned += result.blocks_pruned
        stats.bytes_freed += result.bytes_freed
        stats.size_series.append((simulator.now, result.size_after))

    task = simulator.schedule_periodic(interval_s, tick, until=until)
    return task, stats


def attach_lattice_pruning(
    node: "NanoNode",
    interval_s: float,
    until: Optional[float] = None,
) -> Tuple["PeriodicTask", LivePruneStats]:
    """Trim ``node``'s lattice to heads + unsettled sends periodically —
    a live *current*-type node (Section V-B)."""
    if node.network is None:
        raise RuntimeError("attach the node to a network before pruning")
    simulator = node.network.simulator
    stats = LivePruneStats()

    def tick() -> None:
        result = prune_lattice(node.lattice)
        stats.ticks += 1
        stats.blocks_pruned += result.blocks_before - result.blocks_after
        stats.bytes_freed += result.bytes_freed
        stats.size_series.append((simulator.now, result.bytes_after))

    task = simulator.schedule_periodic(interval_s, tick, until=until)
    return task, stats
