"""Command-line interface.

``python -m repro <command>`` exposes the headline experiments without
writing any code:

* ``list``          — the experiment registry (paper ref → bench file);
* ``compare``       — run the blockchain-vs-DAG comparison on a workload;
* ``tps``           — Section VI-A protocol throughput ceilings;
* ``confirmation``  — Section IV-A depth-for-risk table;
* ``growth``        — Section V ledger growth snapshot and ratios;
* ``faults``        — degraded-network gossip run with a JSONL trace;
* ``fuzz``          — differential fuzzing with in-loop invariant
  enforcement across both paradigms (see ``repro.check``);
* ``soak``          — sustained open-loop load with live pruning vs an
  unpruned control (bounded-memory check);
* ``bench``         — one experiment, one trial, in process;
* ``sweep``         — parameter-grid fan-out across worker processes,
  aggregated into ``BENCH_<id>.json`` (see ``repro.runner``);
* ``perf``          — hot-path microbenchmark suite, written to
  ``BENCH_PERF.json`` (see ``docs/performance.md``);
* ``profile``       — one microbenchmark under cProfile, top-N hotspots.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.common.units import format_bytes
from repro.core.experiment import EXPERIMENTS
from repro.metrics.tables import render_table

#: The normalized ``--paradigm`` spelling every deployment-shaped
#: subcommand (fuzz/sweep/soak/perf) shares: ``both`` is the paper's
#: differential pair, ``all`` adds the BFT engine.
_PARADIGM_CHOICES = ("all", "both", "blockchain", "dag", "bft")
_ENGINE_CHOICES = ("pow", "orv", "hotstuff")
_ENGINE_PARADIGM = {"pow": "blockchain", "orv": "dag", "hotstuff": "bft"}

#: Module prefixes that tag an experiment as paradigm-specific for
#: ``sweep --paradigm``; experiments matching none are cross-cutting
#: and excluded whenever a single-paradigm filter is active.
_SWEEP_MODULE_PREFIXES = {
    "blockchain": ("repro.blockchain", "repro.crypto.pow"),
    "dag": ("repro.dag",),
    "bft": ("repro.consensus",),
}


def _selection_parent(paradigm_default: Optional[str] = None,
                      profile_default: Optional[str] = None,
                      profile_help: str = "named scenario profile",
                      ) -> argparse.ArgumentParser:
    """The shared ``--paradigm``/``--engine``/``--profile`` option block.

    Built once per subcommand as an argparse *parent parser* so every
    deployment-shaped command accepts the same spelling (no copy-pasted
    option blocks drifting apart)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--paradigm", choices=_PARADIGM_CHOICES,
                        default=paradigm_default,
                        help="paradigm selection (both = blockchain+dag, "
                             "all = +bft)")
    parent.add_argument("--engine", choices=_ENGINE_CHOICES, default=None,
                        help="consensus engine (default: the selected "
                             "paradigm's native engine)")
    parent.add_argument("--profile", default=profile_default,
                        help=profile_help)
    return parent


def _resolve_paradigms(selection: Optional[str]) -> List[str]:
    from repro.check.runner import ALL_PARADIGMS, PARADIGMS

    if selection in (None, "both"):
        return list(PARADIGMS)
    if selection == "all":
        return list(ALL_PARADIGMS)
    return [selection]


def _engine_error(paradigms: List[str], engine: Optional[str]) -> Optional[str]:
    """Engine/paradigm consistency check; None when compatible."""
    if engine is None:
        return None
    from repro.core.deploy import PARADIGM_ENGINES

    bad = [p for p in paradigms if engine not in PARADIGM_ENGINES[p]]
    if bad:
        return (f"engine {engine!r} does not apply to paradigm(s) "
                f"{', '.join(bad)}")
    return None


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [e.experiment_id, e.paper_ref, e.claim, e.bench]
        for e in EXPERIMENTS.values()
    ]
    print(render_table(["id", "paper", "claim", "bench"], rows,
                       title="Reproduced experiments"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.blockchain.params import BITCOIN, ETHEREUM
    from repro.core.comparison import compare_ledgers
    from repro.core.deploy import build_deployment
    from repro.workloads.generators import PaymentWorkload

    base = ETHEREUM if args.chain == "ethereum" else BITCOIN
    params = replace(
        base,
        target_block_interval_s=args.block_interval,
        confirmation_depth=args.depth,
    )
    events = PaymentWorkload(
        accounts=args.accounts, rate_tps=args.rate, seed=args.seed
    ).generate(args.duration)
    print(f"running {len(events)} payments through both paradigms...",
          file=sys.stderr)
    report = compare_ledgers(
        build_deployment("blockchain", chain_params=params,
                         node_count=args.nodes, seed=args.seed).ledger,
        build_deployment("dag", node_count=args.nodes + 2,
                         representative_count=3, seed=args.seed).ledger,
        events,
        accounts=args.accounts,
        initial_balance=10_000_000,
        settle_s=args.block_interval * (args.depth + 3),
    )
    print(report.render())
    return 0


def _cmd_tps(args: argparse.Namespace) -> int:
    from repro.scaling.throughput import protocol_tps_table

    table = protocol_tps_table(avg_tx_size_bytes=args.tx_bytes)
    rows = [[name, f"{tps:,.1f}"] for name, tps in table.items()]
    print(render_table(["system", "max TPS"], rows,
                       title=f"Protocol ceilings (avg tx {args.tx_bytes} B)"))
    return 0


def _cmd_confirmation(args: argparse.Namespace) -> int:
    from repro.confirmation.nakamoto import (
        attacker_success_probability,
        confirmations_for_confidence,
    )

    rows = []
    for q in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40):
        depth = confirmations_for_confidence(q, args.risk)
        rows.append([
            f"{q:.0%}", depth,
            f"{attacker_success_probability(q, depth):.2e}",
        ])
    print(render_table(
        ["attacker share", "confirmations", "residual risk"], rows,
        title=f"Depth for <{args.risk:.2%} reversal risk (Section IV-A)",
    ))
    return 0


def _cmd_growth(args: argparse.Namespace) -> int:
    from repro.storage.growth import LEDGER_SNAPSHOT_2018, snapshot_ratios

    ratios = snapshot_ratios()
    rows = [
        [name, format_bytes(snap.size_bytes), snap.date, f"{ratios[name]:.1f}x"]
        for name, snap in LEDGER_SNAPSHOT_2018.items()
    ]
    print(render_table(
        ["ledger", "size", "snapshot date", "vs nano"], rows,
        title="Section V ledger sizes (paper's reference points)",
    ))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Gossip under injected faults: timed partition with auto-heal plus
    node churn, reported from the structured trace."""
    from repro.faults import ChurnParams, FaultInjector
    from repro.metrics.collector import MetricCollector
    from repro.net.link import FAST_LINK
    from repro.net.network import Network
    from repro.net.node import NetworkNode
    from repro.net.topology import complete_topology, small_world_topology
    from repro.sim.simulator import Simulator
    from repro.workloads.generators import gossip_workload

    if args.nodes < 2:
        print("error: --nodes must be at least 2", file=sys.stderr)
        return 2
    sim = Simulator(seed=args.seed)
    net = Network(sim)
    # Watts-Strogatz needs count > k; tiny networks get a clique.
    if args.nodes > 4:
        nodes = small_world_topology(net, args.nodes, NetworkNode,
                                     link_params=FAST_LINK, seed=args.seed)
    else:
        nodes = complete_topology(net, args.nodes, NetworkNode, FAST_LINK)
    injector = FaultInjector(net)
    half = [n.node_id for n in nodes[: len(nodes) // 2]]
    rest = [n.node_id for n in nodes[len(nodes) // 2:]]
    try:
        injector.partition_at(args.partition_at, [half, rest],
                              heal_after_s=args.heal_after)
        if args.churn_nodes > 0:
            injector.churn(
                [n.node_id for n in nodes[: args.churn_nodes]],
                ChurnParams(mtbf_s=args.duration / 4, downtime_s=10.0,
                            until_s=args.duration * 0.6),
            )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        sent = gossip_workload(sim, nodes, rate_tps=args.rate,
                               duration_s=args.duration)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sim.run(until=args.duration)
    sim.run()  # drain retransmissions past the horizon

    tracer = net.tracer
    collector = MetricCollector()
    collector.ingest_tracer(tracer)
    expected = len(sent) * (len(nodes) - 1)
    received = sum(n.messages_received for n in nodes)
    rows = [
        ["broadcasts", len(sent)],
        ["delivery", f"{received}/{expected} "
                     f"({received / max(expected, 1):.1%})"],
        ["scheduled", tracer.scheduled],
        ["delivered", tracer.delivered],
        ["dropped", tracer.dropped],
        ["retransmits", tracer.retransmits],
        ["in flight", tracer.in_flight],
        ["crashes/restarts",
         f"{injector.crashes_injected}/{injector.restarts_injected}"],
    ]
    for reason, count in sorted(tracer.drop_reasons.items()):
        rows.append([f"dropped: {reason}", count])
    print(render_table(["metric", "value"], rows,
                       title="Degraded-network gossip (faults + trace)"))
    if args.trace_out:
        written = tracer.dump_jsonl(args.trace_out)
        print(f"{written} trace records written to {args.trace_out}",
              file=sys.stderr)
    return 0 if received == expected else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzz campaign: seeded schedules replayed on both
    paradigms with in-loop invariant auditing (see ``repro.check``)."""
    from repro.check.generator import PROFILES, profile_named
    from repro.check.runner import run_campaign

    if args.profile not in PROFILES:
        print(f"error: unknown profile {args.profile!r} "
              f"(choose from {', '.join(sorted(PROFILES))})", file=sys.stderr)
        return 2
    overrides = {}
    if args.audit_interval is not None:
        overrides["audit_interval_s"] = args.audit_interval
    if args.topology_scale is not None:
        overrides["topology_scale"] = args.topology_scale
    try:
        profile = profile_named(args.profile, **overrides)
    except (KeyError, TypeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    paradigms = _resolve_paradigms(args.paradigm)
    error = _engine_error(paradigms, args.engine)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    seeds = range(args.seed_start, args.seed_start + args.seeds)
    print(f"fuzzing {len(seeds)} seeds x {len(paradigms)} paradigm(s), "
          f"profile {profile.name} ({profile.describe()})", file=sys.stderr)

    try:
        outcomes = run_campaign(
            list(seeds), profile, paradigms,
            shrink=args.shrink,
            determinism_check=args.check_determinism,
            artifact_dir=args.artifact_dir,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except AssertionError as error:
        print(f"REPLAY DIVERGENCE: {error}", file=sys.stderr)
        return 1

    failing = [o for o in outcomes if not o.ok]
    runs = sum(len(o.results) for o in outcomes)
    print(f"{runs} runs, {len(failing)}/{len(outcomes)} seeds with violations")
    for outcome in failing:
        for result in outcome.failing():
            print(f"  seed={outcome.seed} {result.paradigm}: "
                  + "; ".join(f"[{v.invariant}] {v.detail}"
                              for v in result.violation.violations))
    return 1 if failing else 0


def _cmd_soak(args: argparse.Namespace) -> int:
    """Bounded-memory soak: open-loop traffic against a live deployment
    with periodic pruning, compared against an unpruned control."""
    from repro.blockchain.mempool import MempoolLimits
    from repro.blockchain.params import BITCOIN
    from repro.core.deploy import build_deployment
    from repro.net.link import FAST_LINK
    from repro.workloads.open_loop import OpenLoopInjector

    if args.paradigm in ("both", "all"):
        print("error: soak runs one paradigm at a time "
              "(--paradigm blockchain or dag)", file=sys.stderr)
        return 2
    if args.paradigm == "bft":
        print("error: the bft paradigm has no pruning path to soak "
              "(choose blockchain or dag)", file=sys.stderr)
        return 2
    error = _engine_error([args.paradigm], args.engine)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.profile is not None:
        # Borrow the deployment knobs of a named fuzz profile, so e.g.
        # ``repro soak --profile soak`` replays the CI soak scenario.
        from repro.check.generator import PROFILES
        if args.profile not in PROFILES:
            print(f"error: unknown profile {args.profile!r} "
                  f"(choose from {', '.join(sorted(PROFILES))})",
                  file=sys.stderr)
            return 2
        prof = PROFILES[args.profile]
        args.rate = prof.rate_tps
        args.duration = prof.duration_s
        if prof.prune_interval_s is not None:
            args.prune_interval = prof.prune_interval_s
        args.keep_depth = prof.prune_keep_depth
        if prof.mempool_max_count is not None:
            args.mempool_cap = prof.mempool_max_count

    def build(pruned: bool):
        interval = args.prune_interval if pruned else None
        if args.paradigm == "dag":
            return build_deployment(
                "dag", node_count=4, representative_count=2, seed=args.seed,
                prune_interval_s=interval,
                topology_scale=args.topology_scale,
            )
        params = replace(
            BITCOIN, target_block_interval_s=15.0,
            max_block_size_bytes=4_000, confirmation_depth=2,
        )
        return build_deployment(
            "blockchain", chain_params=params, node_count=3,
            link_params=FAST_LINK, seed=args.seed,
            mempool_limits=MempoolLimits(max_count=args.mempool_cap),
            prune_interval_s=interval,
            prune_keep_depth=args.keep_depth,
            topology_scale=args.topology_scale,
        )

    rows = []
    sizes = {}
    confirmed = {}
    scale_report = None
    for pruned in (True, False):
        deployment = build(pruned)
        deployment.setup(args.accounts, 10**9)
        ledger = deployment.ledger
        injector = OpenLoopInjector.from_sim_stream(
            ledger, accounts=args.accounts, rate_tps=args.rate,
            duration_s=args.duration,
        )
        injector.start()
        ledger.advance(args.duration)
        stats = ledger.stats()
        label = "pruned" if pruned else "control"
        sizes[label] = ledger.serialized_size()
        confirmed[label] = stats.entries_confirmed
        rows.append([
            label,
            injector.report.offered,
            stats.entries_confirmed,
            f"{injector.report.backpressure_fraction:.1%}",
            format_bytes(sizes[label]),
        ])
        scale = deployment.scale_stats()
        if scale["scaled"]:
            scale_report = scale
        deployment.close()
    print(render_table(
        ["run", "offered", "confirmed", "backpressure", "ledger size"],
        rows,
        title=f"{args.duration:.0f}s soak @ {args.rate:g} tx/s "
              f"({args.paradigm}, prune every {args.prune_interval:g}s)",
    ))
    ratio = sizes["control"] / max(sizes["pruned"], 1)
    print(f"unpruned/pruned ledger ratio: {ratio:.2f}x", file=sys.stderr)
    if scale_report is not None:
        print(f"scaled tier: {scale_report['modeled_nodes']:.0f} modeled "
              f"nodes behind {scale_report['boundary_nodes']:.0f} replicas, "
              f"{scale_report['modeled_deliveries']:.0f} modeled deliveries, "
              f"worst propagation "
              f"{scale_report['propagation_max_s']:.3f}s", file=sys.stderr)
    return 0 if confirmed["pruned"] > 0 and ratio > 1.0 else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Generate a markdown results report from the fast experiments."""
    from repro.blockchain.params import BITCOIN
    from repro.common.units import MB
    from repro.confirmation.nakamoto import (
        attacker_success_probability,
        confirmations_for_confidence,
    )
    from repro.confirmation.orphan import expected_orphan_rate
    from repro.scaling.blocksize import blocksize_sweep
    from repro.scaling.sharding import ShardedLedger
    from repro.scaling.throughput import protocol_tps_table
    from repro.storage.growth import LEDGER_SNAPSHOT_2018

    sections: List[str] = [
        "# Results report",
        "",
        "Generated by `python -m repro report` — analytic/fast experiments "
        "only; run `pytest benchmarks/ --benchmark-only -s` for the full "
        "simulation suite.",
    ]

    def add_table(title: str, headers, rows) -> None:
        sections.append(f"\n## {title}\n")
        sections.append("| " + " | ".join(headers) + " |")
        sections.append("|" + "|".join("---" for _ in headers) + "|")
        for row in rows:
            sections.append("| " + " | ".join(str(c) for c in row) + " |")

    table = protocol_tps_table()
    add_table(
        "Protocol throughput ceilings (§VI-A)",
        ["system", "max TPS"],
        [[k, f"{v:,.1f}"] for k, v in table.items()],
    )

    add_table(
        "Confirmation depth for <0.1% reversal risk (§IV-A)",
        ["attacker share", "depth", "residual risk"],
        [
            [f"{q:.0%}", confirmations_for_confidence(q, 0.001),
             f"{attacker_success_probability(q, confirmations_for_confidence(q, 0.001)):.1e}"]
            for q in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
        ],
    )

    add_table(
        "Soft-fork rate vs block interval (5 s propagation, §IV-A)",
        ["interval", "orphan rate"],
        [
            [f"{i:.0f} s", f"{expected_orphan_rate(5.0, i):.3f}"]
            for i in (4.0, 15.0, 60.0, 600.0)
        ],
    )

    points = blocksize_sweep(BITCOIN, [1 * MB, 2 * MB, 8 * MB, 100 * MB, 4000 * MB])
    add_table(
        "Block-size sweep (§VI-A, Segwit2x = 2 MB)",
        ["size", "TPS", "consumer viable"],
        [
            [format_bytes(p.block_size_bytes), f"{p.tps:.1f}",
             "yes" if p.consumer_viable else "NO"]
            for p in points
        ],
    )

    add_table(
        "Sharding throughput (§VI-A)",
        ["K", "TPS local", "TPS random traffic"],
        [
            [k,
             f"{ShardedLedger(k, per_shard_tps=10.0).effective_tps(0.0):,.0f}",
             f"{ShardedLedger(k, per_shard_tps=10.0).effective_tps((k - 1) / k):,.0f}"]
            for k in (1, 4, 16, 64)
        ],
    )

    add_table(
        "Ledger sizes at the paper's snapshot (§V)",
        ["ledger", "size", "date"],
        [
            [name, format_bytes(snap.size_bytes), snap.date]
            for name, snap in LEDGER_SNAPSHOT_2018.items()
        ],
    )

    content = "\n".join(sections) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(content)
        print(f"report written to {args.output}")
    else:
        print(content)
    return 0


def _parse_param_value(text: str):
    """``--param`` values: int, then float, then bool, else string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_grid(pairs: List[str]):
    grid = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise ValueError(f"--param expects key=v1[,v2,...], got {pair!r}")
        key, _, values = pair.partition("=")
        grid[key.strip()] = [
            _parse_param_value(v.strip()) for v in values.split(",") if v.strip()
        ]
    return grid


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run one experiment once, in process, and print its metrics."""
    experiment = EXPERIMENTS.get(args.experiment_id)
    if experiment is None:
        print(f"error: unknown experiment {args.experiment_id!r} "
              f"(see `python -m repro list`)", file=sys.stderr)
        return 2
    overrides = {
        key: values[0] for key, values in _parse_grid(args.param).items()
    }
    if args.topology_scale is not None:
        overrides["total_nodes"] = args.topology_scale
    runner = experiment.load_runner()
    try:
        result = runner(overrides, args.seed)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [["experiment", result["experiment_id"]],
            ["seed", result["seed"]],
            ["elapsed", f"{result['elapsed_s']:.3f} s"]]
    for key, value in sorted(result["params"].items()):
        rows.append([f"param: {key}", value])
    for key, value in sorted(result["metrics"].items()):
        rows.append([f"metric: {key}", value])
    print(render_table(["field", "value"], rows,
                       title=f"{experiment.experiment_id}: {experiment.claim}"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Expand a parameter grid and fan trials out across processes."""
    import os

    from repro.runner import (
        ResultCache,
        build_spec,
        render_summary,
        run_trials,
        write_bench_json,
    )

    if args.profile is not None:
        print("error: --profile names fuzz scenarios; it does not apply "
              "to sweep (use fuzz/soak)", file=sys.stderr)
        return 2
    selector = args.paradigm
    if args.engine is not None:
        owner = _ENGINE_PARADIGM[args.engine]
        if selector in (None, "all", "both"):
            selector = owner
        elif selector != owner:
            print(f"error: engine {args.engine!r} does not apply to "
                  f"paradigm {selector!r}", file=sys.stderr)
            return 2
    if args.all or selector not in (None, "all", "both"):
        experiment_ids = list(EXPERIMENTS)
    elif args.experiment:
        experiment_ids = list(args.experiment)
    else:
        print("error: pass --experiment ID (repeatable), --all, or a "
              "--paradigm filter", file=sys.stderr)
        return 2
    unknown = [e for e in experiment_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiments: {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    if selector not in (None, "all", "both"):
        prefixes = _SWEEP_MODULE_PREFIXES[selector]
        filtered = [
            e for e in experiment_ids
            if any(m == p or m.startswith(p + ".")
                   for m in EXPERIMENTS[e].modules for p in prefixes)
        ]
        if args.experiment:
            filtered = [e for e in filtered if e in args.experiment]
        if not filtered:
            print(f"error: no experiments match paradigm {selector!r}",
                  file=sys.stderr)
            return 2
        experiment_ids = filtered
    try:
        grid = _parse_grid(args.param)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.topology_scale:
        grid["total_nodes"] = [
            int(v) for v in args.topology_scale.split(",") if v.strip()
        ]
    if args.seeds:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    else:
        seeds = list(range(args.trials))
    jobs = args.jobs or os.cpu_count() or 1

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or os.path.join(args.out_dir, "cache"))

    failures = 0
    for experiment_id in experiment_ids:
        spec = build_spec(experiment_id, grid or None, seeds=seeds)
        trials = spec.expand()
        print(f"[{experiment_id}] {len(trials)} trials "
              f"({len(spec.points())} grid points x {len(seeds)} seeds), "
              f"jobs={jobs}", file=sys.stderr)

        def progress(outcome, done, total):
            marker = "cache" if outcome.cached else outcome.status.lower()
            print(f"[{experiment_id}] {done}/{total} {outcome.trial.key} "
                  f"({marker}, {outcome.elapsed_s:.2f}s)", file=sys.stderr)

        outcomes = run_trials(
            trials, jobs=jobs, timeout_s=args.timeout, retries=args.retries,
            cache=cache, trace_dir=args.trace_dir, progress=progress,
        )
        cache_stats = cache.stats() if cache else None
        path = write_bench_json(spec, outcomes, args.out_dir,
                                cache_stats=cache_stats)
        print(render_summary(spec, outcomes))
        print(f"wrote {path}", file=sys.stderr)
        failures += sum(1 for o in outcomes if not o.ok)
    return 1 if failures else 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """Run the hot-path microbenchmark suite and write BENCH_PERF.json."""
    import json
    import os

    from repro.perf import (
        build_report,
        calibration_score,
        check_regressions,
        render_results,
        run_suite,
    )

    def progress(result) -> None:
        print(f"  {result.name}: {result.ops_per_s:,.1f} ops/s "
              f"({result.wall_s:.3f} s)", file=sys.stderr)

    if args.profile is not None:
        print("error: --profile names fuzz scenarios; it does not apply "
              "to perf (use fuzz/soak)", file=sys.stderr)
        return 2
    selector = args.paradigm
    if args.engine is not None:
        owner = _ENGINE_PARADIGM[args.engine]
        if selector in (None, "all", "both"):
            selector = owner
        elif selector != owner:
            print(f"error: engine {args.engine!r} does not apply to "
                  f"paradigm {selector!r}", file=sys.stderr)
            return 2
    names = list(args.bench) or None
    if selector not in (None, "all", "both"):
        from repro.perf.suite import BENCHES
        tagged = [n for n, b in BENCHES.items() if selector in b.paradigms]
        if not tagged:
            print(f"error: no perf benches are tagged {selector!r}",
                  file=sys.stderr)
            return 2
        names = [n for n in (names or tagged) if n in tagged]
        if not names:
            print(f"error: none of the requested benches belong to "
                  f"paradigm {selector!r}", file=sys.stderr)
            return 2

    try:
        results = run_suite(names, scale=args.scale,
                            progress=progress)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    calibration = calibration_score()

    reference = None
    if args.reference and os.path.exists(args.reference):
        with open(args.reference) as handle:
            reference = json.load(handle)
    report = build_report(results, calibration, scale=args.scale,
                          reference=reference)

    print(render_results(results))
    speedups = report.get("speedup_vs_reference_normalized") or {}
    if speedups:
        print("\nspeedup vs reference (calibration-normalized):")
        for name, factor in sorted(speedups.items()):
            print(f"  {name:<22} {factor:.2f}x")

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_regressions(report, baseline,
                                     tolerance=args.tolerance)
        if failures:
            print("performance regression gate FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed (tolerance -{args.tolerance:.0%} "
              f"vs {args.check})", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one microbenchmark under cProfile and print the hotspots."""
    from repro.perf.profiling import profile_bench
    from repro.perf.suite import BENCHES

    if args.bench not in BENCHES:
        print(f"error: unknown bench {args.bench!r} "
              f"(choose from {', '.join(sorted(BENCHES))})", file=sys.stderr)
        return 2
    try:
        table, wall = profile_bench(args.bench, scale=args.scale,
                                    top=args.top, sort=args.sort)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(table, end="")
    print(f"bench {args.bench} wall clock: {wall:.3f} s", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Blockchain vs DAG distributed-ledger comparison framework",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the experiment registry").set_defaults(
        func=_cmd_list
    )

    compare = sub.add_parser("compare", help="run the paradigm comparison")
    compare.add_argument("--chain", choices=("bitcoin", "ethereum"),
                         default="bitcoin",
                         help="blockchain reference implementation to compare")
    compare.add_argument("--accounts", type=int, default=6)
    compare.add_argument("--rate", type=float, default=0.05,
                         help="payment rate (TPS)")
    compare.add_argument("--duration", type=float, default=400.0,
                         help="workload duration (simulated s)")
    compare.add_argument("--nodes", type=int, default=4)
    compare.add_argument("--block-interval", type=float, default=20.0)
    compare.add_argument("--depth", type=int, default=3,
                         help="blockchain confirmation depth")
    compare.add_argument("--seed", type=int, default=1)
    compare.set_defaults(func=_cmd_compare)

    tps = sub.add_parser("tps", help="protocol throughput ceilings (§VI-A)")
    tps.add_argument("--tx-bytes", type=int, default=250)
    tps.set_defaults(func=_cmd_tps)

    confirmation = sub.add_parser(
        "confirmation", help="depth-for-risk table (§IV-A)"
    )
    confirmation.add_argument("--risk", type=float, default=0.001)
    confirmation.set_defaults(func=_cmd_confirmation)

    sub.add_parser("growth", help="ledger size snapshot (§V)").set_defaults(
        func=_cmd_growth
    )

    faults = sub.add_parser(
        "faults", help="degraded-network gossip run (partition + churn)"
    )
    faults.add_argument("--nodes", type=int, default=12)
    faults.add_argument("--rate", type=float, default=0.5,
                        help="broadcast rate (messages/s)")
    faults.add_argument("--duration", type=float, default=120.0,
                        help="workload horizon (simulated s)")
    faults.add_argument("--partition-at", type=float, default=30.0)
    faults.add_argument("--heal-after", type=float, default=30.0)
    faults.add_argument("--churn-nodes", type=int, default=2,
                        help="nodes subjected to crash/restart churn")
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument("--trace-out", default=None,
                        help="dump the structured trace as JSONL")
    faults.set_defaults(func=_cmd_faults)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing with in-loop invariant audits",
        parents=[_selection_parent(
            paradigm_default="both", profile_default="baseline",
            profile_help="scenario family: baseline, conflict, churn, "
                         "adversarial, seeded-violation, soak, byzantine, "
                         "byzantine-violation",
        )],
    )
    fuzz.add_argument("--seeds", type=int, default=10,
                      help="number of seeds in the campaign")
    fuzz.add_argument("--seed-start", type=int, default=0,
                      help="first seed (campaign covers start..start+seeds-1)")
    fuzz.add_argument("--audit-interval", type=float, default=None,
                      help="in-loop audit cadence (simulated s)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="minimize failing schedules before reporting")
    fuzz.add_argument("--check-determinism", action="store_true",
                      help="replay every seed twice; fail on fingerprint "
                           "divergence")
    fuzz.add_argument("--artifact-dir", default=None,
                      help="write failing-seed JSON artifacts here")
    fuzz.add_argument("--topology-scale", type=int, default=None,
                      metavar="N",
                      help="total node population per deployment; the "
                           "surplus beyond the replicas rides the "
                           "aggregate plane")
    fuzz.set_defaults(func=_cmd_fuzz)

    soak = sub.add_parser(
        "soak", help="sustained open-loop load with live pruning vs an "
                     "unpruned control",
        parents=[_selection_parent(
            paradigm_default="blockchain",
            profile_help="borrow deployment knobs from a named fuzz "
                         "profile (e.g. soak)",
        )],
    )
    soak.add_argument("--duration", type=float, default=600.0,
                      help="offered-traffic horizon (simulated s)")
    soak.add_argument("--rate", type=float, default=1.0,
                      help="offered load (tx/s, Poisson arrivals)")
    soak.add_argument("--accounts", type=int, default=10)
    soak.add_argument("--prune-interval", type=float, default=60.0,
                      help="live pruning cadence (simulated s)")
    soak.add_argument("--keep-depth", type=int, default=8,
                      help="blocks kept below the tip when pruning")
    soak.add_argument("--mempool-cap", type=int, default=400,
                      help="mempool admission cap (blockchain only)")
    soak.add_argument("--topology-scale", type=int, default=None,
                      metavar="N",
                      help="total node population; surplus beyond the "
                           "replicas rides the aggregate plane")
    soak.add_argument("--seed", type=int, default=0)
    soak.set_defaults(func=_cmd_soak)

    report = sub.add_parser("report", help="generate a markdown results report")
    report.add_argument("--output", "-o", default=None,
                        help="write to a file instead of stdout")
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", help="run one experiment once via its uniform run() API"
    )
    bench.add_argument("experiment_id", help="registry id, e.g. E15")
    bench.add_argument("--param", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="override a default parameter (repeatable)")
    bench.add_argument("--topology-scale", type=int, default=None,
                       metavar="N",
                       help="total node population for scale-aware "
                            "benches (sets the total_nodes param)")
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(func=_cmd_bench)

    sweep = sub.add_parser(
        "sweep", help="parameter-grid fan-out across worker processes",
        parents=[_selection_parent(
            profile_help="not applicable to sweep (accepted for uniform "
                         "spelling; rejected at runtime)",
        )],
    )
    sweep.add_argument("--experiment", "-e", action="append", default=[],
                       help="experiment id (repeatable)")
    sweep.add_argument("--all", action="store_true",
                       help="sweep every registered experiment")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="KEY=V1[,V2,...]",
                       help="grid axis: comma-separated values (repeatable)")
    sweep.add_argument("--topology-scale", default=None,
                       metavar="N1[,N2,...]",
                       help="total-node-population grid axis for "
                            "scale-aware benches (total_nodes param)")
    sweep.add_argument("--seeds", default=None,
                       help="comma-separated seed list (default: 0..trials-1)")
    sweep.add_argument("--trials", type=int, default=4,
                       help="number of seeds when --seeds is not given")
    sweep.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes (default: cpu count)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-trial timeout in seconds")
    sweep.add_argument("--retries", type=int, default=1,
                       help="retries for crashed workers")
    sweep.add_argument("--out-dir", default="results",
                       help="where BENCH_<id>.json files land")
    sweep.add_argument("--cache-dir", default=None,
                       help="result cache root (default: <out-dir>/cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed result cache")
    sweep.add_argument("--trace-dir", default=None,
                       help="write per-trial JSONL traces here (benches that "
                            "support capture)")
    sweep.set_defaults(func=_cmd_sweep)

    perf = sub.add_parser(
        "perf", help="hot-path microbenchmark suite -> BENCH_PERF.json",
        parents=[_selection_parent(
            profile_help="not applicable to perf (accepted for uniform "
                         "spelling; rejected at runtime)",
        )],
    )
    perf.add_argument("bench", nargs="*",
                      help="bench names (default: the whole suite)")
    perf.add_argument("--scale", type=float, default=1.0,
                      help="workload multiplier (0.1 for a quick smoke run)")
    perf.add_argument("--output", "-o", default="BENCH_PERF.json",
                      help="report path ('' to skip writing)")
    perf.add_argument("--reference",
                      default="benchmarks/perf/baseline_unoptimized.json",
                      help="prior report to compute speedups against "
                           "(skipped when missing)")
    perf.add_argument("--check", default=None, metavar="BASELINE",
                      help="fail (exit 1) if any bench regresses more than "
                           "--tolerance vs this committed report")
    perf.add_argument("--tolerance", type=float, default=0.30,
                      help="allowed calibration-normalized slowdown for "
                           "--check (default 0.30)")
    perf.set_defaults(func=_cmd_perf)

    profile = sub.add_parser(
        "profile", help="run one microbenchmark under cProfile"
    )
    profile.add_argument("bench", help="bench name (see `repro perf`)")
    profile.add_argument("--scale", type=float, default=1.0)
    profile.add_argument("--top", type=int, default=25,
                         help="number of hotspot rows to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "calls"))
    profile.set_defaults(func=_cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
