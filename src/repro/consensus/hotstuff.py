"""A HotStuff-style quorum-certificate BFT engine.

Two-phase chained commit over a rotating leader (leader of view ``v`` is
``v mod n``): the leader proposes a block extending its highest known
quorum certificate, replicas send *prepare* votes back to the leader,
a prepare QC locks the block and solicits *commit* votes, and a commit
QC finalizes the block plus every uncommitted ancestor.  A view that
makes no progress times out locally; the replica broadcasts a NEW_VIEW
carrying its high QC and moves on, so a crashed or silent leader costs
one timeout, not liveness (the liveness-after-timeout invariant the
fuzzer enforces).

Votes and certificates are *simulated-crypto*: a vote is a claim carried
in a message, not a verified signature, so Byzantine behaviour is
modelled behaviourally (``is_byzantine`` + a behaviour tag) rather than
cryptographically.  The safety argument is the classical one: with
``quorum = n - f`` and ``f < n/3``, two quorums intersect in
``n - 2f > f`` replicas, at least one of which is honest and votes once
per view/phase — so conflicting blocks cannot both gain certificates.
The seeded-violation fuzz profile demonstrates the converse at
``f >= n/3`` by over-riding ``f`` (quorum shrinks) and letting colluding
equivocators certify two siblings.

The engine is a :class:`~repro.protocol.interfaces.ConsensusEngine`:
proposals flow through the shared transport/intake pipeline (a proposal
whose parent has not arrived parks under the parent id), while votes,
certificates and view-change messages are consensus *control* traffic
handled directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.common.types import Hash
from repro.net.message import Message
from repro.protocol import DEFAULT_INTAKE_CAPACITY, ConsensusEngine, ProtocolNode

MSG_BFT_PROPOSAL = "bft_proposal"
MSG_BFT_VOTE = "bft_vote"
MSG_BFT_QC = "bft_qc"
MSG_BFT_NEW_VIEW = "bft_new_view"
MSG_BFT_TX = "bft_tx"

PHASE_PREPARE = "prepare"
PHASE_COMMIT = "commit"

#: Byzantine behaviour families understood by :class:`BftNode`.
BYZ_EQUIVOCATE = "equivocate"  # conflicting proposals + double votes
BYZ_WITHHOLD = "withhold"      # silent leader, withheld votes

_PAYMENT_SIZE_BYTES = 64
_VOTE_SIZE_BYTES = 80
_QC_BASE_SIZE_BYTES = 48
_BLOCK_BASE_SIZE_BYTES = 120


def default_f(validator_count: int) -> int:
    """Largest tolerable fault count: f = floor((n - 1) / 3)."""
    return max(0, (validator_count - 1) // 3)


def _digest(*parts: bytes) -> Hash:
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return Hash(h.digest())


@dataclass(frozen=True)
class BftPayment:
    """A replicated-state-machine command: move ``amount`` between
    account indices.  Identified by a caller-supplied hash."""

    payment_id: Hash
    sender: int
    recipient: int
    amount: int

    @property
    def size_bytes(self) -> int:
        return _PAYMENT_SIZE_BYTES


@dataclass(frozen=True)
class QuorumCert:
    """``len(voters)`` replicas certified ``block_id`` at ``(view, phase)``."""

    block_id: Hash
    view: int
    phase: str
    voters: FrozenSet[int]

    @property
    def size_bytes(self) -> int:
        return _QC_BASE_SIZE_BYTES + 8 * len(self.voters)

    def identity(self) -> bytes:
        voters = ",".join(str(v) for v in sorted(self.voters))
        return (f"qc:{self.block_id.hex}:{self.view}:{self.phase}:"
                f"{voters}").encode()


@dataclass(frozen=True)
class Vote:
    """One replica's (claimed) signature over a block at a phase."""

    block_id: Hash
    view: int
    phase: str
    voter: int


@dataclass(frozen=True)
class NewView:
    """Timeout message: the sender enters ``view`` carrying its high QC."""

    view: int
    high_qc: QuorumCert
    sender: int


@dataclass(frozen=True)
class BftBlock:
    """A proposal: payload batch + the QC justifying its extension.

    ``marker`` disambiguates equivocating siblings — an adversarial
    leader mints two blocks for one view that differ only here, which is
    exactly the "two conflicting blocks in one view" the safety
    invariant is about.
    """

    view: int
    parent: Hash
    proposer: int
    payments: Tuple[BftPayment, ...]
    justify: Optional[QuorumCert]
    marker: int = 0

    @property
    def block_id(self) -> Hash:
        cached = getattr(self, "_block_id", None)
        if cached is None:
            justify = b"" if self.justify is None else self.justify.identity()
            cached = _digest(
                f"blk:{self.view}:{self.proposer}:{self.marker}".encode(),
                bytes(self.parent),
                justify,
                *(bytes(p.payment_id) for p in self.payments),
            )
            object.__setattr__(self, "_block_id", cached)
        return cached

    @property
    def size_bytes(self) -> int:
        justify = 0 if self.justify is None else self.justify.size_bytes
        return (_BLOCK_BASE_SIZE_BYTES + justify
                + sum(p.size_bytes for p in self.payments))


def genesis_block() -> BftBlock:
    return BftBlock(view=0, parent=Hash.zero(), proposer=-1,
                    payments=(), justify=None)


@dataclass
class BftNodeStats:
    """Engine counters; surfaced as ``consensus.*`` layer counters."""

    proposals_made: int = 0
    votes_sent: int = 0
    votes_received: int = 0
    qcs_formed: int = 0
    view_changes: int = 0
    timeouts: int = 0
    commits: int = 0
    payments_applied: int = 0
    payments_rejected: int = 0
    equivocations_sent: int = 0
    equivocations_detected: int = 0
    double_votes_detected: int = 0
    votes_withheld: int = 0


class HotStuffEngine(ConsensusEngine):
    """Adapter between :class:`BftNode` and the shared ingest pipeline.

    Only *proposals* are stack artifacts (they have the parent-hash
    dependency structure the intake layer parks on); votes/QCs are
    control traffic the node handles directly.
    """

    paradigm = "bft"

    def __init__(self, node: "BftNode") -> None:
        self._node = node

    def artifact_key(self, block: BftBlock) -> Hash:
        return block.block_id

    def is_known(self, key: Hash) -> bool:
        return key in self._node.blocks

    def missing_dependency(self, block: BftBlock) -> Optional[Hash]:
        if block.parent not in self._node.blocks:
            return block.parent
        return None

    def integrate(self, block: BftBlock) -> bool:
        return self._node._attach_block(block)

    def on_applied(self, block: BftBlock) -> None:
        self._node._after_block(block)

    def counters(self) -> Dict[str, float]:
        s = self._node.stats
        return {
            "proposals_made": float(s.proposals_made),
            "votes_sent": float(s.votes_sent),
            "votes_received": float(s.votes_received),
            "qcs_formed": float(s.qcs_formed),
            "view_changes": float(s.view_changes),
            "timeouts": float(s.timeouts),
            "commits": float(s.commits),
            "equivocations_sent": float(s.equivocations_sent),
            "equivocations_detected": float(s.equivocations_detected),
            "double_votes_detected": float(s.double_votes_detected),
            "votes_withheld": float(s.votes_withheld),
        }


class BftNode(ProtocolNode):
    """One replica of the quorum-certificate state machine.

    Lifecycle: construct all replicas, attach them to a network, call
    :meth:`configure_validators` with the full ordered roster, fund the
    account set identically everywhere, then :meth:`start` each replica
    (arms view 1's timeout).  Traffic then drives everything: payments
    gossip to the whole roster, the current leader batches them into a
    proposal, and commit certificates advance every replica's identical
    committed sequence.
    """

    def __init__(
        self,
        node_id: str,
        *,
        view_timeout_s: float = 4.0,
        propose_delay_s: float = 0.25,
        max_batch: int = 16,
        quorum_f_override: Optional[int] = None,
        is_byzantine: bool = False,
        byzantine_behavior: Optional[str] = None,
        byz_rng: Optional[Random] = None,
        intake_capacity: Optional[int] = DEFAULT_INTAKE_CAPACITY,
    ) -> None:
        super().__init__(node_id, intake_capacity=intake_capacity)
        self.view_timeout_s = view_timeout_s
        self.propose_delay_s = propose_delay_s
        self.max_batch = max_batch
        self.quorum_f_override = quorum_f_override
        self.is_byzantine = is_byzantine
        self.byzantine_behavior = byzantine_behavior if is_byzantine else None
        self.byz_rng = byz_rng
        #: Fellow adversary node ids (a single adversary controls all of
        #: its replicas, the standard BFT threat model); used to share
        #: equivocating material.
        self.colluders: Tuple[str, ...] = ()

        self.stats = BftNodeStats()
        self.consensus = HotStuffEngine(self)

        genesis = genesis_block()
        self.genesis_id = genesis.block_id
        self.blocks: Dict[Hash, BftBlock] = {self.genesis_id: genesis}
        seed_qc = QuorumCert(self.genesis_id, 0, PHASE_PREPARE, frozenset())
        self.high_qc = seed_qc
        self.locked_qc = seed_qc
        self.committed: List[Hash] = [self.genesis_id]
        self._committed_set: Set[Hash] = {self.genesis_id}
        self.balances: Dict[int, int] = {}
        self.committed_payments: Dict[Hash, float] = {}
        self.pending: Dict[Hash, BftPayment] = {}

        self.validator_ids: Tuple[str, ...] = ()
        self.index = -1
        self.current_view = 0
        self._view_epoch = 0
        self._started = False
        self._proposed_view = -1
        self._propose_pending = False
        self._votes: Dict[Tuple[Hash, str], Set[int]] = {}
        self._vote_seen: Dict[Tuple[int, str, int], Hash] = {}
        self._voted: Set[Tuple[int, str]] = set()
        self._qc_done: Set[Tuple[Hash, str]] = set()
        self._pending_qcs: Dict[Hash, List[QuorumCert]] = {}
        self._proposals_seen: Dict[int, Dict[int, Hash]] = {}

    # ----------------------------------------------------------------- setup

    def configure_validators(self, validator_ids: Sequence[str]) -> None:
        """Install the shared ordered roster; derives this replica's index."""
        self.validator_ids = tuple(validator_ids)
        self.index = self.validator_ids.index(self.node_id)

    @property
    def validator_count(self) -> int:
        return len(self.validator_ids)

    @property
    def f(self) -> int:
        if self.quorum_f_override is not None:
            return self.quorum_f_override
        return default_f(self.validator_count)

    @property
    def quorum(self) -> int:
        """Adjustable quorum threshold n − f."""
        return max(1, self.validator_count - self.f)

    def fund(self, balances: Dict[int, int]) -> None:
        """Install the (identical-everywhere) genesis account balances."""
        self.balances = dict(balances)

    def start(self) -> None:
        """Enter view 1 and arm its timeout."""
        if self.network is None:
            raise RuntimeError("attach the node to a network first")
        if self._started:
            return
        self._started = True
        self._enter_view(1)

    def leader_of(self, view: int) -> int:
        return view % self.validator_count

    @property
    def committed_height(self) -> int:
        """Committed blocks beyond genesis."""
        return len(self.committed) - 1

    # ------------------------------------------------------------ view logic

    def _enter_view(self, view: int) -> None:
        if view <= self.current_view and self._started and view != 1:
            return
        self.current_view = view
        self._view_epoch += 1
        self._propose_pending = False
        epoch = self._view_epoch
        sim = self.network.simulator
        sim.schedule(self.view_timeout_s, lambda: self._on_timeout(epoch),
                     label=f"bft:timeout:{self.node_id}")
        self._maybe_propose()

    def _on_timeout(self, epoch: int) -> None:
        """The view made no progress on this replica's clock: move on.

        Timeouts fire even while crashed (the local clock keeps running),
        which keeps view numbers loosely synchronized across restarts;
        only the NEW_VIEW broadcast needs the node online.
        """
        if epoch != self._view_epoch:
            return
        self.stats.timeouts += 1
        self.stats.view_changes += 1
        next_view = self.current_view + 1
        if self.online and self.validator_ids:
            nv = NewView(view=next_view, high_qc=self.high_qc,
                         sender=self.index)
            self.broadcast(Message(
                kind=MSG_BFT_NEW_VIEW, payload=nv,
                size_bytes=16 + nv.high_qc.size_bytes,
                dedup_key=_digest(
                    f"nv:{next_view}:{self.index}".encode()),
            ))
        self._enter_view(next_view)

    # -------------------------------------------------------------- proposing

    def _maybe_propose(self) -> None:
        """Schedule a proposal if this replica leads the current view,
        has not proposed in it, and has payload to commit."""
        if not self._started or self.validator_count == 0:
            return
        if self.leader_of(self.current_view) != self.index:
            return
        if self._proposed_view >= self.current_view or self._propose_pending:
            return
        if self.byzantine_behavior == BYZ_WITHHOLD:
            # Silent leader: its views die by timeout (the
            # liveness-after-timeout path).  The family's rng stream can
            # let it participate intermittently.
            if self.byz_rng is None or self.byz_rng.random() < 0.9:
                return
        if not self._available_payments():
            return
        self._propose_pending = True
        epoch = self._view_epoch
        self.network.simulator.schedule(
            self.propose_delay_s, lambda: self._propose(epoch),
            label=f"bft:propose:{self.node_id}")

    def _available_payments(self) -> List[BftPayment]:
        ready = [p for pid, p in self.pending.items()
                 if pid not in self.committed_payments]
        ready.sort(key=lambda p: bytes(p.payment_id))
        return ready[: self.max_batch]

    def _propose(self, epoch: int) -> None:
        if epoch != self._view_epoch or not self.online:
            return
        self._propose_pending = False
        view = self.current_view
        if self.leader_of(view) != self.index or self._proposed_view >= view:
            return
        payments = self._available_payments()
        if not payments:
            return
        justify = self.high_qc
        parent = justify.block_id
        self._proposed_view = view
        self.stats.proposals_made += 1
        if self.byzantine_behavior == BYZ_EQUIVOCATE:
            self._propose_equivocating(view, parent, justify, payments)
            return
        block = BftBlock(view=view, parent=parent, proposer=self.index,
                         payments=tuple(payments), justify=justify)
        self.ingest(block)
        self.transport.publish(block, self._proposal_message(block))

    def _propose_equivocating(self, view: int, parent: Hash,
                              justify: QuorumCert,
                              payments: List[BftPayment]) -> None:
        """Mint two conflicting sibling proposals for one view.

        Both are flooded (every honest replica eventually detects the
        equivocation); the family's rng stream decides which sibling is
        announced first, so the victims' first-vote split varies by
        seed.
        """
        variants = [
            BftBlock(view=view, parent=parent, proposer=self.index,
                     payments=tuple(payments), justify=justify, marker=0),
            BftBlock(view=view, parent=parent, proposer=self.index,
                     payments=tuple(payments), justify=justify, marker=1),
        ]
        if self.byz_rng is not None and self.byz_rng.random() < 0.5:
            variants.reverse()
        self.stats.equivocations_sent += 1
        for block in variants:
            self.ingest(block)
            self.transport.publish(block, self._proposal_message(block))

    def _proposal_message(self, block: BftBlock) -> Message:
        return Message(kind=MSG_BFT_PROPOSAL, payload=block,
                       size_bytes=block.size_bytes,
                       dedup_key=block.block_id)

    # ------------------------------------------------- engine callbacks

    def _attach_block(self, block: BftBlock) -> bool:
        parent = self.blocks.get(block.parent)
        if parent is None:
            return False
        if block.view <= parent.view:
            return False
        if self.validator_count and block.proposer != self.leader_of(block.view):
            return False
        self.blocks[block.block_id] = block
        return True

    def _after_block(self, block: BftBlock) -> None:
        for qc in self._pending_qcs.pop(block.block_id, ()):
            self._process_qc(qc)
        if block.justify is not None:
            self._process_qc(block.justify)
        seen = self._proposals_seen.setdefault(block.view, {})
        first = seen.get(block.proposer)
        if first is None:
            seen[block.proposer] = block.block_id
        elif first != block.block_id:
            self.stats.equivocations_detected += 1
        if block.view > self.current_view:
            # Catch up: a certified chain is ahead of our pacemaker.
            self._enter_view(block.view)
        self._maybe_vote(block, PHASE_PREPARE)

    # ----------------------------------------------------------------- votes

    def _safe_to_vote(self, block: BftBlock) -> bool:
        """HotStuff safety rule: the proposal's justification outranks
        our lock, or the proposal extends the locked block."""
        justify = block.justify
        if justify is None:
            return block.parent == self.genesis_id
        if justify.view > self.locked_qc.view:
            return True
        return self._extends(block, self.locked_qc.block_id)

    def _extends(self, block: BftBlock, ancestor_id: Hash) -> bool:
        cursor: Optional[BftBlock] = block
        while cursor is not None:
            if cursor.block_id == ancestor_id:
                return True
            cursor = self.blocks.get(cursor.parent)
        return False

    def _maybe_vote(self, block: BftBlock, phase: str) -> None:
        if block.view != self.current_view:
            return
        if self.byzantine_behavior == BYZ_WITHHOLD:
            if self.byz_rng is None or self.byz_rng.random() < 0.9:
                self.stats.votes_withheld += 1
                return
        double_voter = self.byzantine_behavior == BYZ_EQUIVOCATE
        key = (block.view, phase)
        if not double_voter:
            if key in self._voted:
                return
            if phase == PHASE_PREPARE and not self._safe_to_vote(block):
                return
        self._voted.add(key)
        vote = Vote(block_id=block.block_id, view=block.view, phase=phase,
                    voter=self.index)
        self.stats.votes_sent += 1
        leader_id = self.validator_ids[block.proposer]
        if leader_id == self.node_id:
            self._receive_vote(vote)
            return
        self.send_reliable(leader_id, Message(
            kind=MSG_BFT_VOTE, payload=vote, size_bytes=_VOTE_SIZE_BYTES,
            dedup_key=_digest(
                f"vote:{phase}:{block.view}:{self.index}".encode(),
                bytes(block.block_id)),
        ))

    def _receive_vote(self, vote: Vote) -> None:
        self.stats.votes_received += 1
        if vote.block_id not in self.blocks:
            return
        seen_key = (vote.view, vote.phase, vote.voter)
        first = self._vote_seen.get(seen_key)
        if first is None:
            self._vote_seen[seen_key] = vote.block_id
        elif first != vote.block_id:
            self.stats.double_votes_detected += 1
        qc_key = (vote.block_id, vote.phase)
        if qc_key in self._qc_done:
            return
        voters = self._votes.setdefault(qc_key, set())
        voters.add(vote.voter)
        if len(voters) < self.quorum:
            return
        self._qc_done.add(qc_key)
        qc = QuorumCert(block_id=vote.block_id, view=vote.view,
                        phase=vote.phase, voters=frozenset(voters))
        self.stats.qcs_formed += 1
        self._distribute_qc(qc)
        self._process_qc(qc)

    def _distribute_qc(self, qc: QuorumCert) -> None:
        message = Message(
            kind=MSG_BFT_QC, payload=qc, size_bytes=qc.size_bytes,
            dedup_key=_digest(qc.identity()),
        )
        if (self.byzantine_behavior == BYZ_EQUIVOCATE
                and qc.phase == PHASE_COMMIT):
            # The classical split-finality attack: show each half of the
            # roster a commit certificate for a different sibling.  Only
            # dangerous when f >= n/3 lets both certificates form.
            block = self.blocks.get(qc.block_id)
            marker = block.marker if block is not None else 0
            peers = [vid for vid in self.validator_ids
                     if vid != self.node_id]
            targets = set(peers[marker % 2:: 2]) | set(self.colluders)
            for peer_id in sorted(targets):
                if peer_id != self.node_id:
                    self.send_reliable(peer_id, message)
            return
        self.transport.publish(qc, message)

    # ------------------------------------------------------------------- QCs

    def _process_qc(self, qc: QuorumCert) -> None:
        block = self.blocks.get(qc.block_id)
        if block is None:
            pending = self._pending_qcs.setdefault(qc.block_id, [])
            if qc not in pending:
                pending.append(qc)
            return
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        if qc.phase == PHASE_PREPARE:
            if qc.view > self.locked_qc.view:
                self.locked_qc = qc
            self._maybe_vote(block, PHASE_COMMIT)
        elif qc.phase == PHASE_COMMIT:
            self._commit(block)
            if qc.view >= self.current_view:
                self._enter_view(qc.view + 1)

    def _commit(self, block: BftBlock) -> None:
        chain: List[BftBlock] = []
        cursor: Optional[BftBlock] = block
        while cursor is not None and cursor.block_id not in self._committed_set:
            chain.append(cursor)
            cursor = self.blocks.get(cursor.parent)
        for blk in reversed(chain):
            self._committed_set.add(blk.block_id)
            self.committed.append(blk.block_id)
            self.stats.commits += 1
            self._apply_payments(blk)
        if chain:
            self._maybe_propose()

    def _apply_payments(self, block: BftBlock) -> None:
        now = self.network.simulator.now if self.network is not None else 0.0
        for payment in block.payments:
            self.pending.pop(payment.payment_id, None)
            if payment.payment_id in self.committed_payments:
                continue
            if self.balances.get(payment.sender, 0) >= payment.amount >= 0:
                self.balances[payment.sender] -= payment.amount
                self.balances[payment.recipient] = (
                    self.balances.get(payment.recipient, 0) + payment.amount)
                self.stats.payments_applied += 1
            else:
                self.stats.payments_rejected += 1
            self.committed_payments[payment.payment_id] = now

    # -------------------------------------------------------------- payments

    def submit_payment(self, payment: BftPayment) -> bool:
        """Client entry point: gossip a command to the roster."""
        if not self.online:
            return False
        if payment.payment_id in self.committed_payments:
            return False
        self.pending[payment.payment_id] = payment
        self.broadcast(Message(
            kind=MSG_BFT_TX, payload=payment,
            size_bytes=payment.size_bytes,
            dedup_key=payment.payment_id,
        ))
        self._maybe_propose()
        return True

    def _on_payment(self, payment: BftPayment) -> None:
        if payment.payment_id in self.committed_payments:
            return
        if payment.payment_id not in self.pending:
            self.pending[payment.payment_id] = payment
        self._maybe_propose()

    # ---------------------------------------------------------------- gossip

    def handle_message(self, sender_id: str, message: Message) -> None:
        kind = message.kind
        if kind == MSG_BFT_PROPOSAL:
            self.ingest_quietly(message.payload)
        elif kind == MSG_BFT_VOTE:
            self._receive_vote(message.payload)
        elif kind == MSG_BFT_QC:
            self._process_qc(message.payload)
        elif kind == MSG_BFT_NEW_VIEW:
            self._process_qc(message.payload.high_qc)
        elif kind == MSG_BFT_TX:
            self._on_payment(message.payload)

    def retains_artifact(self, artifact: object) -> bool:
        if isinstance(artifact, BftBlock):
            return artifact.block_id in self.blocks
        return True

    # --------------------------------------------------------------- queries

    def state_lines(self) -> List[str]:
        """Canonical digest material: committed order + balances."""
        lines = [f"committed:{b.hex}" for b in self.committed]
        lines.extend(f"balance:{account}:{amount}"
                     for account, amount in sorted(self.balances.items()))
        return lines
