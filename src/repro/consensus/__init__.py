"""Quorum-certificate BFT consensus on the shared protocol stack.

The source paper contrasts Nakamoto-style probabilistic finality
(Section III) with the DAG paradigms' per-account / tangle confirmation
(Section IV); both SoKs in PAPERS.md treat committee-based BFT finality
as the third axis.  This package adds that contender: a HotStuff-style
rotating-leader engine with explicit quorum certificates, riding the
same TransportLayer / IntakeLayer / ProtocolNode pipeline as the other
four node types, so it drops into the parity matrix, the fuzzer and the
bench registry unchanged.
"""

from repro.consensus.hotstuff import (
    BYZ_EQUIVOCATE,
    BYZ_WITHHOLD,
    BftBlock,
    BftNode,
    BftPayment,
    HotStuffEngine,
    QuorumCert,
    Vote,
    default_f,
)

__all__ = [
    "BYZ_EQUIVOCATE",
    "BYZ_WITHHOLD",
    "BftBlock",
    "BftNode",
    "BftPayment",
    "HotStuffEngine",
    "QuorumCert",
    "Vote",
    "default_f",
]
