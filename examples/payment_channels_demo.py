#!/usr/bin/env python3
"""Payment channels end to end (paper §VI-A, Lightning/Raiden).

Opens a small hub-and-spoke channel network, streams thousands of
micro-payments off chain (including multi-hop routed ones), shows that a
stale-state cheat at close is defeated, and settles everything with two
on-chain transactions per channel.

Run:  python examples/payment_channels_demo.py
"""

import random

from repro.crypto.keys import KeyPair
from repro.metrics.tables import render_table
from repro.scaling.channels import Channel, ChannelNetwork


def fraud_demo() -> None:
    rng = random.Random(0)
    alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
    channel = Channel(alice, bob, 1_000, 1_000)
    stale = channel.pay(alice.address, 100)  # alice: 900, seq 1
    channel.pay(alice.address, 700)          # alice: 200, seq 2
    final = channel.close(submitted=stale)   # alice tries the old state
    print("stale-close attempt: alice submitted seq", stale.sequence,
          "-> settled balances", final,
          "(the newer doubly-signed state won)\n")


def main() -> None:
    fraud_demo()

    rng = random.Random(7)
    network = ChannelNetwork()
    hub = KeyPair.generate(rng)
    network.register(hub)
    clients = [KeyPair.generate(rng) for _ in range(8)]
    for client in clients:
        network.register(client)
        network.open_channel(client.address, hub.address, 100_000, 100_000)

    payments = 5_000
    for _ in range(payments):
        sender, recipient = rng.sample(clients, 2)
        network.send(sender.address, recipient.address, rng.randint(1, 25))

    settled = network.close_all()
    rows = [
        ["channels", 8],
        ["payments routed (2 hops each)", network.payments_routed],
        ["off-chain state updates", network.total_off_chain_txs()],
        ["on-chain transactions total", network.total_on_chain_txs()],
        ["payments per on-chain tx",
         f"{network.payments_routed / network.total_on_chain_txs():.0f}"],
        ["deposits in == settled out",
         sum(settled.values()) == 8 * 200_000],
    ]
    print(render_table(["metric", "value"], rows,
                       title="Hub-and-spoke channel network"))
    print(
        "\n'The involved parties are able to run micro transactions at high\n"
        "volume and speed, avoiding the transaction cap of the network'\n"
        "(paper §VI-A) — the cap applies only to the 16 on-chain txs."
    )


if __name__ == "__main__":
    main()
