#!/usr/bin/env python3
"""Ledger size and pruning, all three remedies (paper §V).

Grows a UTXO chain, an account chain, and a block-lattice under similar
payment traffic, then applies each system's remedy: Bitcoin block-file
pruning, Ethereum fast sync with state-delta pruning, and Nano's prune-
to-heads — printing the before/after disk story.

Run:  python examples/ledger_pruning.py
"""

from repro.common.units import format_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.pow import MAX_TARGET
from repro.blockchain.block import assemble_block, build_genesis_block
from repro.blockchain.chain import ChainStore
from repro.blockchain.state import AccountState
from repro.blockchain.transaction import make_coinbase, sign_account_transaction
from repro.dag.blocks import make_open, make_receive, make_send
from repro.dag.lattice import Lattice
from repro.dag.params import NanoParams
from repro.metrics.tables import render_table
from repro.storage.dag_pruning import footprint_by_type, prune_lattice
from repro.storage.fast_sync import fast_sync, prune_state_deltas
from repro.storage.pruning import prune_chain


def bitcoin_story() -> list:
    key = KeyPair.from_seed(b"\x11" * 32)
    store = ChainStore(build_genesis_block(key.address, 10**9))
    parent = store.genesis
    for height in range(1, 401):
        body = [make_coinbase(key.address, 50, nonce=height * 10 + i)
                for i in range(6)]
        block = assemble_block(parent.header, body, float(height), MAX_TARGET)
        store.add_block(block)
        parent = block
    result = prune_chain(store, keep_depth=50)
    return ["bitcoin (prune mode)", format_bytes(result.size_before),
            format_bytes(result.size_after), f"{result.fraction_freed:.0%}"]


def ethereum_story() -> list:
    alice = KeyPair.from_seed(b"\x12" * 32)
    bob = KeyPair.from_seed(b"\x13" * 32)
    miner = KeyPair.from_seed(b"\x14" * 32)
    store = ChainStore(build_genesis_block(miner.address, 1))
    state = AccountState()
    state.credit(alice.address, 10**15)
    receipts_by_block = [[]]
    parent = store.genesis
    for height in range(1, 201):
        tx = sign_account_transaction(alice, height - 1, bob.address, 100, gas_price=1)
        receipts, _ = state.apply_block_transactions([tx], miner.address, 0)
        block = assemble_block(parent.header, [tx], float(height), MAX_TARGET,
                               state_root=state.root_hash)
        store.add_block(block)
        receipts_by_block.append(receipts)
        parent = block
    before = store.total_size_bytes() + state.store_size_bytes()
    sync = fast_sync(store, state, receipts_by_block, pivot_offset=64)
    prune_state_deltas(state)
    after = store.total_size_bytes() + state.store_size_bytes()
    print(f"  ethereum fast sync: replay {sync.fast_sync_txs_replayed} txs "
          f"instead of {sync.full_sync_txs_replayed}; snapshot "
          f"{format_bytes(sync.state_snapshot_bytes)}")
    return ["ethereum (fast sync)", format_bytes(before),
            format_bytes(after), f"{1 - after / before:.0%}"]


def nano_story() -> list:
    import random

    rng = random.Random(0)
    lattice = Lattice(NanoParams(work_difficulty=1))
    genesis_key = KeyPair.generate(rng)
    lattice.create_genesis(genesis_key, 10**15)
    users = []
    for _ in range(15):
        user = KeyPair.generate(rng)
        send = make_send(genesis_key, lattice.chain(genesis_key.address).head,
                         user.address, 10**9, work_difficulty=1)
        lattice.process(send)
        lattice.process(make_open(user, send.block_hash, 10**9,
                                  representative=genesis_key.address,
                                  work_difficulty=1))
        users.append(user)
    for _ in range(300):
        a, b = rng.sample(users, 2)
        amount = rng.randint(1, 500)
        send = make_send(a, lattice.chain(a.address).head, b.address, amount,
                         work_difficulty=1)
        lattice.process(send)
        lattice.process(make_receive(b, lattice.chain(b.address).head,
                                     send.block_hash, amount, work_difficulty=1))
    footprints = footprint_by_type(lattice)
    print("  nano node types: historical "
          f"{format_bytes(footprints['historical'])}, current "
          f"{format_bytes(footprints['current'])}, light 0 B")
    before = lattice.serialized_size()
    result = prune_lattice(lattice)
    return ["nano (prune to heads)", format_bytes(before),
            format_bytes(result.bytes_after), f"{result.fraction_freed:.0%}"]


def main() -> None:
    print("Growing three ledgers and applying each system's remedy...\n")
    rows = [bitcoin_story(), ethereum_story(), nano_story()]
    print()
    print(render_table(
        ["system", "before", "after", "freed"], rows,
        title="§V ledger pruning, three ways",
    ))
    print(
        "\nNano's balance-carrying blocks make almost all history\n"
        "discardable; Bitcoin keeps headers + a relay window; Ethereum\n"
        "replaces replay with one recent state snapshot."
    )


if __name__ == "__main__":
    main()
