#!/usr/bin/env python3
"""Smart contracts and the gas model (paper §VI-A).

"Ethereum has a significant benefit compared to Bitcoin since it supports
smart contracts, which expands its potential to become a platform rather
than only a cryptocurrency."  This demo deploys two contracts on the
account-state substrate, drives them through transactions, and shows the
gas mechanics that make block capacity a computation budget: metering,
out-of-gas, refunds, and reverts that cost gas but move no value.

Run:  python examples/smart_contracts.py
"""

import random

from repro.common.types import Address
from repro.crypto.keys import KeyPair
from repro.metrics.tables import render_table
from repro.blockchain.state import AccountState, contract_address, encode_call_args
from repro.blockchain.transaction import sign_account_transaction
from repro.blockchain.vm import counter_contract, vault_contract


def send(state, sender, recipient, miner, value=0, data=b"", gas_limit=200_000):
    tx = sign_account_transaction(
        sender, nonce=state.nonce(sender.address), recipient=recipient,
        value=value, gas_limit=gas_limit, gas_price=1, data=data,
    )
    return tx, state.apply_transaction(tx, miner.address)


def main() -> None:
    rng = random.Random(0)
    state = AccountState()
    alice = KeyPair.generate(rng)
    miner = KeyPair.generate(rng)
    state.credit(alice.address, 10**12)

    rows = []

    # Deploy the counter (to == zero address ⇒ contract creation).
    tx, receipt = send(state, alice, Address.zero(), miner, data=counter_contract())
    counter = contract_address(alice.address, tx.nonce)
    rows.append(["deploy counter", receipt.success, receipt.gas_used])

    # Three calls: storage slot 0 counts up; each costs real gas.
    for i in range(3):
        _, receipt = send(state, alice, counter, miner,
                          data=encode_call_args(10 * i))
        rows.append([f"counter call #{i + 1} (+{10 * i}+1)",
                     receipt.success, receipt.gas_used])
    rows.append(["counter storage slot 0", state.storage(counter, 0), "-"])

    # Deploy the vault and deposit into it.
    tx, receipt = send(state, alice, Address.zero(), miner, data=vault_contract())
    vault = contract_address(alice.address, tx.nonce)
    rows.append(["deploy vault", receipt.success, receipt.gas_used])
    _, receipt = send(state, alice, vault, miner, value=5_000)
    rows.append(["vault deposit 5000", receipt.success, receipt.gas_used])

    # A zero-value call violates the vault's guard: REVERT. Gas is paid,
    # value and storage are untouched.
    before = state.balance(alice.address)
    _, receipt = send(state, alice, vault, miner, value=0)
    rows.append(["vault deposit 0 (reverts)", receipt.success, receipt.gas_used])
    rows.append(["alice paid only the gas",
                 state.balance(alice.address) == before - receipt.gas_used, "-"])

    # Out of gas: the whole allowance burns, nothing happens.
    _, receipt = send(state, alice, counter, miner, gas_limit=21_200)
    rows.append(["counter call, gas limit 21200 (OOG)",
                 receipt.success, receipt.gas_used])

    print(render_table(["action", "success", "gas used"], rows,
                       title="Contract lifecycle on the account-state substrate"))
    print(f"\nvault balance: {state.balance(vault)} "
          f"(slot 0 records {state.storage(vault, 0)})")
    print(f"miner earned {state.balance(miner.address)} in gas fees")
    print("total supply conserved:", state.total_supply() == 10**12)
    print("\nEvery unit of computation above was priced in gas — the unit a")
    print("gas-limited block budgets instead of bytes (paper §VI-A).")


if __name__ == "__main__":
    main()
