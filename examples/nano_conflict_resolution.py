#!/usr/bin/env python3
"""Open Representative Voting resolving a real double-spend (paper §III-B).

A user signs two conflicting sends from the same chain head and injects
them at opposite ends of the network.  Representatives detect the fork,
vote with their delegated weight, and every replica converges on the
same winner; the loser is rolled back and total supply is conserved.

Run:  python examples/nano_conflict_resolution.py
"""

from repro.dag.blocks import make_send
from repro.dag.bootstrap import build_nano_testbed, fund_accounts
from repro.net.link import LinkParams
from repro.net.message import Message


def main() -> None:
    tb = build_nano_testbed(
        node_count=8,
        representative_count=4,
        seed=99,
        link_params=LinkParams(latency_s=0.08, jitter_s=0.04),
    )
    users = fund_accounts(tb, 3, 1_000_000, settle_time=2.0)
    tb.simulator.run(until=tb.simulator.now + 5)
    attacker, victim_a, victim_b = users
    supply_before = tb.nodes[0].lattice.total_supply()

    wallet = tb.node_for(attacker.address)
    head = wallet.lattice.chain(attacker.address).head
    print("attacker balance:", wallet.balance(attacker.address))
    print("signing two conflicting sends from the same predecessor",
          head.block_hash.short(), "...")

    honest = wallet.send_payment(attacker.address, victim_a.address, 800_000)
    key = wallet.local_accounts[attacker.address]
    conflicting = make_send(key, head, victim_b.address, 800_000, work_difficulty=1)
    # Inject the conflicting block at the far side of the network.
    tb.nodes[-1].deliver(
        "attacker",
        Message(kind="nano_block", payload=conflicting,
                size_bytes=conflicting.size_bytes,
                dedup_key=conflicting.block_hash),
    )

    tb.simulator.run(until=tb.simulator.now + 20)

    forks_seen = sum(n.stats.forks_seen for n in tb.nodes)
    rollbacks = sum(n.stats.rollbacks for n in tb.nodes)
    print(f"\nforks detected across replicas: {forks_seen}")
    print(f"losing-branch blocks rolled back: {rollbacks}")

    survivors = set()
    for node in tb.nodes:
        chain = node.lattice.chain(attacker.address)
        for i, blk in enumerate(chain.blocks):
            if blk.block_hash == head.block_hash and i + 1 < len(chain.blocks):
                survivors.add(chain.blocks[i + 1].block_hash)
    assert len(survivors) == 1, "replicas disagree!"
    winner = survivors.pop()
    label = "honest" if winner == honest.block_hash else "conflicting"
    print(f"every replica adopted the same successor: {winner.short()} ({label})")

    print("victim A balance:",
          sorted({n.balance(victim_a.address) for n in tb.nodes}))
    print("victim B balance:",
          sorted({n.balance(victim_b.address) for n in tb.nodes}))
    print("total supply conserved:",
          all(n.lattice.total_supply() == supply_before for n in tb.nodes))
    print("\nExactly one of the two 800k sends exists on every replica —")
    print("'the winning transaction is the one that gained the most votes")
    print("with regards to the voters' weight' (paper §III-B).")


if __name__ == "__main__":
    main()
