#!/usr/bin/env python3
"""The IOTA-style tangle (paper footnote 1) — a third confirmation model.

Grows a tangle under MCMC tip selection and shows how a transaction's
confirmation confidence rises as later transactions approve it — the
structural analogue of blockchain depth and Nano's vote quorum — plus
the lazy-tip effect of aggressive (high-alpha) tip selection.

Run:  python examples/tangle_demo.py
"""

import random

from repro.crypto.keys import KeyPair
from repro.dag.tangle import Tangle, issue_transaction
from repro.metrics.tables import render_series, render_table


def main() -> None:
    rng = random.Random(7)
    tangle = Tangle(work_difficulty=1)
    key = KeyPair.generate(rng)
    tangle.create_genesis(key)

    # Track one early transaction's confidence as the tangle grows.
    target = None
    curve = []
    for i in range(80):
        trunk, branch = tangle.select_tips_mcmc(rng, alpha=0.05)
        tx = issue_transaction(key, trunk, branch, f"tx{i}".encode(), 1.0 + i)
        tangle.attach(tx)
        if i == 3:
            target = tx
        if target and i >= 3 and i % 8 == 3:
            curve.append(
                tangle.confirmation_confidence(
                    target.tx_hash, rng, samples=40, alpha=0.05
                )
            )

    print(render_series(curve, width=len(curve) * 4, height=6,
                        label="confidence of tx#3 as the tangle grows"))
    print()
    rows = [
        ["transactions", len(tangle)],
        ["current tips", len(tangle.tips())],
        ["target cumulative weight", tangle.cumulative_weight(target.tx_hash)],
        ["target confidence", f"{curve[-1]:.2f}"],
        ["ledger bytes", tangle.serialized_size()],
    ]
    print(render_table(["metric", "value"], rows, title="Tangle state"))

    # Lazy-tip demonstration: a transaction attached to the distant past
    # under greedy (high alpha) selection gets left behind.
    lazy = issue_transaction(
        key, tangle.genesis_hash, tangle.genesis_hash, b"latecomer", 999.0
    )
    tangle.attach(lazy)
    picks = [tangle.select_tips_mcmc(rng, alpha=1.0)[0] for _ in range(30)]
    print(f"\nhigh-alpha tip selection picked the lazy latecomer "
          f"{picks.count(lazy.tx_hash)}/30 times "
          f"(left-behind tips: {len(tangle.left_behind_tips())})")
    print("\nConfirmation here is *structural*: no leader (blockchain), no")
    print("votes (Nano) — just the weight of later transactions approving you.")


if __name__ == "__main__":
    main()
