#!/usr/bin/env python3
"""Double-spend races and the "wait for 6 confirmations" rule (paper §IV-A).

Plays Monte-Carlo races between an attacker's private chain and the honest
network, compares them with the Nakamoto/Rosenfeld closed forms, and prints
the confirmation depth needed for a 0.1% risk budget — the analysis behind
Bitcoin's 6-block and Ethereum's 5-11-block conventions.

Run:  python examples/double_spend_attack.py
"""

import random

from repro.confirmation.nakamoto import (
    attacker_success_probability,
    confirmations_for_confidence,
    rosenfeld_success_probability,
)
from repro.metrics.tables import render_table
from repro.workloads.attacks import DoubleSpendAttacker


def main() -> None:
    rng = random.Random(2018)

    rows = []
    for share in (0.10, 0.20, 0.30, 0.40):
        for depth in (1, 3, 6):
            attacker = DoubleSpendAttacker(share, depth, rng)
            empirical = attacker.success_rate(trials=2000)
            rows.append([
                f"{share:.0%}", depth,
                f"{empirical:.4f}",
                f"{rosenfeld_success_probability(share, depth):.4f}",
                f"{attacker_success_probability(share, depth):.4f}",
            ])
    print(render_table(
        ["attacker hash share", "confirmations", "simulated", "exact", "nakamoto"],
        rows,
        title="Double-spend success probability",
    ))

    print()
    depth_rows = [
        [f"{q:.0%}", confirmations_for_confidence(q, max_risk=0.001)]
        for q in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40)
    ]
    print(render_table(
        ["attacker share", "confirmations needed"],
        depth_rows,
        title="Depth for <0.1% reversal risk (the '6 confirmations' table)",
    ))

    print(
        "\nAgainst a majority attacker no depth is safe — the supermajority\n"
        "assumption of paper §III-A is load-bearing:",
        attacker_success_probability(0.51, 1000),
    )


if __name__ == "__main__":
    main()
