#!/usr/bin/env python3
"""Quickstart: run the same payment workload through both DLT paradigms.

Stands up a small PoW blockchain network (Bitcoin-like parameters, scaled
down so the demo finishes in seconds of wall time) and a Nano block-lattice
testbed, drives both with an identical Poisson payment workload, and prints
the paper's five-dimension comparison.

Run:  python examples/quickstart.py
"""

from dataclasses import replace

from repro import BlockchainLedger, DagLedger, compare_ledgers
from repro.blockchain.params import BITCOIN
from repro.workloads import PaymentWorkload


def main() -> None:
    # Scale Bitcoin's 600 s interval down to 30 s so the demo's simulated
    # hour stays cheap; the relative shapes are unchanged.
    params = replace(BITCOIN, target_block_interval_s=30.0, confirmation_depth=4)

    workload = PaymentWorkload(accounts=8, rate_tps=0.1, zipf_alpha=0.8, seed=42)
    events = workload.generate(duration_s=600.0)
    print(f"workload: {len(events)} payments over 600 simulated seconds\n")

    report = compare_ledgers(
        BlockchainLedger(params=params, node_count=4, seed=7),
        DagLedger(node_count=6, representative_count=3, seed=7),
        events,
        accounts=8,
        initial_balance=10_000_000,
        settle_s=240.0,
    )
    print(report.render())

    bc, dag = report.blockchain, report.dag
    if bc.mean_confirmation_s and dag.mean_confirmation_s:
        speedup = bc.mean_confirmation_s / dag.mean_confirmation_s
        print(
            f"\nThe DAG confirmed payments {speedup:,.0f}x faster: one vote "
            "round instead of waiting for blocks to pile on top (paper §IV)."
        )


if __name__ == "__main__":
    main()
