#!/usr/bin/env python3
"""Every scaling approach of paper §VI, side by side.

Prints the protocol TPS ceilings (Bitcoin / Segwit2x / Ethereum / PoS /
Visa), the block-size sweep with its centralization cliff, sharding's
K-fold gain and cross-shard erosion, and the off-chain amplification of
channels and Plasma.

Run:  python examples/scaling_comparison.py
"""

import random

from repro.common.units import MB, format_bytes
from repro.crypto.keys import KeyPair
from repro.blockchain.params import BITCOIN
from repro.metrics.tables import render_table
from repro.scaling.blocksize import blocksize_sweep, centralization_threshold_bytes
from repro.scaling.channels import ChannelNetwork
from repro.scaling.plasma import PlasmaChain, PlasmaOperator, PlasmaTx
from repro.scaling.sharding import ShardedLedger
from repro.scaling.throughput import protocol_tps_table


def on_chain_ceilings() -> None:
    table = protocol_tps_table()
    rows = [[name, f"{tps:,.1f}"] for name, tps in table.items()]
    print(render_table(["system", "max TPS"], rows,
                       title="§VI-A protocol throughput ceilings"))
    print()


def block_size() -> None:
    points = blocksize_sweep(BITCOIN, [1 * MB, 2 * MB, 8 * MB, 100 * MB, 4000 * MB])
    rows = [
        [format_bytes(p.block_size_bytes), f"{p.tps:.1f}",
         format_bytes(p.node_load_bps) + "/s",
         "yes" if p.consumer_viable else "NO"]
        for p in points
    ]
    cutoff = centralization_threshold_bytes(BITCOIN)
    print(render_table(
        ["block size", "TPS", "per-node load", "consumer node viable"], rows,
        title=f"Block-size scaling (consumer cutoff ~{format_bytes(cutoff)})",
    ))
    print()


def sharding() -> None:
    rows = []
    for k in (1, 4, 16, 64):
        ledger = ShardedLedger(shard_count=k, per_shard_tps=10.0)
        random_mix = (k - 1) / k  # uniform traffic is mostly cross-shard
        rows.append([
            k,
            f"{ledger.effective_tps(0.0):,.0f}",
            f"{ledger.effective_tps(random_mix):,.0f}",
        ])
    print(render_table(
        ["shards K", "TPS (local traffic)", "TPS (random traffic)"], rows,
        title="Sharding: K-fold gain, eroded by cross-shard receipts",
    ))
    print()


def channels() -> None:
    rng = random.Random(0)
    network = ChannelNetwork()
    hub = KeyPair.generate(rng)
    network.register(hub)
    clients = [KeyPair.generate(rng) for _ in range(6)]
    for client in clients:
        network.register(client)
        network.open_channel(client.address, hub.address, 50_000, 50_000)
    for _ in range(3_000):
        a, b = rng.sample(clients, 2)
        network.send(a.address, b.address, rng.randint(1, 10))
    network.close_all()
    print(render_table(
        ["metric", "value"],
        [
            ["payments routed", network.payments_routed],
            ["on-chain transactions", network.total_on_chain_txs()],
            ["payments per on-chain tx",
             f"{network.payments_routed / network.total_on_chain_txs():.0f}"],
        ],
        title="Payment channels (Lightning/Raiden shape)",
    ))
    print()


def plasma() -> None:
    rng = random.Random(1)
    users = [KeyPair.generate(rng) for _ in range(10)]
    chain = PlasmaChain(operator=KeyPair.generate(rng).address, bond=10**6)
    operator = PlasmaOperator(chain, {u.address: 10**6 for u in users})
    nonces = {u.address: 0 for u in users}
    for _ in range(20):
        for _ in range(50):
            a, b = rng.sample(users, 2)
            operator.submit_tx(PlasmaTx(a.address, b.address,
                                        rng.randint(1, 50), nonces[a.address]))
            nonces[a.address] += 1
        operator.seal_block()
    print(render_table(
        ["metric", "value"],
        [
            ["child-chain transactions", operator.txs_processed],
            ["root-chain bytes", format_bytes(chain.on_chain_bytes())],
            ["child-chain bytes", format_bytes(operator.child_chain_bytes())],
            ["compression", f"{operator.compression_ratio():.0f}x"],
        ],
        title="Plasma: only Merkle roots reach the main chain",
    ))


def main() -> None:
    on_chain_ceilings()
    block_size()
    sharding()
    channels()
    plasma()


if __name__ == "__main__":
    main()
