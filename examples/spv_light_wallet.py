#!/usr/bin/env python3
"""An SPV light wallet following a live network (paper §V's node spectrum).

A payment is mined on a running PoW network; a wallet holding *only
headers* verifies it with a Merkle proof and applies the §IV-A depth rule
— then the full nodes prune and the light wallet keeps working, showing
the three storage tiers (full / pruned / headers-only) side by side.

Run:  python examples/spv_light_wallet.py
"""

from dataclasses import replace

from repro.common.units import format_bytes
from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.spv import SpvClient, make_payment_proof
from repro.blockchain.transaction import build_transaction
from repro.blockchain.wallet import UtxoWallet
from repro.metrics.tables import render_table
from repro.storage.pruning import prune_chain

PARAMS = replace(BITCOIN, target_block_interval_s=10.0, confirmation_depth=6)


def main() -> None:
    alice = KeyPair.from_seed(b"\x71" * 32)
    bob = KeyPair.from_seed(b"\x72" * 32)
    genesis = build_genesis_with_allocations(
        {alice.address: 10**9, bob.address: 10**9}
    )
    sim = Simulator(seed=17)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, 4, lambda nid: BlockchainNode(nid, PARAMS, genesis), FAST_LINK
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(0.25, KeyPair.from_seed(bytes([80 + i]) * 32).address)

    # Alice pays Bob; the network mines on.
    wallet = UtxoWallet(alice)
    wallet.track_funding(genesis.transactions[0])
    tx = wallet.pay(bob.address, 123_456)
    nodes[0].submit_transaction(tx)
    sim.run(until=600)

    # Bob's phone wallet: header sync + payment proof from a full node.
    light = SpvClient(genesis.header, check_pow=False)
    light.sync_from(nodes[1].chain)
    full = nodes[1]
    containing = full.chain.block(full._tx_blocks[tx.txid])  # noqa: SLF001
    proof = make_payment_proof(containing, tx.txid)
    confirmations = light.verify_payment(proof)

    print(f"payment {tx.txid.short()} verified by the light wallet with "
          f"{confirmations} confirmations "
          f"(rule: wait {PARAMS.confirmation_depth}) -> "
          f"{'ACCEPT' if light.is_confirmed(proof, PARAMS.confirmation_depth) else 'WAIT'}\n")

    full_bytes = full.chain.total_size_bytes()
    prune_result = prune_chain(nodes[2].chain, keep_depth=20)
    rows = [
        ["full node", format_bytes(full_bytes), "everything"],
        ["pruned node", format_bytes(prune_result.size_after),
         "headers + recent window"],
        ["light wallet (SPV)", format_bytes(light.storage_bytes()),
         "headers only"],
    ]
    print(render_table(["node type", "storage", "holds"], rows,
                       title="Section V's storage spectrum, measured"))
    print("\nThe light wallet still verified the payment — Merkle proofs")
    print("connect transactions to headers, so validation doesn't require")
    print("history (the same property §V-A's pruning relies on).")


if __name__ == "__main__":
    main()
