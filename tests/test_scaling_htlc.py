"""Tests for repro.scaling.htlc (atomic multi-hop channel payments)."""

import pytest

from repro.common.errors import ChannelError
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.scaling.channels import ChannelNetwork
from repro.scaling.htlc import HtlcRouter, HtlcState


@pytest.fixture
def route_world(rng):
    """A -> B -> C channel line plus a router."""
    a, b, c = (KeyPair.generate(rng) for _ in range(3))
    network = ChannelNetwork()
    for party in (a, b, c):
        network.register(party)
    network.open_channel(a.address, b.address, 1_000, 1_000)
    network.open_channel(b.address, c.address, 1_000, 1_000)
    return HtlcRouter(network), network, a, b, c


class TestInvoice:
    def test_invoice_hash_is_of_secret(self, route_world):
        router, _, _, _, c = route_world
        invoice = router.create_invoice(c.address, 100, b"secret-1")
        assert invoice.payment_hash == sha256(b"secret-1")

    def test_nonpositive_amount_rejected(self, route_world):
        router, _, _, _, c = route_world
        with pytest.raises(ChannelError):
            router.create_invoice(c.address, 0, b"x")


class TestHappyPath:
    def test_two_hop_payment_settles_atomically(self, route_world):
        router, network, a, b, c = route_world
        invoice = router.create_invoice(c.address, 200, b"s")
        locks = router.pay(a.address, invoice, now=0.0)
        assert len(locks) == 2
        assert all(h.state == HtlcState.FULFILLED for h in locks)
        ab = network.channel(a.address, b.address)
        bc = network.channel(b.address, c.address)
        assert ab.balance_of(a.address) == 800
        assert bc.balance_of(c.address) == 1_200
        # The intermediary nets to zero: +200 in one channel, -200 in the other.
        assert ab.balance_of(b.address) + bc.balance_of(b.address) == 2_000
        assert router.payments_settled == 1

    def test_lock_moves_no_funds_until_fulfilment(self, route_world):
        router, network, a, b, c = route_world
        invoice = router.create_invoice(c.address, 200, b"s")
        locks = router.lock_route(a.address, invoice, now=0.0)
        ab = network.channel(a.address, b.address)
        assert ab.balance_of(a.address) == 1_000  # still locked, not paid
        router.settle(locks, b"s", now=1.0)
        assert ab.balance_of(a.address) == 800

    def test_timeouts_decrease_toward_recipient(self, route_world):
        router, _, a, _, c = route_world
        invoice = router.create_invoice(c.address, 50, b"s")
        locks = router.lock_route(a.address, invoice, now=0.0)
        assert locks[0].expires_at > locks[1].expires_at


class TestFailureModes:
    def test_wrong_preimage_rejected(self, route_world):
        router, _, a, _, c = route_world
        invoice = router.create_invoice(c.address, 100, b"right")
        locks = router.lock_route(a.address, invoice, now=0.0)
        with pytest.raises(ChannelError):
            router.settle(locks, b"wrong", now=1.0)
        assert all(h.state == HtlcState.PENDING for h in locks)

    def test_expired_htlc_cannot_fulfill(self, route_world):
        router, _, a, _, c = route_world
        invoice = router.create_invoice(c.address, 100, b"s")
        locks = router.lock_route(a.address, invoice, now=0.0, timeout_s=120.0)
        with pytest.raises(ChannelError):
            locks[-1].fulfill(b"s", now=10_000.0)

    def test_refund_after_expiry_restores_everyone(self, route_world):
        router, network, a, b, c = route_world
        invoice = router.create_invoice(c.address, 100, b"s")
        locks = router.lock_route(a.address, invoice, now=0.0, timeout_s=120.0)
        refunded = router.refund_expired(locks, now=10_000.0)
        assert refunded == 2
        assert router.payments_refunded == 1
        ab = network.channel(a.address, b.address)
        assert ab.balance_of(a.address) == 1_000  # nothing ever moved

    def test_refund_before_expiry_rejected(self, route_world):
        router, _, a, _, c = route_world
        invoice = router.create_invoice(c.address, 100, b"s")
        locks = router.lock_route(a.address, invoice, now=0.0)
        with pytest.raises(ChannelError):
            locks[0].refund(now=1.0)

    def test_double_fulfill_rejected(self, route_world):
        router, _, a, _, c = route_world
        invoice = router.create_invoice(c.address, 100, b"s")
        locks = router.pay(a.address, invoice, now=0.0)
        with pytest.raises(ChannelError):
            locks[0].fulfill(b"s", now=1.0)

    def test_insufficient_hop_capacity_fails_cleanly(self, route_world):
        router, network, a, b, c = route_world
        invoice = router.create_invoice(c.address, 5_000, b"s")  # > capacity
        with pytest.raises(ChannelError):
            router.lock_route(a.address, invoice, now=0.0)

    def test_unknown_invoice_cannot_settle(self, route_world, rng):
        from repro.scaling.htlc import Invoice

        router, _, a, _, c = route_world
        rogue = Invoice(payment_hash=sha256(b"nobody"), amount=10, recipient=c.address)
        with pytest.raises(ChannelError):
            router.pay(a.address, rogue, now=0.0)

    def test_route_too_long_for_timeout(self, route_world):
        router, _, a, _, c = route_world
        invoice = router.create_invoice(c.address, 10, b"s")
        with pytest.raises(ChannelError):
            router.lock_route(a.address, invoice, now=0.0, timeout_s=60.0)
