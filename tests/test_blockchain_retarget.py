"""Integration tests for live difficulty retargeting."""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyPair
from repro.net.link import FAST_LINK
from repro.net.network import Network
from repro.net.topology import complete_topology
from repro.sim.simulator import Simulator
from repro.blockchain.block import build_genesis_with_allocations
from repro.blockchain.node import BlockchainNode
from repro.blockchain.params import BITCOIN
from repro.blockchain.retarget import LiveRetargeter, apply_hashrate_shock

PARAMS = replace(BITCOIN, target_block_interval_s=10.0)


def build_network(seed=0):
    key = KeyPair.from_seed(b"\x41" * 32)
    genesis = build_genesis_with_allocations({key.address: 10**6})
    sim = Simulator(seed=seed)
    net = Network(sim)
    nodes = [
        n for n in complete_topology(
            net, 4, lambda nid: BlockchainNode(nid, PARAMS, genesis), FAST_LINK
        )
        if isinstance(n, BlockchainNode)
    ]
    for i, node in enumerate(nodes):
        node.start_pow_mining(0.25, KeyPair.from_seed(bytes([30 + i]) * 32).address)
    return sim, nodes


def measured_interval(nodes, sim, window_s):
    start_height = nodes[0].chain.height
    start_time = sim.now
    sim.run(until=sim.now + window_s)
    blocks = nodes[0].chain.height - start_height
    return (sim.now - start_time) / max(blocks, 1)


class TestHashrateShock:
    def test_boost_speeds_up_blocks(self):
        sim, nodes = build_network(seed=3)
        baseline = measured_interval(nodes, sim, 600)
        apply_hashrate_shock(nodes, 8.0)
        boosted = measured_interval(nodes, sim, 600)
        assert baseline == pytest.approx(10.0, rel=0.4)
        assert boosted < baseline / 4

    def test_boost_validation(self):
        sim, nodes = build_network()
        with pytest.raises(ValueError):
            apply_hashrate_shock(nodes, 0)


class TestLiveRetargeter:
    def test_interval_restored_after_shock(self):
        """The Section VI-A loop, closed live: 8x hash power arrives, the
        retargeter raises difficulty, the interval returns to target."""
        sim, nodes = build_network(seed=4)
        retargeter = LiveRetargeter(nodes, target_interval_s=10.0, check_every_s=200.0)
        retargeter.start(sim, until=4000)
        sim.run(until=600)
        apply_hashrate_shock(nodes, 8.0)
        sim.run(until=3600)
        final = measured_interval(nodes, sim, 400)
        assert final == pytest.approx(10.0, rel=0.5)
        # Difficulty ended up ~8x the calibration point.
        assert nodes[0].miner.difficulty_factor == pytest.approx(8.0, rel=0.5)
        assert len(retargeter.history) > 3

    def test_steady_state_barely_adjusts(self):
        sim, nodes = build_network(seed=5)
        retargeter = LiveRetargeter(nodes, target_interval_s=10.0, check_every_s=300.0)
        retargeter.start(sim, until=3000)
        sim.run(until=3000)
        # Without a shock, cumulative adjustment hovers near 1.
        assert nodes[0].miner.difficulty_factor == pytest.approx(1.0, rel=0.6)

    def test_clamped_steps(self):
        sim, nodes = build_network(seed=6)
        retargeter = LiveRetargeter(nodes, target_interval_s=10.0, check_every_s=150.0)
        retargeter.start(sim, until=2000)
        apply_hashrate_shock(nodes, 100.0)  # extreme shock
        sim.run(until=2000)
        for record in retargeter.history:
            assert 1.0 / 4 <= record.factor_applied <= 4.0

    def test_parameter_validation(self):
        sim, nodes = build_network()
        with pytest.raises(ValueError):
            LiveRetargeter(nodes, target_interval_s=0, check_every_s=10)
