"""Tests for repro.dag.byteball (the witnessed, totally-ordered DAG)."""

import random

import pytest

from repro.common.errors import UnknownParentError, ValidationError
from repro.crypto.keys import KeyPair
from repro.dag.byteball import ByteballDag, make_unit


@pytest.fixture
def world(rng):
    """(dag, witness_keys, user_key, genesis) with 5 witnesses.

    The genesis is authored by a non-witness founder so witnessed-level
    expectations count only explicit witness units.
    """
    witness_keys = [KeyPair.generate(rng) for _ in range(5)]
    founder = KeyPair.generate(rng)
    user = KeyPair.generate(rng)
    dag = ByteballDag([w.address for w in witness_keys], stability_depth=2)
    genesis = dag.create_genesis(founder)
    return dag, witness_keys, user, genesis


def grow_chain(dag, keys, count, rng, start_time=1.0):
    """Issue ``count`` units, each on the current best tip, round-robin
    authored by ``keys``; returns the units."""
    units = []
    for i in range(count):
        author = keys[i % len(keys)]
        unit = make_unit(author, [dag.best_tip()], f"u{i}".encode(), start_time + i)
        dag.attach(unit)
        units.append(unit)
    return units


class TestStructure:
    def test_genesis(self, world):
        dag, _, _, genesis = world
        assert len(dag) == 1
        assert dag.tips() == [genesis.unit_hash]
        assert dag.level(genesis.unit_hash) == 0

    def test_single_genesis(self, world, rng):
        dag, witness_keys, _, _ = world
        with pytest.raises(ValidationError):
            dag.create_genesis(witness_keys[1])

    def test_levels_increase(self, world, rng):
        dag, witness_keys, user, genesis = world
        units = grow_chain(dag, witness_keys, 4, rng)
        assert [dag.level(u.unit_hash) for u in units] == [1, 2, 3, 4]

    def test_unknown_parent_rejected(self, world, rng):
        from repro.common.types import Hash

        dag, _, user, _ = world
        ghost = Hash(b"\x01" * 32)
        with pytest.raises(UnknownParentError):
            dag.attach(make_unit(user, [ghost], b"x", 1.0))

    def test_duplicate_parents_rejected(self, world):
        dag, _, user, genesis = world
        with pytest.raises(ValidationError):
            dag.attach(
                make_unit(user, [genesis.unit_hash, genesis.unit_hash], b"x", 1.0)
            )

    def test_multi_parent_merge(self, world):
        """Two side tips merged by one unit referencing both."""
        dag, witness_keys, user, genesis = world
        a = make_unit(user, [genesis.unit_hash], b"a", 1.0)
        b = make_unit(user, [genesis.unit_hash], b"b", 1.1)
        dag.attach(a)
        dag.attach(b)
        assert len(dag.tips()) == 2
        merge = make_unit(witness_keys[0], [a.unit_hash, b.unit_hash], b"m", 2.0)
        dag.attach(merge)
        assert dag.tips() == [merge.unit_hash]

    def test_bad_signature_rejected(self, world, rng):
        from dataclasses import replace

        dag, _, user, genesis = world
        unit = make_unit(user, [genesis.unit_hash], b"x", 1.0)
        forged = replace(unit, public_key=KeyPair.generate(rng).public_key)
        with pytest.raises(ValidationError):
            dag.attach(forged)


class TestWitnessedLevels:
    def test_witness_units_raise_witnessed_level(self, world, rng):
        dag, witness_keys, user, genesis = world
        units = grow_chain(dag, witness_keys[:3], 6, rng)
        # After units by 3 distinct witnesses, witnessed level reaches 3.
        assert dag.witnessed_level(units[-1].unit_hash) == 3

    def test_non_witness_units_do_not_count(self, world, rng):
        dag, witness_keys, user, genesis = world
        units = grow_chain(dag, [user], 5, rng)
        assert dag.witnessed_level(units[-1].unit_hash) == 0

    def test_best_tip_prefers_witnessed_branch(self, world, rng):
        dag, witness_keys, user, genesis = world
        # Branch A: witnessed; branch B: one lone user unit.
        lone = make_unit(user, [genesis.unit_hash], b"lone", 0.5)
        dag.attach(lone)
        grow_chain(dag, witness_keys, 4, rng)
        best = dag.best_tip()
        assert best != lone.unit_hash
        assert dag.witnessed_level(best) > 0


class TestTotalOrder:
    def test_main_chain_spans_genesis_to_best_tip(self, world, rng):
        dag, witness_keys, user, genesis = world
        grow_chain(dag, witness_keys, 5, rng)
        chain = dag.main_chain()
        assert chain[0] == genesis.unit_hash
        assert chain[-1] == dag.best_tip()

    def test_every_reachable_unit_gets_an_mci(self, world, rng):
        dag, witness_keys, user, genesis = world
        witnessed = grow_chain(dag, witness_keys, 2, rng)
        side = make_unit(user, [genesis.unit_hash], b"side", 0.5)
        dag.attach(side)
        # A witness unit referencing the side unit pulls it into the order.
        merge = make_unit(
            witness_keys[0], [side.unit_hash, witnessed[-1].unit_hash], b"m", 5.0
        )
        dag.attach(merge)
        grow_chain(dag, witness_keys, 3, rng, start_time=10.0)
        assignments = dag.mci_assignments()
        assert side.unit_hash in assignments
        order = dag.total_order()
        assert order.index(genesis.unit_hash) == 0
        assert assignments[side.unit_hash] <= assignments[merge.unit_hash]

    def test_order_is_total_and_stable_under_growth(self, world, rng):
        dag, witness_keys, user, genesis = world
        grow_chain(dag, witness_keys, 6, rng)
        prefix = dag.total_order()
        grow_chain(dag, witness_keys, 4, rng, start_time=50.0)
        extended = dag.total_order()
        assert extended[: len(prefix)] == prefix  # order only appends

    def test_conflict_resolution_deterministic(self, world, rng):
        """Two conflicting units: the earlier MCI wins, everywhere,
        without any vote."""
        dag, witness_keys, user, genesis = world
        first = make_unit(user, [genesis.unit_hash], b"spend-A", 0.1)
        dag.attach(first)
        grow_chain(dag, witness_keys, 3, rng)  # MC advances over `first`
        second = make_unit(user, [genesis.unit_hash], b"spend-B", 0.2)
        dag.attach(second)
        merge = make_unit(
            witness_keys[1], [second.unit_hash, dag.best_tip()], b"m", 9.0
        )
        dag.attach(merge)
        winner = dag.resolve_conflict(first.unit_hash, second.unit_hash)
        assert winner == first.unit_hash  # included earlier in the order

    def test_unordered_conflict_returns_none(self, world, rng):
        dag, witness_keys, user, genesis = world
        grow_chain(dag, witness_keys, 3, rng)  # witnessed main chain
        # A side tip nobody references: outside every MC past cone.
        a = make_unit(user, [genesis.unit_hash], b"a", 0.1)
        dag.attach(a)
        assert dag.best_tip() != a.unit_hash
        assert dag.resolve_conflict(a.unit_hash, genesis.unit_hash) is None


class TestStability:
    def test_units_become_stable_behind_witness_majority(self, world, rng):
        dag, witness_keys, user, genesis = world
        grow_chain(dag, witness_keys, 10, rng)
        assert dag.last_stable_mci() >= 0
        assert dag.is_stable(genesis.unit_hash)

    def test_fresh_tip_not_stable(self, world, rng):
        dag, witness_keys, user, genesis = world
        units = grow_chain(dag, witness_keys, 10, rng)
        assert not dag.is_stable(units[-1].unit_hash)

    def test_no_stability_without_witness_majority(self, world, rng):
        dag, witness_keys, user, genesis = world
        grow_chain(dag, [user, witness_keys[0]], 10, rng)  # only 1 witness
        assert dag.last_stable_mci() == -1

    def test_parameter_validation(self, world, rng):
        with pytest.raises(ValidationError):
            ByteballDag([], stability_depth=2)
        with pytest.raises(ValidationError):
            ByteballDag([KeyPair.generate(rng).address], stability_depth=0)
