"""Tests for repro.scaling.channels (Lightning/Raiden, Section VI-A)."""

import pytest

from repro.common.errors import ChannelError
from repro.crypto.keys import KeyPair
from repro.scaling.channels import Channel, ChannelNetwork, ChannelState


@pytest.fixture
def parties(rng):
    return KeyPair.generate(rng), KeyPair.generate(rng), KeyPair.generate(rng)


class TestChannel:
    def test_open_locks_deposits(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        assert channel.capacity == 150
        assert channel.balance_of(a.address) == 100
        assert channel.balance_of(b.address) == 50
        assert channel.on_chain_txs == 1  # the funding tx

    def test_invalid_deposits_rejected(self, parties):
        a, b, _ = parties
        with pytest.raises(ChannelError):
            Channel(a, b, 0, 0)
        with pytest.raises(ChannelError):
            Channel(a, b, -1, 10)

    def test_off_chain_payment_shifts_balance(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        channel.pay(a.address, 30)
        assert channel.balance_of(a.address) == 70
        assert channel.balance_of(b.address) == 80
        assert channel.off_chain_txs == 1
        assert channel.on_chain_txs == 1  # unchanged: payment was off chain

    def test_bidirectional_payments(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        channel.pay(a.address, 30)
        channel.pay(b.address, 10)
        assert channel.balance_of(a.address) == 80

    def test_capacity_enforced(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        with pytest.raises(ChannelError):
            channel.pay(a.address, 101)

    def test_non_member_rejected(self, parties):
        a, b, c = parties
        channel = Channel(a, b, 100, 50)
        with pytest.raises(ChannelError):
            channel.pay(c.address, 10)

    def test_states_doubly_signed(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        state = channel.pay(a.address, 5)
        assert channel.verify_state(state)
        forged = ChannelState(
            channel_id=state.channel_id,
            sequence=state.sequence + 1,
            balance_a=0,
            balance_b=150,
            signature_a=state.signature_a,
            signature_b=state.signature_b,
        )
        assert not channel.verify_state(forged)


class TestClose:
    def test_close_settles_latest_state(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        channel.pay(a.address, 30)
        final = channel.close()
        assert final == (70, 80)
        assert channel.on_chain_txs == 2  # open + close: the whole lifetime

    def test_value_conserved_at_close(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        for _ in range(10):
            channel.pay(a.address, 1)
        assert sum(channel.close()) == 150

    def test_stale_close_defeated(self, parties):
        """Submitting an old state is the channel fraud; the newer
        doubly-signed state wins."""
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        stale = channel.pay(a.address, 10)  # seq 1
        channel.pay(a.address, 40)  # seq 2: a now has 50
        final = channel.close(submitted=stale)
        assert final == (50, 100)  # latest state, not the stale one

    def test_double_close_rejected(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        channel.close()
        with pytest.raises(ChannelError):
            channel.close()

    def test_pay_after_close_rejected(self, parties):
        a, b, _ = parties
        channel = Channel(a, b, 100, 50)
        channel.close()
        with pytest.raises(ChannelError):
            channel.pay(a.address, 1)

    def test_amplification_metric(self, parties):
        """The E11 payoff: off-chain txs per on-chain tx."""
        a, b, _ = parties
        channel = Channel(a, b, 1000, 1000)
        for _ in range(500):
            channel.pay(a.address, 1)
        channel.close()
        assert channel.amplification == 250.0  # 500 off / 2 on


class TestChannelNetwork:
    def build(self, parties):
        a, b, c = parties
        network = ChannelNetwork()
        for p in parties:
            network.register(p)
        network.open_channel(a.address, b.address, 100, 100)
        network.open_channel(b.address, c.address, 100, 100)
        return network

    def test_direct_route(self, parties):
        a, b, _ = parties
        network = self.build(parties)
        path = network.send(a.address, b.address, 10)
        assert path == [a.address, b.address]

    def test_multi_hop_route(self, parties):
        a, b, c = parties
        network = self.build(parties)
        path = network.send(a.address, c.address, 10)
        assert path == [a.address, b.address, c.address]
        # Intermediary b's balances net out across its two channels.
        ab = network.channel(a.address, b.address)
        bc = network.channel(b.address, c.address)
        assert ab.balance_of(b.address) == 110
        assert bc.balance_of(b.address) == 90
        assert bc.balance_of(c.address) == 110

    def test_insufficient_capacity_no_route(self, parties):
        a, _, c = parties
        network = self.build(parties)
        with pytest.raises(ChannelError):
            network.send(a.address, c.address, 150)
        assert network.payments_failed == 1

    def test_no_path(self, parties, rng):
        a, _, _ = parties
        network = self.build(parties)
        loner = KeyPair.generate(rng)
        network.register(loner)
        with pytest.raises(ChannelError):
            network.send(a.address, loner.address, 1)

    def test_duplicate_channel_rejected(self, parties):
        a, b, _ = parties
        network = self.build(parties)
        with pytest.raises(ChannelError):
            network.open_channel(a.address, b.address, 1, 1)

    def test_close_all_settles_on_chain(self, parties):
        a, b, c = parties
        network = self.build(parties)
        network.send(a.address, c.address, 25)
        settled = network.close_all()
        assert settled[a.address] == 75
        assert settled[b.address] == 200  # 125 + 75 across two channels
        assert settled[c.address] == 125
        assert network.total_on_chain_txs() == 4  # 2 opens + 2 closes

    def test_volume_counters(self, parties):
        a, b, c = parties
        network = self.build(parties)
        for _ in range(10):
            network.send(a.address, c.address, 1)
        assert network.total_off_chain_txs() == 20  # 2 hops each
        assert network.payments_routed == 10
