"""Tests for repro.sim (event queue + simulator)."""

import pytest

from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("late"))
        q.push(1.0, lambda: fired.append("early"))
        q.pop().action()
        assert fired == ["early"]

    def test_ties_fire_in_scheduling_order(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        assert q.pop() is first
        assert q.pop() is second

    def test_cancellation(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        event.cancel()
        assert q.pop() is None

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        event.cancel()
        assert q.peek_time() == 5.0

    def test_empty_pop(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(3.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.5]
        assert sim.now == 3.5

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        sim.run(until=20.0)
        assert sim.now == 20.0
        assert sim.events_processed == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(1.0, lambda: order.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 2.0)]

    def test_periodic(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(2.0, lambda: ticks.append(sim.now), until=9.0)
        sim.run(until=9.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0]

    def test_periodic_requires_positive_interval(self):
        with pytest.raises(ValueError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_determinism_across_runs(self):
        def run():
            sim = Simulator(seed=77)
            values = []
            for _ in range(5):
                sim.schedule(sim.rng.random(), lambda: values.append(sim.now))
            sim.run()
            return values

        assert run() == run()

    def test_fork_rng_independent(self):
        sim = Simulator(seed=1)
        a = sim.fork_rng("a")
        b = sim.fork_rng("b")
        assert a.random() != b.random()

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []


class TestCancellationUnderLoad:
    """The optimized queue derives its size from push/pop/cancel counters
    and skips cancelled entries lazily — stress both under heavy churn."""

    def test_mass_cancellation_mid_run(self):
        sim = Simulator(seed=3)
        fired = []
        handles = [
            sim.schedule(float(i + 1), (lambda i=i: fired.append(i)))
            for i in range(500)
        ]
        # Cancel every odd event from inside an early event's action so
        # cancellation interleaves with the running loop.
        sim.schedule(0.5, lambda: [h.cancel() for h in handles[1::2]])
        sim.run()
        assert fired == list(range(0, 500, 2))
        stats = sim.queue_stats()
        assert stats["pending"] == 0
        # 500 + the canceller fired/cancelled; popped excludes cancelled.
        assert stats["popped"] == 251

    def test_len_stays_consistent_with_interleaved_ops(self):
        q = EventQueue()
        live = []
        for i in range(200):
            live.append(q.push(float(i), lambda: None))
            if i % 3 == 0:
                live.pop(0).cancel()
            if i % 5 == 0 and len(q):
                popped = q.pop()
                if popped is not None and popped in live:
                    live.remove(popped)
        assert len(q) == len(live)

    def test_double_cancel_counted_once(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_is_harmless(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        assert q.pop() is event
        event.cancel()  # already detached from the queue
        assert len(q) == 0

    def test_cancelled_run_is_deterministic(self):
        def run():
            sim = Simulator(seed=9)
            order = []
            handles = []
            for _ in range(100):
                delay = sim.rng.random() * 10
                handles.append(sim.schedule(delay, lambda d=delay: order.append(d)))
            for i, h in enumerate(handles):
                if i % 4 == 0:
                    h.cancel()
            sim.run()
            return order, sim.events_processed

        assert run() == run()


class TestPeriodicClamp:
    def test_until_between_ticks_stops_at_bound(self):
        sim = Simulator()
        ticks = []
        # until=5.0 falls between the 4.0 and 6.0 ticks; the 6.0 tick must
        # never be scheduled (the queue drains at the bound).
        sim.schedule_periodic(2.0, lambda: ticks.append(sim.now), until=5.0)
        sim.run()
        assert ticks == [2.0, 4.0]
        assert sim.queue_stats()["pending"] == 0

    def test_tick_landing_exactly_on_until_fires(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(2.0, lambda: ticks.append(sim.now), until=6.0)
        sim.run()
        assert ticks == [2.0, 4.0, 6.0]

    def test_first_tick_past_until_never_fires(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(10.0, lambda: ticks.append(sim.now), until=5.0)
        sim.run()
        assert ticks == []
        assert sim.queue_stats()["pushed"] == 0

    def test_start_delay_respected_with_until(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(
            2.0, lambda: ticks.append(sim.now), start_delay=1.0, until=5.0
        )
        sim.run()
        assert ticks == [1.0, 3.0, 5.0]


class TestPeriodicTask:
    def test_cancel_stops_future_ticks(self):
        sim = Simulator()
        ticks = []
        task = sim.schedule_periodic(2.0, lambda: ticks.append(sim.now))
        sim.run(until=5.0)
        assert task.active
        task.cancel()
        assert not task.active and task.cancelled
        sim.run(until=20.0)
        assert ticks == [2.0, 4.0]

    def test_action_may_cancel_its_own_task_mid_tick(self):
        """The in-loop invariant monitor detaches itself from inside the
        periodic action on first violation — that must stop the loop."""
        sim = Simulator()
        ticks = []
        task = sim.schedule_periodic(
            2.0, lambda: (ticks.append(sim.now),
                          task.cancel() if len(ticks) >= 2 else None),
        )
        sim.run(until=30.0)
        assert ticks == [2.0, 4.0]
        assert not task.active

    def test_task_past_until_is_inactive(self):
        sim = Simulator()
        task = sim.schedule_periodic(10.0, lambda: None, until=5.0)
        assert not task.active  # first tick would land past the bound
        sim.run()
        assert sim.queue_stats()["pushed"] == 0


class TestHaltAndStats:
    def test_halt_stops_run_mid_queue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.halt()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        # A fresh run resumes from where the halt left off.
        sim.run()
        assert fired == [1, 2]

    def test_queue_stats_counts_scheduling(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run(until=3.0)
        stats = sim.queue_stats()
        assert stats["pushed"] == 5
        assert stats["popped"] == 3
        assert stats["pending"] == 2
