"""Tests for repro.scaling.sharding and blocksize (Section VI-A)."""

import pytest

from repro.common.errors import InsufficientFundsError, ShardingError
from repro.crypto.keys import KeyPair
from repro.common.units import MB
from repro.blockchain.params import BITCOIN
from repro.scaling.blocksize import (
    CONSUMER_NODE_CAPACITY_BPS,
    blocksize_sweep,
    centralization_threshold_bytes,
    node_load_for,
)
from repro.scaling.sharding import ShardedLedger


def users(rng, n):
    return [KeyPair.generate(rng).address for _ in range(n)]


class TestPlacement:
    def test_deterministic_assignment(self, rng):
        ledger = ShardedLedger(shard_count=4)
        account = users(rng, 1)[0]
        assert ledger.shard_of(account) == ledger.shard_of(account)

    def test_accounts_spread_across_shards(self, rng):
        ledger = ShardedLedger(shard_count=4)
        shards = {ledger.shard_of(a) for a in users(rng, 64)}
        assert len(shards) == 4

    def test_invalid_shard_count(self):
        with pytest.raises(ShardingError):
            ShardedLedger(shard_count=0)


class TestTransfers:
    def test_intra_shard_immediate(self, rng):
        ledger = ShardedLedger(shard_count=4)
        pool = users(rng, 200)
        a = pool[0]
        same = next(x for x in pool[1:] if ledger.shard_of(x) == ledger.shard_of(a))
        ledger.credit(a, 100)
        assert ledger.transfer(a, same, 40) is True
        assert ledger.balance(same) == 40
        assert ledger.intra_shard_txs == 1

    def test_cross_shard_deferred_one_slot(self, rng):
        ledger = ShardedLedger(shard_count=4)
        pool = users(rng, 200)
        a = pool[0]
        other = next(x for x in pool[1:] if ledger.shard_of(x) != ledger.shard_of(a))
        ledger.credit(a, 100)
        assert ledger.transfer(a, other, 40) is False
        assert ledger.balance(other) == 0  # receipt not applied yet
        ledger.advance_slot()
        assert ledger.balance(other) == 40
        assert ledger.cross_shard_txs == 1

    def test_supply_conserved_in_flight(self, rng):
        ledger = ShardedLedger(shard_count=4)
        pool = users(rng, 100)
        for a in pool[:10]:
            ledger.credit(a, 1_000)
        import random as _r

        rnd = _r.Random(0)
        for _ in range(50):
            src = rnd.choice(pool[:10])
            dst = rnd.choice(pool)
            if ledger.balance(src) >= 10 and src != dst:
                ledger.transfer(src, dst, 10)
        assert ledger.total_supply() == 10_000
        ledger.settle()
        assert ledger.total_supply() == 10_000

    def test_overdraw_rejected(self, rng):
        ledger = ShardedLedger(shard_count=2)
        a, b = users(rng, 2)
        with pytest.raises(InsufficientFundsError):
            ledger.transfer(a, b, 1)

    def test_nonpositive_amount_rejected(self, rng):
        ledger = ShardedLedger(shard_count=2)
        a, b = users(rng, 2)
        with pytest.raises(ShardingError):
            ledger.transfer(a, b, 0)

    def test_cross_shard_costs_two_entries(self, rng):
        ledger = ShardedLedger(shard_count=4)
        pool = users(rng, 200)
        a = pool[0]
        other = next(x for x in pool[1:] if ledger.shard_of(x) != ledger.shard_of(a))
        ledger.credit(a, 100)
        ledger.transfer(a, other, 10)
        ledger.settle()
        assert sum(ledger.entries_by_shard()) == 2


class TestThroughputModel:
    def test_linear_in_shards_when_local(self):
        k1 = ShardedLedger(1, per_shard_tps=10).effective_tps(0.0)
        k8 = ShardedLedger(8, per_shard_tps=10).effective_tps(0.0)
        assert k8 == pytest.approx(8 * k1)

    def test_cross_shard_erodes_gain(self):
        ledger = ShardedLedger(8, per_shard_tps=10)
        assert ledger.effective_tps(1.0) == pytest.approx(
            ledger.effective_tps(0.0) / 2
        )

    def test_fraction_validated(self):
        with pytest.raises(ShardingError):
            ShardedLedger(2).effective_tps(1.5)


class TestBlockSize:
    def test_tps_linear_in_size(self):
        points = blocksize_sweep(BITCOIN, [1 * MB, 2 * MB, 4 * MB])
        assert points[1].tps == pytest.approx(2 * points[0].tps)
        assert points[2].tps == pytest.approx(4 * points[0].tps)

    def test_segwit2x_point(self):
        """Section VI-A: Segwit2x doubles capacity to ~6-13 TPS."""
        (point,) = blocksize_sweep(BITCOIN, [2 * MB])
        assert 6 <= point.tps <= 14

    def test_node_load_linear(self):
        assert node_load_for(2 * MB, 600) == pytest.approx(2 * node_load_for(1 * MB, 600))

    def test_centralization_threshold(self):
        threshold = centralization_threshold_bytes(BITCOIN)
        assert threshold == int(CONSUMER_NODE_CAPACITY_BPS * 600)
        points = blocksize_sweep(BITCOIN, [1 * MB, threshold + MB])
        assert points[0].consumer_viable
        assert not points[1].consumer_viable

    def test_validation(self):
        with pytest.raises(ValueError):
            node_load_for(0, 600)
