"""Tests for repro.blockchain.utxo."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DoubleSpendError, ValidationError
from repro.crypto.keys import KeyPair
from repro.blockchain.transaction import build_transaction, make_coinbase
from repro.blockchain.utxo import UTXOSet


@pytest.fixture
def funded(rng):
    """(utxo_set, alice, bob) with alice holding one 100-value output."""
    utxo = UTXOSet()
    alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
    coinbase = make_coinbase(alice.address, 100)
    utxo.apply_transaction(coinbase)
    return utxo, alice, bob, coinbase


class TestApply:
    def test_coinbase_creates_outputs(self, funded):
        utxo, alice, _, _ = funded
        assert utxo.balance(alice.address) == 100
        assert len(utxo) == 1

    def test_spend_moves_value(self, funded):
        utxo, alice, bob, coinbase = funded
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 30)
        utxo.apply_transaction(tx)
        assert utxo.balance(alice.address) == 70
        assert utxo.balance(bob.address) == 30

    def test_double_spend_rejected(self, funded):
        utxo, alice, bob, coinbase = funded
        spendable = utxo.spendable(alice.address)
        tx1 = build_transaction(alice, spendable, bob.address, 30)
        tx2 = build_transaction(alice, spendable, bob.address, 40)
        utxo.apply_transaction(tx1)
        with pytest.raises(DoubleSpendError):
            utxo.apply_transaction(tx2)

    def test_unknown_input_rejected(self, funded):
        utxo, alice, bob, coinbase = funded
        tx = build_transaction(alice, [(coinbase.txid, 5, 100)], bob.address, 10)
        with pytest.raises(DoubleSpendError):
            utxo.apply_transaction(tx)

    def test_failed_apply_leaves_set_unchanged(self, funded):
        utxo, alice, bob, coinbase = funded
        before = utxo.balance(alice.address)
        tx = build_transaction(alice, [(coinbase.txid, 9, 100)], bob.address, 10)
        with pytest.raises(DoubleSpendError):
            utxo.apply_transaction(tx)
        assert utxo.balance(alice.address) == before

    def test_value_conservation(self, funded):
        utxo, alice, bob, _ = funded
        total_before = utxo.total_value()
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 25)
        utxo.apply_transaction(tx)
        assert utxo.total_value() == total_before  # fee = 0 here


class TestRevert:
    def test_revert_restores_exact_state(self, funded):
        utxo, alice, bob, _ = funded
        tx = build_transaction(alice, utxo.spendable(alice.address), bob.address, 30)
        undo = utxo.apply_transaction(tx)
        utxo.revert_transaction(undo)
        assert utxo.balance(alice.address) == 100
        assert utxo.balance(bob.address) == 0

    def test_revert_chain_of_spends(self, funded):
        utxo, alice, bob, _ = funded
        tx1 = build_transaction(alice, utxo.spendable(alice.address), bob.address, 30)
        undo1 = utxo.apply_transaction(tx1)
        tx2 = build_transaction(bob, utxo.spendable(bob.address), alice.address, 10)
        undo2 = utxo.apply_transaction(tx2)
        utxo.revert_transaction(undo2)
        utxo.revert_transaction(undo1)
        assert utxo.balance(alice.address) == 100
        assert utxo.balance(bob.address) == 0


class TestFees:
    def test_fee_is_input_minus_output(self, funded):
        utxo, alice, bob, _ = funded
        tx = build_transaction(
            alice, utxo.spendable(alice.address), bob.address, 30, fee=7
        )
        assert utxo.fee(tx) == 7

    def test_coinbase_fee_zero(self, funded):
        utxo, alice, _, coinbase = funded
        assert utxo.fee(coinbase) == 0

    def test_fee_of_unknown_input_raises(self, funded, rng):
        utxo, alice, bob, _ = funded
        other = UTXOSet()
        cb = make_coinbase(alice.address, 50, nonce=9)
        other.apply_transaction(cb)
        tx = build_transaction(alice, [(cb.txid, 0, 50)], bob.address, 10)
        with pytest.raises(ValidationError):
            utxo.fee(tx)


class TestSpendable:
    def test_sorted_and_complete(self, rng):
        utxo = UTXOSet()
        alice = KeyPair.generate(rng)
        for n in range(3):
            utxo.apply_transaction(make_coinbase(alice.address, 10 + n, nonce=n))
        spendable = utxo.spendable(alice.address)
        assert len(spendable) == 3
        assert sum(v for _, _, v in spendable) == 33

    def test_empty_for_stranger(self, funded, rng):
        utxo, _, _, _ = funded
        stranger = KeyPair.generate(rng)
        assert utxo.spendable(stranger.address) == []
        assert utxo.balance(stranger.address) == 0


@settings(max_examples=25, deadline=None)
@given(
    amounts=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=8),
)
def test_apply_revert_round_trip_property(amounts):
    """Property: applying a chain of random sends then reverting them in
    reverse restores balances and total value exactly."""
    import random as _random

    rng = _random.Random(42)
    utxo = UTXOSet()
    alice, bob = KeyPair.generate(rng), KeyPair.generate(rng)
    utxo.apply_transaction(make_coinbase(alice.address, 10_000))
    undos = []
    for amount in amounts:
        spendable = utxo.spendable(alice.address)
        tx = build_transaction(alice, spendable, bob.address, amount)
        undos.append(utxo.apply_transaction(tx))
    for undo in reversed(undos):
        utxo.revert_transaction(undo)
    assert utxo.balance(alice.address) == 10_000
    assert utxo.balance(bob.address) == 0
    assert utxo.total_value() == 10_000
