"""Tests for repro.dag.lattice (the block-lattice, Sections II-B/IV-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import (
    CementedBlockError,
    ForkDetectedError,
    PrunedHistoryError,
    ValidationError,
)
from repro.common.types import Hash
from repro.crypto.keys import KeyPair
from repro.dag.blocks import make_change, make_open, make_receive, make_send
from repro.dag.lattice import Lattice
from repro.dag.params import NanoParams


class TestGenesis:
    def test_creates_initial_state(self, fast_nano_params, rng):
        lattice = Lattice(fast_nano_params)
        gk = KeyPair.generate(rng)
        genesis = lattice.create_genesis(gk, 10**9)
        assert lattice.balance(gk.address) == 10**9
        assert lattice.total_supply() == 10**9
        assert lattice.is_cemented(genesis.block_hash)

    def test_single_genesis_enforced(self, fast_nano_params, rng):
        lattice = Lattice(fast_nano_params)
        lattice.create_genesis(KeyPair.generate(rng), 100)
        with pytest.raises(ValidationError):
            lattice.create_genesis(KeyPair.generate(rng), 100)

    def test_install_genesis_replica(self, fast_nano_params, rng):
        a = Lattice(fast_nano_params)
        gk = KeyPair.generate(rng)
        genesis = a.create_genesis(gk, 500)
        b = Lattice(fast_nano_params)
        b.install_genesis(genesis)
        assert b.balance(gk.address) == 500


class TestTransfers:
    def test_send_creates_pending(self, funded_lattice, rng):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 100,
            work_difficulty=1,
        )
        lattice.process(send)
        assert lattice.balance(alice.address) == 999_900
        assert not lattice.is_settled(send.block_hash)
        pending = lattice.pending_for(bob.address)
        assert len(pending) == 1 and pending[0].amount == 100

    def test_receive_settles(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 100,
            work_difficulty=1,
        )
        lattice.process(send)
        receive = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 100,
            work_difficulty=1,
        )
        lattice.process(receive)
        assert lattice.balance(bob.address) == 1_000_100
        assert lattice.is_settled(send.block_hash)
        assert lattice.pending_for(bob.address) == []

    def test_supply_conserved_through_pending(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        supply = lattice.total_supply()
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 777,
            work_difficulty=1,
        )
        lattice.process(send)
        assert lattice.total_supply() == supply  # value parked in pending

    def test_double_receive_rejected(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 100,
            work_difficulty=1,
        )
        lattice.process(send)
        r1 = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 100,
            work_difficulty=1,
        )
        lattice.process(r1)
        r2 = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 100,
            work_difficulty=1,
        )
        with pytest.raises(ValidationError):
            lattice.process(r2)

    def test_wrong_amount_receive_rejected(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 100,
            work_difficulty=1,
        )
        lattice.process(send)
        bad = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 150,
            work_difficulty=1,
        )
        with pytest.raises(ValidationError):
            lattice.process(bad)

    def test_receive_to_wrong_account_rejected(self, funded_lattice, rng):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 100,
            work_difficulty=1,
        )
        lattice.process(send)
        thief = make_receive(
            gk, lattice.chain(gk.address).head, send.block_hash, 100,
            work_difficulty=1,
        )
        with pytest.raises(ValidationError):
            lattice.process(thief)

    def test_change_updates_representative_weight(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        before = lattice.reps.weight(gk.address)
        change = make_change(
            alice, lattice.chain(alice.address).head, bob.address,
            work_difficulty=1,
        )
        lattice.process(change)
        assert lattice.reps.weight(bob.address) == 1_000_000
        assert lattice.reps.weight(gk.address) == before - 1_000_000


class TestValidationGuards:
    def test_duplicate_block_rejected(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 5,
            work_difficulty=1,
        )
        lattice.process(send)
        with pytest.raises(ValidationError):
            lattice.process(send)

    def test_insufficient_work_rejected(self, rng):
        lattice = Lattice(NanoParams(work_difficulty=2**30))
        gk = KeyPair.generate(rng)
        lattice.create_genesis(gk, 1000)
        bob = KeyPair.generate(rng)
        send = make_send(gk, lattice.chain(gk.address).head, bob.address, 10,
                         work_difficulty=1)
        with pytest.raises(ValidationError):
            lattice.process(send)

    def test_unknown_predecessor_rejected(self, funded_lattice, rng):
        lattice, gk, alice, bob = funded_lattice
        # Build a send on a head the lattice never saw.
        ghost_head = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 1,
            work_difficulty=1,
        )  # never processed
        orphan = make_send(alice, ghost_head, bob.address, 1, work_difficulty=1)
        with pytest.raises(ValidationError):
            lattice.process(orphan)

    def test_unknown_block_lookup_raises(self, funded_lattice):
        lattice, *_ = funded_lattice
        with pytest.raises(PrunedHistoryError):
            lattice.block(Hash(b"\x99" * 32))


class TestForkDetection:
    def test_two_sends_same_previous_is_fork(self, funded_lattice, rng):
        """Section IV-B: "two transactions may claim the same predecessor
        causing a fork"."""
        lattice, gk, alice, bob = funded_lattice
        head = lattice.chain(alice.address).head
        s1 = make_send(alice, head, bob.address, 10, work_difficulty=1)
        s2 = make_send(alice, head, gk.address, 999, work_difficulty=1)
        lattice.process(s1)
        with pytest.raises(ForkDetectedError):
            lattice.process(s2)
        assert lattice.forks_detected == 1

    def test_duplicate_open_is_fork(self, funded_lattice, rng):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 10,
            work_difficulty=1,
        )
        lattice.process(send)
        dup_open = make_open(
            bob, send.block_hash, 10, representative=gk.address, work_difficulty=1
        )
        with pytest.raises(ForkDetectedError):
            lattice.process(dup_open)


class TestRollback:
    def test_rollback_send_restores_balance_and_pending(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 10,
            work_difficulty=1,
        )
        lattice.process(send)
        removed = lattice.rollback(send.block_hash)
        assert [b.block_hash for b in removed] == [send.block_hash]
        assert lattice.balance(alice.address) == 1_000_000
        assert lattice.pending_for(bob.address) == []

    def test_rollback_receive_reinstates_pending(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 10,
            work_difficulty=1,
        )
        lattice.process(send)
        receive = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 10,
            work_difficulty=1,
        )
        lattice.process(receive)
        lattice.rollback(receive.block_hash)
        assert lattice.balance(bob.address) == 1_000_000
        assert len(lattice.pending_for(bob.address)) == 1
        assert not lattice.is_settled(send.block_hash)

    def test_rollback_cascades_along_chain(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        head = lattice.chain(alice.address).head
        s1 = make_send(alice, head, bob.address, 10, work_difficulty=1)
        lattice.process(s1)
        s2 = make_send(alice, s1, bob.address, 20, work_difficulty=1)
        lattice.process(s2)
        removed = lattice.rollback(s1.block_hash)
        assert len(removed) == 2
        assert lattice.balance(alice.address) == 1_000_000

    def test_rollback_settled_send_cascades_to_receive(self, funded_lattice):
        """Rolling back a send whose receive already settled must also
        remove the receive — otherwise the sender's balance is restored
        while the recipient keeps the credit and supply inflates by the
        amount (found by `repro fuzz` on the conflict profile)."""
        lattice, gk, alice, bob = funded_lattice
        supply = lattice.total_supply()
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 334,
            work_difficulty=1,
        )
        lattice.process(send)
        receive = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 334,
            work_difficulty=1,
        )
        lattice.process(receive)
        removed = lattice.rollback(send.block_hash)
        assert {b.block_hash for b in removed} == {
            send.block_hash, receive.block_hash
        }
        assert lattice.balance(alice.address) == 1_000_000
        assert lattice.balance(bob.address) == 1_000_000
        assert lattice.pending_for(bob.address) == []
        assert not lattice.is_settled(send.block_hash)
        assert lattice.total_supply() == supply

    def test_rollback_cascade_removes_receive_successors(self, funded_lattice):
        """The cascade truncates the destination chain from the settling
        receive onward, re-parking any value its successors had sent."""
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 50,
            work_difficulty=1,
        )
        lattice.process(send)
        receive = make_receive(
            bob, lattice.chain(bob.address).head, send.block_hash, 50,
            work_difficulty=1,
        )
        lattice.process(receive)
        onward = make_send(
            bob, lattice.chain(bob.address).head, gk.address, 20,
            work_difficulty=1,
        )
        lattice.process(onward)
        removed = lattice.rollback(send.block_hash)
        assert len(removed) == 3
        assert lattice.balance(bob.address) == 1_000_000
        assert lattice.pending_for(gk.address) == []
        assert lattice.total_supply() == 2_000_000 + lattice.balance(gk.address)

    def test_cemented_block_cannot_roll_back(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        send = make_send(
            alice, lattice.chain(alice.address).head, bob.address, 10,
            work_difficulty=1,
        )
        lattice.process(send)
        lattice.cement(send.block_hash)
        with pytest.raises(CementedBlockError):
            lattice.rollback(send.block_hash)

    def test_cementing_is_monotone_along_chain(self, funded_lattice):
        lattice, gk, alice, bob = funded_lattice
        head = lattice.chain(alice.address).head
        s1 = make_send(alice, head, bob.address, 1, work_difficulty=1)
        lattice.process(s1)
        s2 = make_send(alice, s1, bob.address, 2, work_difficulty=1)
        lattice.process(s2)
        lattice.cement(s2.block_hash)
        assert lattice.is_cemented(s1.block_hash)


@settings(max_examples=20, deadline=None)
@given(amounts=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=10))
def test_supply_invariant_property(amounts):
    """Property: total supply (chains + pending) never changes, whatever
    mix of sends and receives is applied."""
    import random as _random

    rng = _random.Random(7)
    params = NanoParams(work_difficulty=1)
    lattice = Lattice(params)
    gk = KeyPair.generate(rng)
    lattice.create_genesis(gk, 10**9)
    bob = KeyPair.generate(rng)
    opened = False
    for i, amount in enumerate(amounts):
        send = make_send(
            gk, lattice.chain(gk.address).head, bob.address, amount,
            work_difficulty=1,
        )
        lattice.process(send)
        assert lattice.total_supply() == 10**9
        if i % 2 == 0:  # settle every other send
            if not opened:
                block = make_open(
                    bob, send.block_hash, amount,
                    representative=gk.address, work_difficulty=1,
                )
                opened = True
            else:
                block = make_receive(
                    bob, lattice.chain(bob.address).head, send.block_hash,
                    amount, work_difficulty=1,
                )
            lattice.process(block)
            assert lattice.total_supply() == 10**9
